"""The Concurrent Markup Hierarchy (CMH) schema object.

Paper, Section 3: *"A Concurrent Markup Hierarchy (CMH) is a collection
(D1, ..., Dn) of DTDs, and an XML element r, such that r, called the
root of the hierarchy, is present in each DTD, no other XML elements are
shared by different DTDs, and in each Di all elements x ≠ r are
reachable from r."*

:class:`ConcurrentMarkupHierarchy` enforces exactly those three
constraints at construction time.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import CMHError
from repro.markup.dtd import DTD, parse_dtd


class ConcurrentMarkupHierarchy:
    """A validated CMH: named DTDs plus the shared root element name."""

    def __init__(self, root: str, dtds: Mapping[str, DTD]) -> None:
        if not dtds:
            raise CMHError("a CMH requires at least one hierarchy DTD")
        self.root = root
        self.dtds: dict[str, DTD] = dict(dtds)
        self._check_root_present()
        self._check_disjoint()
        self._check_reachability()

    @classmethod
    def from_sources(cls, root: str,
                     sources: Mapping[str, str]) -> "ConcurrentMarkupHierarchy":
        """Build a CMH from DTD internal-subset source strings."""
        return cls(root, {name: parse_dtd(text)
                          for name, text in sources.items()})

    @property
    def hierarchy_names(self) -> list[str]:
        """Hierarchy names in registration order."""
        return list(self.dtds)

    def sources(self) -> dict[str, str] | None:
        """The DTD internal-subset sources, for ``.mhx`` round-trips.

        ``None`` when any DTD was assembled programmatically (no source
        text retained) — such a CMH cannot be bundled into a container.
        """
        out: dict[str, str] = {}
        for name, dtd in self.dtds.items():
            if dtd.source is None:
                return None
            out[name] = dtd.source
        return out

    def elements_of(self, hierarchy: str) -> frozenset[str]:
        """All element names declared by ``hierarchy`` (including root)."""
        return self.dtds[hierarchy].element_names

    def hierarchy_of_element(self, name: str) -> str | None:
        """The hierarchy declaring element ``name`` (root maps to none)."""
        if name == self.root:
            return None
        for hierarchy, dtd in self.dtds.items():
            if name in dtd.element_names:
                return hierarchy
        return None

    # -- invariant checks --------------------------------------------------

    def _check_root_present(self) -> None:
        for name, dtd in self.dtds.items():
            if self.root not in dtd.element_names:
                raise CMHError(
                    f"hierarchy '{name}' does not declare the shared root "
                    f"element '{self.root}'")

    def _check_disjoint(self) -> None:
        seen: dict[str, str] = {}
        for hierarchy, dtd in self.dtds.items():
            for element in dtd.element_names:
                if element == self.root:
                    continue
                if element in seen:
                    raise CMHError(
                        f"element '{element}' is declared by both "
                        f"'{seen[element]}' and '{hierarchy}'; only the "
                        f"root '{self.root}' may be shared")
                seen[element] = hierarchy

    def _check_reachability(self) -> None:
        for hierarchy, dtd in self.dtds.items():
            reachable = dtd.reachable_from(self.root)
            unreachable = dtd.element_names - reachable
            if unreachable:
                missing = ", ".join(sorted(unreachable))
                raise CMHError(
                    f"hierarchy '{hierarchy}' declares elements not "
                    f"reachable from root '{self.root}': {missing}")
