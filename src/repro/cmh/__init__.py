"""Concurrent Markup Hierarchies (paper Section 3).

A CMH is a collection of DTDs sharing exactly one element name — the
root — with every element reachable from it.  A multihierarchical
document over a CMH is a base text ``S`` plus one XML encoding of ``S``
per hierarchy.  This package defines both notions, verifies their
invariants, and provides the span-list representation used to build
hierarchies programmatically.
"""

from repro.cmh.schema import ConcurrentMarkupHierarchy
from repro.cmh.document import Hierarchy, MultihierarchicalDocument
from repro.cmh.spans import Span as AnnotationSpan, SpanSet, spans_of

__all__ = [
    "ConcurrentMarkupHierarchy",
    "Hierarchy",
    "MultihierarchicalDocument",
    "AnnotationSpan",
    "SpanSet",
    "spans_of",
]
