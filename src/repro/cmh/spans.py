"""Span-list representation of a markup hierarchy.

A hierarchy over a base text can equivalently be described as a set of
*annotation spans* — ``(start, end, name, attributes)`` tuples that must
nest properly within one hierarchy.  This is the representation used by

* the synthetic corpus generator (which thinks in terms of features
  covering text ranges),
* ``analyze-string`` (whose temporary hierarchy is born as match spans),
* the fragmentation baseline (which re-derives spans from a KyGODDAG).

:class:`SpanSet` validates proper nesting and converts to/from DOM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CMHError
from repro.markup import dom


@dataclass(frozen=True)
class Span:
    """An annotation: element ``name`` covering ``[start, end)``.

    ``depth_hint`` breaks ties between spans with identical extents: the
    span with the smaller hint becomes the outer element.
    """

    start: int
    end: int
    name: str
    attributes: tuple[tuple[str, str], ...] = ()
    depth_hint: int = 0

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise CMHError(
                f"span <{self.name}> has negative extent "
                f"[{self.start}, {self.end})")

    @property
    def attributes_dict(self) -> dict[str, str]:
        return dict(self.attributes)


class SpanSet:
    """A properly-nesting set of spans over a text, forming one hierarchy."""

    def __init__(self, text: str, spans: list[Span] | None = None) -> None:
        self.text = text
        self.spans: list[Span] = []
        for span in spans or []:
            self.add(span)

    def add(self, span: Span) -> Span:
        """Add ``span`` after checking bounds and proper nesting."""
        if span.end > len(self.text) or span.start < 0:
            raise CMHError(
                f"span <{span.name}> [{span.start}, {span.end}) exceeds "
                f"the text (length {len(self.text)})")
        for other in self.spans:
            if _properly_overlap(span, other):
                raise CMHError(
                    f"span <{span.name}> [{span.start}, {span.end}) "
                    f"overlaps <{other.name}> [{other.start}, {other.end}) "
                    f"within a single hierarchy")
        self.spans.append(span)
        return span

    def sorted_spans(self) -> list[Span]:
        """Spans in document order: by start, outermost first."""
        return sorted(
            self.spans,
            key=lambda s: (s.start, -(s.end - s.start), s.depth_hint))

    def to_document(self, root_name: str) -> dom.Document:
        """Build the hierarchy DOM: root element + nested spans + text.

        Every character of the text lands in exactly one text node, so
        the result is automatically aligned with the base text.
        """
        document = dom.Document()
        root = dom.Element(root_name)
        document.append(root)
        # Stack of (element, its end offset); root pseudo-entry last.
        stack: list[tuple[dom.Element, int]] = [(root, len(self.text))]
        cursor = 0
        for span in self.sorted_spans():
            cursor = self._emit_text(stack, cursor, span.start)
            while stack[-1][1] <= span.start and len(stack) > 1:
                stack.pop()
            parent, parent_end = stack[-1]
            if span.end > parent_end:
                raise CMHError(
                    f"span <{span.name}> [{span.start}, {span.end}) "
                    f"escapes its enclosing element ending at {parent_end}")
            element = dom.Element(span.name, span.attributes_dict)
            parent.append(element)
            stack.append((element, span.end))
        self._emit_text(stack, cursor, len(self.text))
        return document

    def _emit_text(self, stack: list[tuple[dom.Element, int]],
                   cursor: int, target: int) -> int:
        """Emit text from ``cursor`` to ``target``, popping closed spans."""
        while cursor < target:
            while stack[-1][1] <= cursor and len(stack) > 1:
                stack.pop()
            element, end = stack[-1]
            stop = min(target, end)
            if stop > cursor:
                text = dom.Text(self.text[cursor:stop])
                text.start, text.end = cursor, stop
                element.append(text)
                cursor = stop
            elif len(stack) > 1:
                stack.pop()
            else:  # pragma: no cover - root end == len(text)
                break
        while stack[-1][1] <= cursor and len(stack) > 1:
            stack.pop()
        return cursor


def _properly_overlap(a: Span, b: Span) -> bool:
    """True when the spans overlap without either containing the other."""
    if a.start >= b.end or b.start >= a.end:
        return False
    a_in_b = b.start <= a.start and a.end <= b.end
    b_in_a = a.start <= b.start and b.end <= a.end
    return not (a_in_b or b_in_a)


@dataclass
class _Walk:
    """Mutable cursor state for :func:`spans_of`."""

    cursor: int = 0
    spans: list[Span] = field(default_factory=list)


def spans_of(document: dom.Document,
             include_root: bool = False) -> list[Span]:
    """Extract the annotation spans of an aligned hierarchy document.

    The inverse of :meth:`SpanSet.to_document` (modulo span order).
    Element extents are derived from the text they contain, so the
    document's text nodes must cover the base text contiguously.
    """
    walk = _Walk()
    _walk_element(document.root, walk, depth=0, include=include_root)
    return walk.spans


def _walk_element(element: dom.Element, walk: _Walk, depth: int,
                  include: bool) -> tuple[int, int]:
    start = walk.cursor
    for child in element.children:
        if isinstance(child, dom.Text):
            walk.cursor += len(child.data)
        elif isinstance(child, dom.Element):
            _walk_element(child, walk, depth + 1, include=True)
    end = walk.cursor
    if include:
        walk.spans.append(Span(start, end, element.name,
                               tuple(element.attributes.items()),
                               depth_hint=depth))
    return start, end
