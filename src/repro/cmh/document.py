"""Multihierarchical documents: a base text plus aligned encodings.

Paper, Section 3: *"A multihierarchical XML document d over a CMH H is a
collection of XML documents d1, ..., dn, and a string S, such that for
all i, di is an encoding of S using markup from the DTD Di, with
root r."*

:class:`MultihierarchicalDocument` stores the hierarchies in
registration order (this order is what makes the paper's Definition 3
node order stable) and verifies the alignment invariant: the
concatenated text content of every hierarchy equals ``S``.  During
alignment every text node is annotated with its character span, which
is what the KyGODDAG builder consumes.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import AlignmentError, CMHError, ValidationError
from repro.markup import dom, parse
from repro.markup.serializer import serialize
from repro.markup.validate import validate
from repro.cmh.schema import ConcurrentMarkupHierarchy


class Hierarchy:
    """One named markup hierarchy: a DOM document over the base text."""

    def __init__(self, name: str, document: dom.Document) -> None:
        self.name = name
        self.document = document

    @property
    def root(self) -> dom.Element:
        """The hierarchy's root element."""
        return self.document.root

    def to_xml(self) -> str:
        """Serialize the hierarchy back to XML."""
        return serialize(self.document)


class MultihierarchicalDocument:
    """A base text ``S`` with one aligned XML encoding per hierarchy."""

    def __init__(self, text: str,
                 hierarchies: Iterable[Hierarchy] = ()) -> None:
        self.text = text
        self.hierarchies: dict[str, Hierarchy] = {}
        self.cmh: ConcurrentMarkupHierarchy | None = None
        for hierarchy in hierarchies:
            self.add_hierarchy(hierarchy)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_xml(cls, text: str,
                 sources: Mapping[str, str]) -> "MultihierarchicalDocument":
        """Build from XML source strings, one per hierarchy name."""
        document = cls(text)
        for name, source in sources.items():
            document.add_hierarchy(Hierarchy(name, parse(source)))
        return document

    def add_hierarchy(self, hierarchy: Hierarchy) -> Hierarchy:
        """Register ``hierarchy``, verifying name uniqueness, the shared
        root, and text alignment (which also records text-node spans)."""
        if hierarchy.name in self.hierarchies:
            raise CMHError(
                f"duplicate hierarchy name '{hierarchy.name}'")
        if self.hierarchies:
            existing_root = next(iter(self.hierarchies.values())).root.name
            if hierarchy.root.name != existing_root:
                raise CMHError(
                    f"hierarchy '{hierarchy.name}' has root "
                    f"'{hierarchy.root.name}' but the document root is "
                    f"'{existing_root}'")
        self._align(hierarchy)
        self.hierarchies[hierarchy.name] = hierarchy
        return hierarchy

    def remove_hierarchy(self, name: str) -> Hierarchy:
        """Remove and return the named hierarchy."""
        if name not in self.hierarchies:
            raise CMHError(f"no hierarchy named '{name}'")
        return self.hierarchies.pop(name)

    # -- access ---------------------------------------------------------

    @property
    def hierarchy_names(self) -> list[str]:
        """Hierarchy names in registration order."""
        return list(self.hierarchies)

    @property
    def root_name(self) -> str:
        """The shared root element name."""
        if not self.hierarchies:
            raise CMHError("document has no hierarchies")
        return next(iter(self.hierarchies.values())).root.name

    def __getitem__(self, name: str) -> Hierarchy:
        return self.hierarchies[name]

    def __contains__(self, name: str) -> bool:
        return name in self.hierarchies

    def __len__(self) -> int:
        return len(self.hierarchies)

    # -- schema ----------------------------------------------------------

    def attach_cmh(self, cmh: ConcurrentMarkupHierarchy) -> None:
        """Attach a CMH schema and validate every hierarchy against it.

        The CMH's hierarchy names must cover this document's hierarchy
        names, and each encoding must be valid per its DTD.
        """
        for name, hierarchy in self.hierarchies.items():
            if name not in cmh.dtds:
                raise CMHError(
                    f"document hierarchy '{name}' has no DTD in the CMH")
            if hierarchy.root.name != cmh.root:
                raise CMHError(
                    f"hierarchy '{name}' root '{hierarchy.root.name}' "
                    f"differs from the CMH root '{cmh.root}'")
            try:
                validate(hierarchy.document, cmh.dtds[name])
            except ValidationError as error:
                raise ValidationError(
                    f"hierarchy '{name}': {error}") from error
        self.cmh = cmh

    # -- alignment ---------------------------------------------------------

    def _align(self, hierarchy: Hierarchy) -> None:
        """Verify the hierarchy's text equals ``S``; record text spans."""
        cursor = 0
        text = self.text
        for node in hierarchy.document.root.iter():
            if not isinstance(node, dom.Text):
                continue
            end = cursor + len(node.data)
            if text[cursor:end] != node.data:
                offset = _first_divergence(text, cursor, node.data)
                raise AlignmentError(
                    f"hierarchy '{hierarchy.name}' diverges from the base "
                    f"text at offset {offset}: expected "
                    f"{text[offset:offset + 20]!r}, encoding has "
                    f"{node.data[offset - cursor:offset - cursor + 20]!r}",
                    hierarchy=hierarchy.name, offset=offset)
            node.start, node.end = cursor, end
            cursor = end
        if cursor != len(text):
            raise AlignmentError(
                f"hierarchy '{hierarchy.name}' covers only the first "
                f"{cursor} of {len(text)} characters of the base text",
                hierarchy=hierarchy.name, offset=cursor)

    def verify_alignment(self) -> None:
        """Re-check alignment of every hierarchy (after mutation)."""
        for hierarchy in self.hierarchies.values():
            self._align(hierarchy)

    # -- forking -----------------------------------------------------------

    def clone(self) -> "MultihierarchicalDocument":
        """An independent deep copy sharing only immutable pieces.

        Every hierarchy DOM is cloned node-by-node (text spans survive,
        so no re-alignment pass is needed); the CMH schema — immutable
        once parsed — is shared.  This is the copy-on-write fork of the
        document store's single-writer path (DESIGN.md §10): the writer
        mutates the clone while readers keep querying the original.
        """
        copy = MultihierarchicalDocument(self.text)
        for name, hierarchy in self.hierarchies.items():
            copy.hierarchies[name] = Hierarchy(
                name, hierarchy.document.clone())
        copy.cmh = self.cmh
        return copy


def _first_divergence(text: str, cursor: int, data: str) -> int:
    """Offset in ``text`` of the first mismatching character."""
    limit = min(len(text) - cursor, len(data))
    for index in range(limit):
        if text[cursor + index] != data[index]:
            return cursor + index
    return cursor + limit
