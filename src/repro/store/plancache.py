"""The cross-document compiled-plan cache (DESIGN.md §10, §16).

Mechanical query compilation is a pure function of the query text, the
grammar, and the plan pipeline's lowering rules; the cost pass
(DESIGN.md §16) additionally reads document *statistics*, so one cache
can still serve every catalog entry of a
:class:`~repro.store.DocumentStore` — keyed by the statistics
fingerprint.  Keys combine the grammar version
(:data:`repro.core.lang.GRAMMAR_VERSION`), the plan pipeline version
(:data:`repro.core.plan.PLAN_VERSION` — bumped when lowering rules
change, e.g. PR 5's interval-join lowering), the compilation mode, the
query text, the (frozen, hashable) query options, and the
:meth:`~repro.core.goddag.stats.PlanStats.fingerprint` the plan was
costed against (``None`` for mechanical plans); a grammar or pipeline
bump — or an update that shifts cardinalities — therefore orphans
stale plans instead of serving them.  The fingerprint deliberately
excludes the document version, so identical replicas keep sharing one
costed plan.

The cache is thread-safe: lookups and LRU bookkeeping hold a short
lock, while compilation itself runs outside it (two racing threads may
both compile a missing query; the first store wins and the duplicate
is discarded — wasted work, never wrong results).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.lang import GRAMMAR_VERSION
from repro.core.plan import PLAN_VERSION, CompiledQuery, compile_query
from repro.core.runtime import QueryOptions


class SharedPlanCache:
    """An LRU of :class:`CompiledQuery` shared across documents."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, CompiledQuery] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, text: str, options: QueryOptions, *,
            xpath: bool = False,
            stats=None) -> tuple[CompiledQuery, bool]:
        """``(compiled plan, was it a cache hit)`` for one query.

        Pass the target document's
        :class:`~repro.core.goddag.stats.PlanStats` to compile (and
        key) a costed plan; without it the plan is mechanical.
        """
        mode = "xpath" if xpath else "query"
        fingerprint = stats.fingerprint() if stats is not None else None
        key = (GRAMMAR_VERSION, PLAN_VERSION, mode, text, options,
               fingerprint)
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return cached, True
        compiled = compile_query(text, xpath=xpath, stats=stats)
        with self._lock:
            racing = self._plans.get(key)
            if racing is not None:
                self.hits += 1
                return racing, True
            self._plans[key] = compiled
            self.misses += 1
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
        return compiled, False

    def stats(self) -> dict[str, int]:
        """Counter snapshot (the server's ``/statz`` view)."""
        with self._lock:
            return {"capacity": self.capacity, "hits": self.hits,
                    "misses": self.misses, "size": len(self._plans)}

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
