"""The :class:`DocumentStore`: a named catalog of persistent engines.

Concurrency model (DESIGN.md §10) — **single writer, many snapshot
readers**, per store:

* every document name maps to one published :class:`Snapshot` — a
  frozen engine at a version.  ``snapshot(name)`` is a single dict
  read (atomic under the GIL) and never takes the writer lock;
* ``update(name, statements)`` serializes writers on one re-entrant
  lock, **forks** the current snapshot (DOM clone + goddag rebuild —
  the engine's incremental update paths then run on the private fork),
  applies the whole statement batch transactionally, persists the new
  ``.mhxb``, and publishes the fork as the next snapshot.  A failing
  statement aborts the entire batch: the fork is discarded and both
  the published snapshot and the on-disk file stay at the old version;
* compiled plans live in one :class:`SharedPlanCache` keyed by query
  text + grammar, shared by every catalog entry — a query compiled for
  one document is a cache hit for all of them.

On disk a store is a directory: ``store.json`` (the manifest) plus one
``.mhxb`` file per document, each written atomically.
"""

from __future__ import annotations

import json
import re
import shutil
import threading
from pathlib import Path

from repro.api import Engine, UpdateResult, load_mhx
from repro.errors import ReproError
from repro.cmh import MultihierarchicalDocument
from repro.core.runtime import QueryOptions
from repro.store.mhxb import looks_like_mhxb, read_header, save_engine
from repro.store.plancache import SharedPlanCache
from repro.store.snapshot import Snapshot

STORE_FORMAT = "mhx-store-1"
MANIFEST_NAME = "store.json"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def fork_engine(engine: Engine) -> Engine:
    """An unfrozen deep copy of an engine at the same version.

    The document DOM is cloned node-by-node (no XML re-parse) and the
    KyGODDAG rebuilt from the clone; the version counter carries over,
    so subsequent updates continue the original version sequence.
    """
    document = engine.document.clone()
    forked = Engine(document, options=engine.options,
                    use_pipeline=engine.use_pipeline)
    forked.goddag.version = engine.goddag.version
    return forked


class DocumentStore:
    """A directory-backed catalog of documents with MVCC snapshots."""

    def __init__(self, root: str | Path,
                 options: QueryOptions | None = None,
                 plan_cache_size: int = 512) -> None:
        self.root = Path(root)
        self.options = options or QueryOptions()
        self.plans = SharedPlanCache(plan_cache_size)
        self._lock = threading.RLock()
        self._live: dict[str, Snapshot] = {}
        manifest_path = self.root / MANIFEST_NAME
        try:
            manifest = json.loads(
                manifest_path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ReproError(
                f"{self.root} is not a document store ({error}); "
                f"create one with DocumentStore.init / "
                f"`mhxq store init`") from error
        except json.JSONDecodeError as error:
            raise ReproError(
                f"corrupt store manifest {manifest_path}: "
                f"{error}") from error
        if manifest.get("format") != STORE_FORMAT:
            raise ReproError(
                f"{manifest_path} is not an {STORE_FORMAT} manifest "
                f"(format={manifest.get('format')!r})")
        self._manifest = manifest

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def init(cls, root: str | Path, **kwargs) -> "DocumentStore":
        """Create an empty store directory (refusing to clobber one)."""
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists():
            raise ReproError(f"{root} already holds a document store")
        root.mkdir(parents=True, exist_ok=True)
        _write_json(manifest_path,
                    {"format": STORE_FORMAT, "documents": {}})
        return cls(root, **kwargs)

    # -- catalog -------------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Registered document names, in registration order."""
        with self._lock:  # snapshot the keys: add() may race this walk
            return list(self._manifest["documents"])

    def entries(self) -> list[tuple[str, int, str]]:
        """``(name, persisted version, file name)`` per document."""
        with self._lock:
            return [(name, entry["version"], entry["file"])
                    for name, entry in
                    self._manifest["documents"].items()]

    def __contains__(self, name: str) -> bool:
        return name in self._manifest["documents"]

    def __len__(self) -> int:
        return len(self._manifest["documents"])

    def add(self, name: str,
            document: MultihierarchicalDocument | None = None, *,
            engine: Engine | None = None,
            path: str | Path | None = None) -> Snapshot:
        """Register a document under ``name`` and persist it.

        Exactly one source: an in-memory document (cloned — the caller
        keeps ownership of theirs), a live engine (forked likewise), or
        a ``.mhx``/``.mhxb`` file path.
        """
        if not _NAME_RE.match(name):
            raise ReproError(
                f"invalid document name {name!r} (want "
                f"[A-Za-z0-9][A-Za-z0-9._-]*, at most 64 characters)")
        provided = [source for source in (document, engine, path)
                    if source is not None]
        if len(provided) != 1:
            raise ReproError(
                "add() needs exactly one of document / engine / path")
        with self._lock:
            if name in self._manifest["documents"]:
                raise ReproError(
                    f"document {name!r} already exists in this store")
            if path is not None and looks_like_mhxb(path):
                # Register by byte copy: saves are deterministic, so
                # re-serializing would reproduce the source bytes at
                # the full pipeline cost the format exists to skip.
                read_header(path)  # validate before the copy lands
                target = self.root / f"{name}.mhxb"
                temp = target.with_name(target.name + ".tmp")
                shutil.copyfile(path, temp)
                temp.replace(target)
                try:
                    fresh = Engine.from_mhxb(target,
                                             options=self.options)
                except ReproError:
                    target.unlink(missing_ok=True)
                    raise
                snapshot = Snapshot(name, fresh, self.plans)
                self._manifest["documents"][name] = {
                    "file": target.name,
                    "version": fresh.version,
                }
                self._save_manifest()
            else:
                if path is not None:
                    fresh = Engine(load_mhx(path), options=self.options)
                elif engine is not None:
                    fresh = fork_engine(engine)
                else:
                    fresh = Engine(document.clone(),
                                   options=self.options)
                snapshot = Snapshot(name, fresh, self.plans)
                self._persist(name, fresh)
            self._live[name] = snapshot
            return snapshot

    def remove(self, name: str) -> None:
        """Drop a document from the catalog and delete its file."""
        with self._lock:
            entry = self._manifest["documents"].pop(name, None)
            if entry is None:
                raise ReproError(f"no document named {name!r}")
            self._live.pop(name, None)
            self._save_manifest()
            (self.root / entry["file"]).unlink(missing_ok=True)

    # -- reads ---------------------------------------------------------------

    def snapshot(self, name: str) -> Snapshot:
        """The current published snapshot (lock-free when warm).

        A cold catalog entry is mmap-loaded from its ``.mhxb`` file
        under the writer lock (once), then served lock-free.
        """
        snapshot = self._live.get(name)
        if snapshot is not None:
            return snapshot
        with self._lock:
            snapshot = self._live.get(name)
            if snapshot is not None:
                return snapshot
            entry = self._manifest["documents"].get(name)
            if entry is None:
                raise ReproError(f"no document named {name!r}")
            engine = Engine.from_mhxb(self.root / entry["file"],
                                      options=self.options)
            snapshot = Snapshot(name, engine, self.plans)
            self._live[name] = snapshot
            return snapshot

    def query(self, name: str, text: str,
              variables: dict[str, list] | None = None):
        """Query the current snapshot of one document."""
        return self.snapshot(name).query(text, variables)

    def xpath(self, name: str, text: str,
              variables: dict[str, list] | None = None):
        """XPath against the current snapshot of one document."""
        return self.snapshot(name).xpath(text, variables)

    # -- writes --------------------------------------------------------------

    def update(self, name: str, statements: str | list[str], *,
               check: bool = True,
               persist: bool = True) -> list[UpdateResult]:
        """Apply an update batch and publish the next snapshot.

        The whole batch is one transaction over one fork: readers on
        the old snapshot keep their version, readers arriving after
        publication see every statement applied, and nobody ever sees
        a prefix.  Any failure discards the fork untouched.
        """
        if isinstance(statements, str):
            statements = [statements]
        if not statements:
            raise ReproError("update() needs at least one statement")
        with self._lock:
            current = self.snapshot(name)
            working = fork_engine(current.engine)
            results = [working.update(statement, check=check)
                       for statement in statements]
            snapshot = Snapshot(name, working, self.plans)
            if persist:
                self._persist(name, working)
            self._live[name] = snapshot
        return results

    def compact(self, name: str | None = None) -> dict[str, int]:
        """Rewrite ``.mhxb`` files from the live snapshots.

        Persists any in-memory versions created with ``persist=False``
        and normalizes the on-disk span-index order; returns the new
        file size per document.
        """
        sizes: dict[str, int] = {}
        targets = [name] if name is not None else self.names
        with self._lock:
            for target in targets:
                snapshot = self.snapshot(target)
                sizes[target] = self._persist(target, snapshot.engine)
        return sizes

    # -- persistence ---------------------------------------------------------

    def _persist(self, name: str, engine: Engine) -> int:
        file_name = f"{name}.mhxb"
        size = save_engine(engine, self.root / file_name)
        self._manifest["documents"][name] = {
            "file": file_name,
            "version": engine.version,
        }
        self._save_manifest()
        return size

    def _save_manifest(self) -> None:
        _write_json(self.root / MANIFEST_NAME, self._manifest)


def _write_json(path: Path, payload: dict) -> None:
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(json.dumps(payload, ensure_ascii=False, indent=2)
                    + "\n", encoding="utf-8")
    temp.replace(path)
