"""The :class:`DocumentStore`: a named catalog of persistent engines.

Concurrency model (DESIGN.md §10) — **single writer, many snapshot
readers**, per store:

* every document name maps to one published :class:`Snapshot` — a
  frozen engine at a version.  ``snapshot(name)`` is a single dict
  read (atomic under the GIL) and never takes the writer lock;
* ``update(name, statements)`` serializes writers on one re-entrant
  lock, **forks** the current snapshot (DOM clone + goddag rebuild —
  the engine's incremental update paths then run on the private fork),
  applies the whole statement batch transactionally, persists the new
  ``.mhxb``, and publishes the fork as the next snapshot.  A failing
  statement aborts the entire batch: the fork is discarded and both
  the published snapshot and the on-disk file stay at the old version;
* compiled plans live in one :class:`SharedPlanCache` keyed by query
  text + grammar, shared by every catalog entry — a query compiled for
  one document is a cache hit for all of them.

Crash safety (DESIGN.md §12) — on disk a store is a directory:
``store.json`` (the generation-stamped manifest, atomically renamed
into place with the previous generation kept hardlinked at
``store.json.prev``) plus one checksummed ``.mhxb`` file per document.
Every file mutation routes through the :mod:`~repro.store.faultfs` OS
layer and follows write-temp → fsync → rename → fsync-directory under
the store's ``durability`` policy (``"full"`` syncs every commit,
``"batch"`` defers syncs to :meth:`DocumentStore.sync` / ``compact``,
``"off"`` never syncs but stays rename-atomic).  Opening a store runs
:meth:`DocumentStore.recover`: temp litter is swept, manifest entries
are reconciled against the on-disk files (adopting the newer
consistent state a crash may have left), and corrupt or missing
documents are **quarantined** in the manifest instead of failing the
open.
"""

from __future__ import annotations

import json
import re
import shutil
import threading
from pathlib import Path

from repro.api import Engine, UpdateResult, load_mhx
from repro.errors import ReproError, StoreError
from repro.cmh import MultihierarchicalDocument
from repro.core.plan.distribute import classify, find_collections
from repro.core.runtime import QueryOptions
from repro.core.runtime.serializer import serialize_item
from repro.store import faultfs
from repro.store.mhxb import (
    looks_like_mhxb,
    read_header,
    save_engine,
    verify_blocks,
)
from repro.store.plancache import SharedPlanCache
from repro.store.pool import (
    CorpusResult,
    ShardWorkerPool,
    gather,
    run_shard,
)
from repro.store.sharding import CorpusStats, fuse_documents, shard_document
from repro.store.snapshot import Snapshot

STORE_FORMAT = "mhx-store-1"
MANIFEST_NAME = "store.json"
MANIFEST_PREV_NAME = "store.json.prev"

#: durability policies: every-commit syncs / deferred coalesced syncs /
#: rename-atomicity only
DURABILITY_MODES = ("full", "batch", "off")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def fork_engine(engine: Engine) -> Engine:
    """An unfrozen deep copy of an engine at the same version.

    The document DOM is cloned node-by-node (no XML re-parse) and the
    KyGODDAG rebuilt from the clone; the version counter carries over,
    so subsequent updates continue the original version sequence.
    """
    document = engine.document.clone()
    forked = Engine(document, options=engine.options,
                    use_pipeline=engine.use_pipeline)
    forked.goddag.version = engine.goddag.version
    return forked


def retire_engine(engine: Engine | None) -> None:
    """Make an engine that is leaving the catalog collectable.

    A KyGODDAG's numpy object-array caches hide its reference cycles
    from the garbage collector (``ndarray`` supports no traversal —
    see :meth:`KyGoddag.release_caches`), so every version the store
    unpublishes would otherwise stay resident forever and a steady
    update load would grow without bound.  Readers still pinned to the
    retired version are unaffected: every released cache is a lazily
    rebuilt idempotent fill.
    """
    if engine is not None:
        engine.goddag.release_caches()


class DocumentStore:
    """A directory-backed catalog of documents with MVCC snapshots."""

    def __init__(self, root: str | Path,
                 options: QueryOptions | None = None,
                 plan_cache_size: int = 512,
                 durability: str = "full",
                 verify_cold_loads: bool = True) -> None:
        if durability not in DURABILITY_MODES:
            raise ReproError(
                f"unknown durability policy {durability!r} "
                f"(want one of {', '.join(DURABILITY_MODES)})")
        self.root = Path(root)
        self.options = options or QueryOptions()
        self.plans = SharedPlanCache(plan_cache_size)
        self.durability = durability
        self.verify_cold_loads = verify_cold_loads
        self._lock = threading.RLock()
        self._live: dict[str, Snapshot] = {}
        self._dirty: set[Path] = set()
        #: the last persisted manifest payload sans generation — the
        #: batch-durability fast path skips rewriting when unchanged
        self._manifest_core: str | None = None
        #: parent-side shard engines (serial execution + fused builds)
        self._shard_engines: dict[str, Engine] = {}
        #: fused whole-corpus engines, keyed by corpus name
        self._fused: dict[str, Engine] = {}
        self._pools: dict[int, ShardWorkerPool] = {}
        self._manifest = self._load_manifest()
        self._manifest.setdefault("generation", 0)
        self._manifest.setdefault("quarantined", {})
        self._manifest.setdefault("corpora", {})
        self.recovery = self.recover()

    def _load_manifest(self) -> dict:
        """Parse ``store.json``, falling back to the previous
        generation (``store.json.prev``) when the current pointer is
        unreadable or corrupt."""
        manifest_path = self.root / MANIFEST_NAME
        prev_path = self.root / MANIFEST_PREV_NAME
        try:
            manifest = json.loads(
                manifest_path.read_text(encoding="utf-8"))
            source = MANIFEST_NAME
        except (OSError, json.JSONDecodeError) as error:
            try:
                manifest = json.loads(
                    prev_path.read_text(encoding="utf-8"))
                source = MANIFEST_PREV_NAME
            except (OSError, json.JSONDecodeError):
                if isinstance(error, json.JSONDecodeError):
                    raise ReproError(
                        f"corrupt store manifest {manifest_path}: "
                        f"{error}") from error
                raise ReproError(
                    f"{self.root} is not a document store ({error}); "
                    f"create one with DocumentStore.init / "
                    f"`mhxq store init`") from error
        if manifest.get("format") != STORE_FORMAT:
            raise ReproError(
                f"{self.root / source} is not an {STORE_FORMAT} "
                f"manifest (format={manifest.get('format')!r})")
        manifest["_loaded_from"] = source
        return manifest

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def init(cls, root: str | Path, **kwargs) -> "DocumentStore":
        """Create an empty store directory (refusing to clobber one)."""
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists():
            raise ReproError(f"{root} already holds a document store")
        root.mkdir(parents=True, exist_ok=True)
        _write_json(manifest_path,
                    {"format": STORE_FORMAT, "generation": 0,
                     "documents": {}, "quarantined": {}},
                    durability="full")
        return cls(root, **kwargs)

    # -- recovery ------------------------------------------------------------

    def recover(self) -> dict:
        """Reconcile the manifest with the directory; return a report.

        Runs automatically at open.  Sweeps ``.tmp`` litter, adopts the
        newer consistent state when a crash landed between a data-file
        rename and the manifest write (the ``.mhxb`` header's version
        is authoritative for committed files), re-adopts orphan
        ``.mhxb`` files the manifest never learned about, and
        quarantines documents whose files are missing or fail their
        header checksum — the store opens regardless.
        """
        report: dict = {"swept": [], "adopted": [], "quarantined": [],
                        "manifest": self._manifest.pop("_loaded_from",
                                                       MANIFEST_NAME)}
        with self._lock:
            documents = self._manifest["documents"]
            quarantined = self._manifest["quarantined"]
            changed = report["manifest"] != MANIFEST_NAME
            for litter in sorted(self.root.glob("*.tmp")):
                litter.unlink(missing_ok=True)
                report["swept"].append(litter.name)
            for name, entry in list(documents.items()):
                path = self.root / entry["file"]
                if not path.exists():
                    self._quarantine_entry(name, entry,
                                           "file missing on disk")
                    report["quarantined"].append(name)
                    changed = True
                    continue
                try:
                    header, _start = read_header(path)
                except ReproError as error:
                    self._quarantine_entry(name, entry, str(error))
                    report["quarantined"].append(name)
                    changed = True
                    continue
                if header["version"] != entry["version"]:
                    entry["version"] = header["version"]
                    report["adopted"].append(
                        f"{name} (version {header['version']})")
                    changed = True
            corpora = self._manifest["corpora"]
            for name, entry in list(corpora.items()):
                for file_name in entry["files"]:
                    path = self.root / file_name
                    reason = None
                    if not path.exists():
                        reason = f"shard {file_name} missing on disk"
                    else:
                        try:
                            read_header(path)
                        except ReproError as error:
                            reason = str(error)
                    if reason is not None:
                        corpora.pop(name, None)
                        quarantined[name] = {"file": entry["files"][0],
                                             "files": entry["files"],
                                             "version": None,
                                             "reason": reason}
                        report["quarantined"].append(name)
                        changed = True
                        break
            referenced = ({entry["file"] for entry in documents.values()}
                          | {entry["file"]
                             for entry in quarantined.values()}
                          | {file_name for entry in corpora.values()
                             for file_name in entry["files"]}
                          | {file_name for entry in quarantined.values()
                             for file_name in entry.get("files", [])})
            for path in sorted(self.root.glob("*.mhxb")):
                if path.name in referenced:
                    continue
                name = path.name[:-len(".mhxb")]
                try:
                    header, _start = read_header(path)
                except ReproError as error:
                    quarantined[name] = {"file": path.name,
                                         "version": None,
                                         "reason": str(error)}
                    report["quarantined"].append(name)
                    changed = True
                    continue
                documents[name] = {"file": path.name,
                                   "version": header["version"]}
                report["adopted"].append(
                    f"{name} (version {header['version']})")
                changed = True
            if changed:
                self._save_manifest()
        return report

    def verify(self, name: str | None = None) -> dict[str, str]:
        """Deep checksum scan; per-document status strings.

        ``"ok (N blocks)"`` for every verified v2 container, a note for
        v1 containers (no block checksums to check), ``"corrupt: ..."``
        naming the failing block, and the quarantine reason for
        already-quarantined documents.  Read-only: quarantining happens
        at recovery or on a failed cold load, not here.
        """
        out: dict[str, str] = {}
        with self._lock:
            documents = self._manifest["documents"]
            targets = [name] if name is not None else list(documents)
            for target in targets:
                entry = documents.get(target)
                if entry is None:
                    if target not in self._manifest["quarantined"]:
                        raise ReproError(
                            f"no document named {target!r}")
                    continue
                path = self.root / entry["file"]
                try:
                    header, data_start = read_header(path)
                    checked = verify_blocks(path, header, data_start)
                except ReproError as error:
                    out[target] = f"corrupt: {error}"
                else:
                    out[target] = (f"ok ({checked} blocks)" if checked
                                   else "ok (v1 container, no block "
                                        "checksums)")
            for qname, qentry in self._manifest["quarantined"].items():
                if name in (None, qname):
                    out[qname] = f"quarantined: {qentry['reason']}"
        return out

    @property
    def quarantined(self) -> dict[str, dict]:
        """The manifest's quarantine section (name → file/version/reason)."""
        with self._lock:
            return {name: dict(entry) for name, entry
                    in self._manifest["quarantined"].items()}

    def _quarantine_entry(self, name: str, entry: dict,
                          reason: str) -> None:
        """Move a catalog entry into the quarantine section (in memory;
        callers persist the manifest)."""
        self._manifest["documents"].pop(name, None)
        dropped = self._live.pop(name, None)
        if dropped is not None:
            retire_engine(dropped.engine)
        self._manifest["quarantined"][name] = {
            "file": entry["file"],
            "version": entry.get("version"),
            "reason": reason,
        }

    # -- catalog -------------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Registered document names, in registration order."""
        with self._lock:  # snapshot the keys: add() may race this walk
            return list(self._manifest["documents"])

    def entries(self) -> list[tuple[str, int, str]]:
        """``(name, persisted version, file name)`` per document."""
        with self._lock:
            return [(name, entry["version"], entry["file"])
                    for name, entry in
                    self._manifest["documents"].items()]

    def __contains__(self, name: str) -> bool:
        return name in self._manifest["documents"]

    def __len__(self) -> int:
        return len(self._manifest["documents"])

    def add(self, name: str,
            document: MultihierarchicalDocument | None = None, *,
            engine: Engine | None = None,
            path: str | Path | None = None) -> Snapshot:
        """Register a document under ``name`` and persist it.

        Exactly one source: an in-memory document (cloned — the caller
        keeps ownership of theirs), a live engine (forked likewise), or
        a ``.mhx``/``.mhxb`` file path.  Registration is transactional:
        if the manifest write fails, the data file is removed and the
        in-memory catalog rolled back.
        """
        if not _NAME_RE.match(name):
            raise ReproError(
                f"invalid document name {name!r} (want "
                f"[A-Za-z0-9][A-Za-z0-9._-]*, at most 64 characters)")
        provided = [source for source in (document, engine, path)
                    if source is not None]
        if len(provided) != 1:
            raise ReproError(
                "add() needs exactly one of document / engine / path")
        with self._lock:
            if name in self._manifest["documents"]:
                raise ReproError(
                    f"document {name!r} already exists in this store")
            if name in self._manifest["quarantined"]:
                raise StoreError(
                    f"document {name!r} is quarantined "
                    f"({self._manifest['quarantined'][name]['reason']});"
                    f" remove() it before re-adding")
            target = self.root / f"{name}.mhxb"
            if path is not None and looks_like_mhxb(path):
                # Register by byte copy: saves are deterministic, so
                # re-serializing would reproduce the source bytes at
                # the full pipeline cost the format exists to skip.
                verify_blocks(path)  # validate before the copy lands
                temp = target.with_name(target.name + ".tmp")
                shutil.copyfile(path, temp)
                faultfs.current().replace(temp, target)
                try:
                    fresh = Engine.from_mhxb(target,
                                             options=self.options)
                    snapshot = Snapshot(name, fresh, self.plans)
                    self._commit_entry(name, target.name, fresh.version)
                except Exception:
                    target.unlink(missing_ok=True)
                    raise
            else:
                if path is not None:
                    fresh = Engine(load_mhx(path), options=self.options)
                elif engine is not None:
                    fresh = fork_engine(engine)
                else:
                    fresh = Engine(document.clone(),
                                   options=self.options)
                snapshot = Snapshot(name, fresh, self.plans)
                try:
                    self._persist(name, fresh)
                except Exception:
                    target.unlink(missing_ok=True)
                    raise
            self._live[name] = snapshot
            return snapshot

    def add_streaming(self, name: str, text: str,
                      sources: dict[str, str], *,
                      layers: dict | None = None) -> Snapshot:
        """Register a document by streaming ingest (DESIGN.md §15).

        XML encodings (and optional standoff span ``layers``) over the
        shared base ``text`` are tokenized straight into this store's
        ``.mhxb`` file by :class:`repro.markup.streaming.
        StreamingBuilder` — no DOM is ever materialized, and the file
        is byte-identical to what :meth:`add` would have written for
        the equivalent document.  Transactional like :meth:`add`.
        """
        from repro.markup.streaming import stream_save
        if not _NAME_RE.match(name):
            raise ReproError(
                f"invalid document name {name!r} (want "
                f"[A-Za-z0-9][A-Za-z0-9._-]*, at most 64 characters)")
        with self._lock:
            if name in self._manifest["documents"]:
                raise ReproError(
                    f"document {name!r} already exists in this store")
            if name in self._manifest["quarantined"]:
                raise StoreError(
                    f"document {name!r} is quarantined "
                    f"({self._manifest['quarantined'][name]['reason']});"
                    f" remove() it before re-adding")
            target = self.root / f"{name}.mhxb"
            try:
                stream_save(text, sources, target, layers=layers,
                            durability=self._file_durability)
                if self.durability == "batch":
                    self._dirty.add(target)
                fresh = Engine.from_mhxb(target, options=self.options)
                snapshot = Snapshot(name, fresh, self.plans)
                self._commit_entry(name, target.name, fresh.version)
            except Exception:
                target.unlink(missing_ok=True)
                raise
            self._live[name] = snapshot
            return snapshot

    def remove(self, name: str) -> None:
        """Drop a document (or quarantined entry) and delete its file."""
        with self._lock:
            entry = self._manifest["documents"].pop(name, None)
            if entry is None:
                entry = self._manifest["quarantined"].pop(name, None)
            if entry is None:
                raise ReproError(f"no document named {name!r}")
            dropped = self._live.pop(name, None)
            if dropped is not None:
                retire_engine(dropped.engine)
            self._save_manifest()
            for file_name in entry.get("files", []) or [entry["file"]]:
                faultfs.current().unlink(self.root / file_name)

    # -- corpora -------------------------------------------------------------

    @property
    def corpora(self) -> list[str]:
        """Registered corpus names, in registration order."""
        with self._lock:
            return list(self._manifest["corpora"])

    def corpus_stats(self, name: str) -> CorpusStats:
        """The persisted shard statistics of one corpus."""
        with self._lock:
            entry = self._corpus_entry(name)
            return CorpusStats.from_json(entry["stats"])

    def _corpus_entry(self, name: str) -> dict:
        entry = self._manifest["corpora"].get(name)
        if entry is None:
            quarantine = self._manifest["quarantined"].get(name)
            if quarantine is not None:
                raise StoreError(
                    f"corpus {name!r} is quarantined: "
                    f"{quarantine['reason']}")
            raise ReproError(f"no corpus named {name!r}")
        return entry

    def add_corpus(self, name: str,
                   document: MultihierarchicalDocument, *,
                   shards: int) -> CorpusStats:
        """Partition ``document`` into a sharded corpus (DESIGN.md §13).

        The document is cut at size-balanced fragment boundaries valid
        in **every** hierarchy (:func:`repro.store.sharding.
        shard_document`), each shard persisted as its own checksummed
        ``.mhxb`` file, and the manifest entry records the per-shard
        statistics (word counts, span bounds, per-name cardinalities)
        that :meth:`cquery` uses for shard pruning.  Registration is
        transactional like :meth:`add`: a failed manifest write removes
        the shard files and rolls the entry back.  The markup may offer
        fewer valid cuts than requested — the persisted stats say how
        many shards the corpus actually got.
        """
        if not _NAME_RE.match(name):
            raise ReproError(
                f"invalid corpus name {name!r} (want "
                f"[A-Za-z0-9][A-Za-z0-9._-]*, at most 64 characters)")
        with self._lock:
            for section in ("documents", "corpora"):
                if name in self._manifest[section]:
                    raise ReproError(
                        f"{name!r} already exists in this store "
                        f"({section[:-1]})")
            if name in self._manifest["quarantined"]:
                raise StoreError(
                    f"{name!r} is quarantined "
                    f"({self._manifest['quarantined'][name]['reason']});"
                    f" remove() it before re-adding")
            parts, stats = shard_document(document, shards)
            files: list[str] = []
            try:
                for index, part in enumerate(parts):
                    file_name = f"{name}.shard{index:04d}.mhxb"
                    engine = Engine(part, options=self.options)
                    save_engine(engine, self.root / file_name,
                                durability=self._file_durability)
                    if self.durability == "batch":
                        self._dirty.add(self.root / file_name)
                    files.append(file_name)
                self._manifest["corpora"][name] = {
                    "files": files,
                    "stats": stats.to_json(),
                }
                try:
                    self._save_manifest()
                except Exception:
                    self._manifest["corpora"].pop(name, None)
                    raise
            except Exception:
                for file_name in files:
                    (self.root / file_name).unlink(missing_ok=True)
                raise
            return stats

    def add_corpus_streaming(self, name: str, text: str,
                             sources: dict[str, str], *, shards: int,
                             layers: dict | None = None) -> CorpusStats:
        """Stream a sharded corpus straight into per-shard ``.mhxb``
        files (DESIGN.md §15).

        Encodings (and optional standoff span ``layers``) are ingested
        DOM-free, the node tables are cut at the same fragment
        boundaries :meth:`add_corpus` would choose, and each shard file
        plus the manifest statistics are byte-for-byte what the DOM
        pipeline writes.  Transactional like :meth:`add_corpus`.
        """
        from repro.markup.streaming import StreamingBuilder
        if not _NAME_RE.match(name):
            raise ReproError(
                f"invalid corpus name {name!r} (want "
                f"[A-Za-z0-9][A-Za-z0-9._-]*, at most 64 characters)")
        with self._lock:
            for section in ("documents", "corpora"):
                if name in self._manifest[section]:
                    raise ReproError(
                        f"{name!r} already exists in this store "
                        f"({section[:-1]})")
            if name in self._manifest["quarantined"]:
                raise StoreError(
                    f"{name!r} is quarantined "
                    f"({self._manifest['quarantined'][name]['reason']});"
                    f" remove() it before re-adding")
            builder = StreamingBuilder(text)
            for hierarchy_name, source in sources.items():
                builder.add_hierarchy(hierarchy_name, source)
            for layer_name, spans in (layers or {}).items():
                builder.add_layer(layer_name, spans)
            files: list[str] = []

            def shard_path(index: int) -> Path:
                file_name = f"{name}.shard{index:04d}.mhxb"
                files.append(file_name)
                return self.root / file_name

            try:
                stats = builder.save_shards(
                    shards, shard_path,
                    durability=self._file_durability)
                if self.durability == "batch":
                    for file_name in files:
                        self._dirty.add(self.root / file_name)
                self._manifest["corpora"][name] = {
                    "files": files,
                    "stats": stats.to_json(),
                }
                try:
                    self._save_manifest()
                except Exception:
                    self._manifest["corpora"].pop(name, None)
                    raise
            except Exception:
                for file_name in files:
                    (self.root / file_name).unlink(missing_ok=True)
                raise
            return stats

    def remove_corpus(self, name: str) -> None:
        """Drop a corpus and delete its shard files."""
        with self._lock:
            entry = self._manifest["corpora"].pop(name, None)
            if entry is None:
                raise ReproError(f"no corpus named {name!r}")
            for file_name in entry["files"]:
                retire_engine(self._shard_engines.pop(file_name, None))
            retire_engine(self._fused.pop(name, None))
            self._save_manifest()
            for file_name in entry["files"]:
                faultfs.current().unlink(self.root / file_name)

    def _shard_engine(self, file_name: str) -> Engine:
        """Parent-side memmapped engine for one shard file (cached)."""
        engine = self._shard_engines.get(file_name)
        if engine is None:
            engine = Engine.from_mhxb(self.root / file_name,
                                      options=self.options)
            self._shard_engines[file_name] = engine
        return engine

    def _fused_engine(self, name: str, files: list[str]) -> Engine:
        """The whole-corpus fallback engine (cached per corpus)."""
        engine = self._fused.get(name)
        if engine is None:
            documents = [self._shard_engine(file_name).document
                         for file_name in files]
            engine = Engine(fuse_documents(documents),
                            options=self.options)
            self._fused[name] = engine
        return engine

    def _pool(self, workers: int) -> ShardWorkerPool:
        pool = self._pools.get(workers)
        if pool is None:
            pool = ShardWorkerPool(workers)
            self._pools[workers] = pool
        return pool

    def cquery(self, text: str, *, workers: int = 1,
               prune: bool = True,
               _crash_shard: int | None = None) -> CorpusResult:
        """Evaluate a ``collection("name")`` query over a corpus.

        The compiled plan is classified
        (:mod:`repro.core.plan.distribute`): scatterable plans fan out
        one task per shard — pruned against the manifest statistics
        first — either in-process (``workers=1``) or over the
        persistent fork pool, and the gather side merges positions +
        packed okeys back into corpus document order; non-distributable
        plans fall back to one fused whole-corpus engine
        (``CorpusResult.mode == "fused"``, ``reason`` says why).

        ``_crash_shard`` is the fault-injection hook: the worker
        executing that shard index dies via ``os._exit`` mid-query,
        the way an OOM kill would (tests only).
        """
        compiled, _hit = self.plans.get(text, self.options)
        names = sorted(set(find_collections(compiled.plan)))
        if not names:
            raise ReproError(
                "cquery() needs a collection(\"name\") reference; "
                "use query() for single documents")
        with self._lock:
            entries = {name: self._corpus_entry(name) for name in names}
        if len(names) > 1:
            raise StoreError(
                f"cquery() supports one corpus per query, got "
                f"{', '.join(names)}")
        name = names[0]
        entry = entries[name]
        files = entry["files"]
        stats = CorpusStats.from_json(entry["stats"])
        verdict = classify(compiled.plan, root_name=stats.root_name,
                           name_hierarchies=stats.name_hierarchies)
        if verdict.mode == "fused":
            return self._run_fused(name, files, compiled,
                                   reason=verdict.reason,
                                   shards_total=len(files))
        survivors = list(range(len(files)))
        if prune and verdict.required_names:
            survivors = [
                index for index in survivors
                if all(stats.shards[index].cards.get(required, 0)
                       for required in verdict.required_names)]
        payloads: list[tuple]
        if workers > 1 and survivors:
            # LPT dispatch: submit the heaviest shards (by manifest
            # cardinality estimate) first so they don't become the
            # straggler tail, then restore survivor order — gather()
            # keys the corpus merge on payload-list position.
            dispatch = sorted(
                survivors, reverse=True,
                key=lambda index: (stats.shards[index].work_estimate(
                    verdict.required_names), -index))
            tasks = [(str(self.root / files[index]), text, verdict.mode,
                      self.options, index == _crash_shard)
                     for index in dispatch]
            returned = self._pool(workers).run(tasks)
            by_shard = dict(zip(dispatch, returned))
            payloads = [by_shard[index] for index in survivors]
        else:
            payloads = []
            for index in survivors:
                engine = self._shard_engine(files[index])
                try:
                    payloads.append(run_shard(engine, self.plans, text,
                                              verdict.mode))
                except ReproError as error:
                    raise StoreError(
                        f"corpus query failed on shard "
                        f"{files[index]!r}: {error}") from error
        items = gather(verdict.mode, payloads,
                       aggregate=verdict.aggregate)
        result = CorpusResult(
            items=items, mode=verdict.mode,
            shards_total=len(files),
            shards_pruned=len(files) - len(survivors),
            shards_executed=len(survivors),
            workers=workers if survivors else 0)
        if verdict.mode == "aggregate":
            result.value = items[0]
            result.items = [serialize_item(items[0])]
        return result

    def _run_fused(self, name: str, files: list[str], compiled, *,
                   reason: str, shards_total: int) -> CorpusResult:
        engine = self._fused_engine(name, files)

        def resolver(frame, _args):
            return [frame.goddag.root]

        items = engine._evaluate_guarded(
            compiled.text,
            lambda: compiled.execute(
                engine.goddag, options=engine.options,
                functions={"collection": resolver}))
        return CorpusResult(
            items=[serialize_item(item) for item in items],
            mode="fused", reason=reason, shards_total=shards_total,
            shards_executed=shards_total, workers=1)

    def close(self) -> None:
        """Shut down worker pools and shed engine caches (idempotent).

        Retiring every cached engine's object arrays lets a closed
        store's whole graph be garbage collected — long-running hosts
        (test suites, the query service) open many stores per process.
        The store stays usable afterwards; shed caches rebuild lazily.
        """
        with self._lock:
            pools, self._pools = list(self._pools.values()), {}
            for snapshot in self._live.values():
                retire_engine(snapshot.engine)
            for engine in self._shard_engines.values():
                retire_engine(engine)
            for engine in self._fused.values():
                retire_engine(engine)
        for pool in pools:
            pool.close()

    # -- reads ---------------------------------------------------------------

    def snapshot(self, name: str) -> Snapshot:
        """The current published snapshot (lock-free when warm).

        A cold catalog entry is mmap-loaded from its ``.mhxb`` file
        under the writer lock (once), then served lock-free.  Under the
        default ``verify_cold_loads`` policy every block checksum is
        scanned before the engine is built — a bit-flipped file is
        quarantined and reported, never served.
        """
        snapshot = self._live.get(name)
        if snapshot is not None:
            return snapshot
        with self._lock:
            snapshot = self._live.get(name)
            if snapshot is not None:
                return snapshot
            entry = self._manifest["documents"].get(name)
            if entry is None:
                quarantine = self._manifest["quarantined"].get(name)
                if quarantine is not None:
                    raise StoreError(
                        f"document {name!r} is quarantined: "
                        f"{quarantine['reason']}")
                raise ReproError(f"no document named {name!r}")
            path = self.root / entry["file"]
            try:
                if self.verify_cold_loads:
                    verify_blocks(path)
                engine = Engine.from_mhxb(path, options=self.options)
            except ReproError as error:
                self._quarantine_entry(name, entry, str(error))
                self._save_manifest()
                raise StoreError(
                    f"document {name!r} failed verification and was "
                    f"quarantined: {error}") from error
            snapshot = Snapshot(name, engine, self.plans)
            self._live[name] = snapshot
            return snapshot

    def query(self, name: str, text: str,
              variables: dict[str, list] | None = None):
        """Query the current snapshot of one document."""
        return self.snapshot(name).query(text, variables)

    def xpath(self, name: str, text: str,
              variables: dict[str, list] | None = None):
        """XPath against the current snapshot of one document."""
        return self.snapshot(name).xpath(text, variables)

    # -- writes --------------------------------------------------------------

    def update(self, name: str, statements: str | list[str], *,
               check: bool = True,
               persist: bool = True) -> list[UpdateResult]:
        """Apply an update batch and publish the next snapshot.

        The whole batch is one transaction over one fork: readers on
        the old snapshot keep their version, readers arriving after
        publication see every statement applied, and nobody ever sees
        a prefix.  Any failure — a bad statement *or* a failed persist
        — discards the fork: the in-memory catalog rolls back and the
        old snapshot stays published.
        """
        if isinstance(statements, str):
            statements = [statements]
        if not statements:
            raise ReproError("update() needs at least one statement")
        with self._lock:
            current = self.snapshot(name)
            working = fork_engine(current.engine)
            try:
                results = [working.update(statement, check=check)
                           for statement in statements]
                snapshot = Snapshot(name, working, self.plans)
                if persist:
                    self._persist(name, working)
            except BaseException:
                retire_engine(working)  # the discarded fork
                raise
            self._live[name] = snapshot
            retire_engine(current.engine)  # the unpublished version
        return results

    def compact(self, name: str | None = None) -> dict[str, int | str]:
        """Rewrite ``.mhxb`` files from the live snapshots.

        Persists any in-memory versions created with ``persist=False``
        and normalizes the on-disk span-index order.  Per document the
        result maps to the new file size, or — when one entry's file is
        missing or corrupt and no live snapshot exists to rewrite it
        from — a ``"skipped: ..."`` status; one bad document never
        aborts the remaining ones.  Under ``durability="batch"`` the
        deferred syncs are flushed afterwards.
        """
        sizes: dict[str, int | str] = {}
        targets = [name] if name is not None else self.names
        with self._lock:
            for target in targets:
                try:
                    snapshot = self.snapshot(target)
                    sizes[target] = self._persist(target,
                                                  snapshot.engine)
                except ReproError as error:
                    sizes[target] = f"skipped: {error}"
            self.sync()
        return sizes

    def sync(self) -> int:
        """Flush deferred (``durability="batch"``) syncs; return the
        number of files synced.  A no-op under the other policies."""
        with self._lock:
            dirty, self._dirty = self._dirty, set()
            layer = faultfs.current()
            synced = 0
            for path in sorted(dirty):
                if not path.exists():
                    continue
                with open(path, "rb") as handle:
                    layer.fsync(handle)
                synced += 1
            if synced:
                layer.fsync_dir(self.root)
            return synced

    # -- persistence ---------------------------------------------------------

    @property
    def _file_durability(self) -> str:
        return "full" if self.durability == "full" else "off"

    def _persist(self, name: str, engine: Engine) -> int:
        """Write the ``.mhxb`` and commit the manifest entry.

        Persist-then-publish is transactional: the data file lands
        first (its header's version makes it recoverable on its own),
        then the manifest entry; a failed manifest write rolls the
        in-memory entry back so the catalog never claims a commit the
        disk doesn't have.
        """
        file_name = f"{name}.mhxb"
        path = self.root / file_name
        size = save_engine(engine, path,
                           durability=self._file_durability)
        if self.durability == "batch":
            self._dirty.add(path)
        self._commit_entry(name, file_name, engine.version)
        return size

    def _commit_entry(self, name: str, file_name: str,
                      version: int) -> None:
        previous = self._manifest["documents"].get(name)
        self._manifest["documents"][name] = {
            "file": file_name,
            "version": version,
        }
        try:
            self._save_manifest()
        except Exception:
            if previous is None:
                self._manifest["documents"].pop(name, None)
            else:
                self._manifest["documents"][name] = previous
            dropped = self._live.pop(name, None)
            if dropped is not None:
                retire_engine(dropped.engine)
            raise

    def _save_manifest(self) -> None:
        """Write the next manifest generation behind the atomic pointer.

        The current ``store.json`` is first hardlinked to
        ``store.json.prev`` (the previous generation stays reachable
        for bit-rot fallback), then the new generation renames into
        place — the pointer flip is the single ``os.replace``.

        Under ``durability="batch"`` a rewrite whose payload (sans
        generation counter) matches the last one written is skipped
        entirely: ``compact``/``sync`` cycles re-commit unchanged
        entries, and deferring their manifest churn is exactly what
        the batch policy promises.  ``"full"`` always rewrites — every
        committed generation must be its own fsynced file.
        """
        manifest_path = self.root / MANIFEST_NAME
        core = json.dumps(
            {key: value for key, value in self._manifest.items()
             if key != "generation"},
            ensure_ascii=False, sort_keys=True)
        if self.durability == "batch" and core == self._manifest_core:
            return
        generation = self._manifest.get("generation", 0)
        self._manifest["generation"] = generation + 1
        try:
            if manifest_path.exists():
                try:
                    faultfs.current().link_replace(
                        manifest_path,
                        self.root / MANIFEST_PREV_NAME)
                except OSError:  # filesystem without hardlinks
                    pass
            _write_json(manifest_path, self._manifest,
                        durability=("full" if self.durability == "full"
                                    else "off"))
        except BaseException:
            self._manifest["generation"] = generation
            self._manifest_core = None  # disk state now uncertain
            raise
        self._manifest_core = core
        if self.durability == "batch":
            self._dirty.add(manifest_path)


def _write_json(path: Path, payload: dict,
                durability: str = "off") -> None:
    layer = faultfs.current()
    temp = path.with_name(path.name + ".tmp")
    data = (json.dumps(payload, ensure_ascii=False, indent=2)
            + "\n").encode("utf-8")
    handle = layer.open_for_write(temp)
    try:
        layer.write(handle, data)
        if durability == "full":
            layer.fsync(handle)
    finally:
        handle.close()
    layer.replace(temp, path)
    if durability == "full":
        layer.fsync_dir(path.parent)
