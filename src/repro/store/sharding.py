"""Partitioning a multihierarchical document into corpus shards.

A shard is a contiguous slice ``[lo, hi)`` of the base text together
with, per hierarchy, the elements wholly contained in that slice.  A
cut position is *valid* when no element in **any** hierarchy strictly
straddles it — with concurrent markup the hierarchies tile the text
differently (verse lines vs physical lines), so valid cuts are the
positions where every hierarchy happens to close simultaneously.
Text nodes may be split by a cut (the fused fallback re-merges them
with ``normalize()``); elements never are, which is what lets a shard
engine answer containment/stab queries locally (DESIGN.md §13).

Cut selection is set-at-a-time: candidate positions are probed with
two ``np.searchsorted`` passes over the sorted element start/end
columns (a cut ``p`` is valid iff no span has ``start < p < end``),
then the size-balanced subset nearest the ``i·len/n`` targets is kept.

Every shard carries :class:`ShardStats` — word/char counts, the text
span, and per-element-name cardinalities — which the corpus manifest
persists for shard pruning: a query whose path spine requires name
``w`` never dispatches to a shard whose ``cards["w"]`` is zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cmh.document import Hierarchy, MultihierarchicalDocument
from repro.errors import StoreError
from repro.markup import dom


@dataclass
class ShardStats:
    """Pruning statistics for one shard (persisted in the manifest)."""

    lo: int
    hi: int
    words: int
    cards: dict[str, int] = field(default_factory=dict)

    @property
    def chars(self) -> int:
        return self.hi - self.lo

    def work_estimate(self, required_names: tuple[str, ...] = ()) -> int:
        """Relative cost of one scatterable plan on this shard.

        The scatter dispatcher sorts surviving shards by this estimate
        (largest first) so the stragglers start first on the pool —
        classic LPT scheduling.  When the plan names concrete elements,
        the work is proportional to their cardinalities; otherwise fall
        back to the shard's word count.
        """
        if required_names:
            return sum(self.cards.get(name, 0) for name in required_names)
        return self.words

    def to_json(self) -> dict:
        return {"lo": self.lo, "hi": self.hi, "words": self.words,
                "cards": dict(sorted(self.cards.items()))}

    @classmethod
    def from_json(cls, payload: dict) -> "ShardStats":
        return cls(lo=int(payload["lo"]), hi=int(payload["hi"]),
                   words=int(payload["words"]),
                   cards={str(k): int(v)
                          for k, v in payload.get("cards", {}).items()})


@dataclass
class CorpusStats:
    """Corpus-wide statistics derived from the per-shard stats."""

    root_name: str
    hierarchy_names: list[str]
    #: element name -> hierarchies it appears in (FLWOR concat-merge is
    #: only order-safe when the outer for-sequence stays in one
    #: hierarchy; see plan distribution)
    name_hierarchies: dict[str, list[str]]
    shards: list[ShardStats]

    @property
    def words(self) -> int:
        return sum(shard.words for shard in self.shards)

    def to_json(self) -> dict:
        return {
            "root": self.root_name,
            "hierarchies": list(self.hierarchy_names),
            "name_hierarchies": {
                name: sorted(hierarchies)
                for name, hierarchies in
                sorted(self.name_hierarchies.items())},
            "shards": [shard.to_json() for shard in self.shards],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CorpusStats":
        return cls(
            root_name=str(payload["root"]),
            hierarchy_names=[str(n) for n in payload["hierarchies"]],
            name_hierarchies={
                str(name): [str(h) for h in hierarchies]
                for name, hierarchies in
                payload.get("name_hierarchies", {}).items()},
            shards=[ShardStats.from_json(s) for s in payload["shards"]])


# ---------------------------------------------------------------------------
# cut selection
# ---------------------------------------------------------------------------


def _element_spans(document: MultihierarchicalDocument,
                   ) -> tuple[np.ndarray, np.ndarray]:
    """(starts, ends) of every non-root element across all hierarchies."""
    starts: list[int] = []
    ends: list[int] = []
    lengths = _subtree_lengths(document)
    for hierarchy in document.hierarchies.values():
        cursor = 0
        stack: list[dom.Node] = list(reversed(hierarchy.root.children))
        while stack:
            node = stack.pop()
            if isinstance(node, dom.Text):
                cursor += len(node.data)
            elif isinstance(node, dom.Element):
                # Preorder: the subtree's text nodes advance the cursor
                # before the next sibling is popped, so ``cursor`` here
                # is exactly this element's start offset.  Zero-length
                # elements are skipped: they cannot strictly contain
                # any position, and counting their collapsed span would
                # unbalance the open/closed tally at exactly their
                # offset (masking a real straddler there).
                if lengths[id(node)]:
                    starts.append(cursor)
                    ends.append(cursor + lengths[id(node)])
                stack.extend(reversed(node.children))
    return (np.asarray(sorted(starts), dtype=np.int64),
            np.asarray(sorted(ends), dtype=np.int64))


def _subtree_lengths(document: MultihierarchicalDocument) -> dict[int, int]:
    """``id(node) -> total text length`` for every parent node."""
    lengths: dict[int, int] = {}

    def measure(node: dom.Node) -> int:
        if isinstance(node, dom.Text):
            return len(node.data)
        if isinstance(node, dom.ParentNode):
            total = sum(measure(child) for child in node.children)
            lengths[id(node)] = total
            return total
        return 0

    for hierarchy in document.hierarchies.values():
        measure(hierarchy.root)
    return lengths


def valid_cut_positions(starts: np.ndarray, ends: np.ndarray,
                        total: int) -> np.ndarray:
    """Interior positions no span in the sorted columns strictly
    contains.

    The column-level core of :func:`valid_cuts`, shared with the
    streaming builder (``repro.markup.streaming``), which derives the
    same sorted element start/end columns from its node tables without
    ever holding a DOM.
    """
    candidates = np.unique(np.concatenate((starts, ends)))
    candidates = candidates[(candidates > 0) & (candidates < total)]
    if not len(candidates):
        return candidates
    open_before = np.searchsorted(starts, candidates, side="left")
    closed_before = np.searchsorted(ends, candidates, side="right")
    return candidates[open_before == closed_before]


def valid_cuts(document: MultihierarchicalDocument) -> np.ndarray:
    """All interior positions where no element of any hierarchy is open.

    Candidates are the distinct element boundaries (an arbitrary text
    offset would just split a word); a candidate ``p`` survives iff
    ``#{start < p} == #{end <= p}`` — i.e. no element span strictly
    contains it.
    """
    starts, ends = _element_spans(document)
    return valid_cut_positions(starts, ends, len(document.text))


def balanced_cuts(cuts: np.ndarray, total: int,
                  n_shards: int) -> list[int]:
    """The size-balanced subset of valid ``cuts`` nearest the
    ``i·total/n`` targets — deduplicated, ascending, possibly shorter
    than ``n_shards - 1``.  Shared with the streaming builder."""
    if not len(cuts):
        return []
    targets = np.arange(1, n_shards) * (total / n_shards)
    picks = np.searchsorted(cuts, targets)
    chosen: set[int] = set()
    for target, pick in zip(targets, picks):
        best = None
        for index in (pick - 1, pick):
            if 0 <= index < len(cuts):
                position = int(cuts[index])
                if best is None or (abs(position - target)
                                    < abs(best - target)):
                    best = position
        if best is not None:
            chosen.add(best)
    return sorted(chosen)


def choose_cuts(document: MultihierarchicalDocument,
                n_shards: int) -> list[int]:
    """Size-balanced valid cuts for an ``n_shards``-way partition.

    Picks, for each target ``i·len/n``, the nearest valid cut; returns
    the deduplicated ascending list (possibly shorter than
    ``n_shards - 1`` when the markup offers fewer distinct cuts).
    """
    if n_shards < 1:
        raise StoreError(f"shard count must be >= 1, got {n_shards}")
    if n_shards == 1:
        return []
    return balanced_cuts(valid_cuts(document), len(document.text),
                         n_shards)


# ---------------------------------------------------------------------------
# shard construction
# ---------------------------------------------------------------------------


def _slice_hierarchy(hierarchy: Hierarchy, lo: int, hi: int, total: int,
                     lengths: dict[int, int]) -> dom.Document:
    """The hierarchy's encoding restricted to text span ``[lo, hi)``."""
    document = dom.Document()
    root = dom.Element(hierarchy.root.name, hierarchy.root.attributes)
    document.append(root)
    cursor = 0
    for child in hierarchy.root.children:
        if isinstance(child, dom.Text):
            start, end = cursor, cursor + len(child.data)
            cursor = end
            piece_lo, piece_hi = max(start, lo), min(end, hi)
            if piece_lo < piece_hi:
                root.append(dom.Text(
                    child.data[piece_lo - start:piece_hi - start]))
            continue
        length = lengths.get(id(child), 0)
        start, end = cursor, cursor + length
        cursor = end
        if start == end:
            # Empty elements / comments / PIs: attach to the shard whose
            # span contains their position (the last shard takes the
            # document-final position).
            owns = (lo <= start < hi) or (start == total and hi == total)
            if owns:
                root.append(child.clone())
            continue
        if end <= lo or start >= hi:
            continue
        if start < lo or end > hi:
            raise StoreError(
                f"element <{child.name}> spans [{start}, {end}) across "
                f"the shard cut at [{lo}, {hi}) — cut selection must "
                "only produce element-boundary positions")
        root.append(child.clone())
    return document


def shard_document(document: MultihierarchicalDocument, n_shards: int,
                   ) -> tuple[list[MultihierarchicalDocument], CorpusStats]:
    """Partition ``document`` into up to ``n_shards`` shard documents.

    Each shard is a full :class:`MultihierarchicalDocument` over its
    text slice, hierarchies in the original registration order (the
    order is what keeps packed okeys comparable across shards).
    Alignment is re-verified per shard on construction, so a slicing
    bug fails loudly here rather than corrupting query results.
    """
    if not document.hierarchies:
        raise StoreError("cannot shard a document with no hierarchies")
    cuts = choose_cuts(document, n_shards)
    total = len(document.text)
    bounds = [0, *cuts, total]
    lengths = _subtree_lengths(document)
    shards: list[MultihierarchicalDocument] = []
    stats: list[ShardStats] = []
    for lo, hi in zip(bounds, bounds[1:]):
        shard = MultihierarchicalDocument(document.text[lo:hi])
        for name, hierarchy in document.hierarchies.items():
            sliced = _slice_hierarchy(hierarchy, lo, hi, total, lengths)
            shard.add_hierarchy(Hierarchy(name, sliced))
        shards.append(shard)
        stats.append(ShardStats(
            lo=lo, hi=hi, words=len(shard.text.split()),
            cards=_cardinalities(shard)))
    name_hierarchies: dict[str, set[str]] = {}
    for shard in shards:
        for name, hierarchy in shard.hierarchies.items():
            for node in hierarchy.root.iter_elements():
                name_hierarchies.setdefault(node.name, set()).add(name)
    corpus = CorpusStats(
        root_name=document.root_name,
        hierarchy_names=document.hierarchy_names,
        name_hierarchies={name: sorted(hierarchies)
                          for name, hierarchies in name_hierarchies.items()},
        shards=stats)
    return shards, corpus


def _cardinalities(document: MultihierarchicalDocument) -> dict[str, int]:
    cards: dict[str, int] = {}
    for hierarchy in document.hierarchies.values():
        for node in hierarchy.root.iter_elements():
            cards[node.name] = cards.get(node.name, 0) + 1
    return cards


# ---------------------------------------------------------------------------
# fused reconstruction
# ---------------------------------------------------------------------------


def fuse_documents(shards: list[MultihierarchicalDocument],
                   ) -> MultihierarchicalDocument:
    """Reassemble shard documents into one whole-corpus document.

    The inverse of :func:`shard_document` up to text-node merging:
    cloned shard children are concatenated under a fresh root per
    hierarchy and ``normalize()`` re-merges the text nodes the cuts
    split, so the fused document serializes byte-identically to the
    original.  The non-distributable query fallback evaluates here.
    """
    if not shards:
        raise StoreError("cannot fuse an empty shard list")
    text = "".join(shard.text for shard in shards)
    fused = MultihierarchicalDocument(text)
    first = shards[0]
    for name in first.hierarchy_names:
        shard_root = first[name].root
        document = dom.Document()
        root = dom.Element(shard_root.name, shard_root.attributes)
        document.append(root)
        for shard in shards:
            for child in shard[name].root.children:
                root.append(child.clone())
        root.normalize()
        fused.add_hierarchy(Hierarchy(name, document))
    return fused
