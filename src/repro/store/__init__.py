"""The concurrent document store (DESIGN.md §10).

Three pieces turn the single-document engine into a small database:

* :mod:`~repro.store.catalog` — :class:`DocumentStore`, a named
  catalog with single-writer / many-snapshot-reader concurrency:
  updates fork the current snapshot, mutate the fork through the
  transactional update engine, and publish the result; readers pin the
  snapshot they opened and never block behind the writer;
* :mod:`~repro.store.mhxb` — the ``.mhxb`` binary container persisting
  the packed numpy artifacts (order keys, span-index orders, partition
  boundaries) for an mmap-backed cold load that skips XML parsing and
  every sort;
* :mod:`~repro.store.plancache` — the cross-document compiled-plan
  cache keyed by query text + grammar version;
* :mod:`~repro.store.faultfs` — the injectable OS layer under every
  durability-sensitive file operation, driving the crash-consistency
  harness (DESIGN.md §12).
"""

from repro.store.catalog import (
    DURABILITY_MODES,
    DocumentStore,
    fork_engine,
)
from repro.store.mhxb import (
    MHXB_FORMAT,
    MHXB_FORMAT_V1,
    load_engine,
    looks_like_mhxb,
    read_header,
    save_engine,
    verify_blocks,
)
from repro.store.plancache import SharedPlanCache
from repro.store.snapshot import Snapshot

__all__ = [
    "DURABILITY_MODES",
    "DocumentStore",
    "MHXB_FORMAT",
    "MHXB_FORMAT_V1",
    "Snapshot",
    "SharedPlanCache",
    "fork_engine",
    "load_engine",
    "looks_like_mhxb",
    "read_header",
    "save_engine",
    "verify_blocks",
]
