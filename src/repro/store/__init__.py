"""The concurrent document store (DESIGN.md §10).

Three pieces turn the single-document engine into a small database:

* :mod:`~repro.store.catalog` — :class:`DocumentStore`, a named
  catalog with single-writer / many-snapshot-reader concurrency:
  updates fork the current snapshot, mutate the fork through the
  transactional update engine, and publish the result; readers pin the
  snapshot they opened and never block behind the writer;
* :mod:`~repro.store.mhxb` — the ``.mhxb`` binary container persisting
  the packed numpy artifacts (order keys, span-index orders, partition
  boundaries) for an mmap-backed cold load that skips XML parsing and
  every sort;
* :mod:`~repro.store.plancache` — the cross-document compiled-plan
  cache keyed by query text + grammar version;
* :mod:`~repro.store.faultfs` — the injectable OS layer under every
  durability-sensitive file operation, driving the crash-consistency
  harness (DESIGN.md §12);
* :mod:`~repro.store.sharding` / :mod:`~repro.store.pool` — sharded
  corpora: a large document partitioned at cross-hierarchy fragment
  boundaries into per-shard ``.mhxb`` files, queried through
  ``collection("name")`` with scatter-gather execution over a
  persistent fork pool and manifest-statistics shard pruning
  (DESIGN.md §13).
"""

from repro.store.catalog import (
    DURABILITY_MODES,
    DocumentStore,
    fork_engine,
)
from repro.store.pool import CorpusResult, ShardWorkerPool
from repro.store.sharding import (
    CorpusStats,
    ShardStats,
    fuse_documents,
    shard_document,
    valid_cuts,
)
from repro.store.mhxb import (
    MHXB_FORMAT,
    MHXB_FORMAT_V1,
    load_engine,
    looks_like_mhxb,
    read_header,
    save_engine,
    verify_blocks,
)
from repro.store.plancache import SharedPlanCache
from repro.store.snapshot import Snapshot

__all__ = [
    "CorpusResult",
    "CorpusStats",
    "DURABILITY_MODES",
    "DocumentStore",
    "ShardStats",
    "ShardWorkerPool",
    "fuse_documents",
    "shard_document",
    "valid_cuts",
    "MHXB_FORMAT",
    "MHXB_FORMAT_V1",
    "Snapshot",
    "SharedPlanCache",
    "fork_engine",
    "load_engine",
    "looks_like_mhxb",
    "read_header",
    "save_engine",
    "verify_blocks",
]
