"""The injectable OS layer under the store's durability paths.

Every file-mutating syscall the persistence layer performs — opening a
temp file, writing payload bytes, fsyncing a file or its directory,
the publishing ``os.replace``, unlinks, and the manifest's
previous-generation hardlink — goes through the module's *current*
:class:`OsLayer` instead of calling :mod:`os` directly.  In production
the default layer is a thin passthrough; tests swap in a
:class:`FaultyOs` to drive the crash-consistency matrix (DESIGN.md
§12):

* **crash points** — every routed call is one numbered *op*; the layer
  raises :class:`SimulatedCrash` at a chosen op index and at every op
  after it, modelling a process kill: whatever bytes reached the
  filesystem stay, everything later never happens;
* **torn writes** — a crash landing on a ``write`` op can first flush
  a prefix of the payload, modelling a partial page write;
* **error injection** — named ops can raise :class:`OSError` *without*
  killing the layer, modelling a transient failure (full disk, EIO on
  fsync) that the caller must unwind from transactionally.

:class:`SimulatedCrash` deliberately derives from ``BaseException``:
the store's own error handling (per-document skip-and-report in
``compact``, rollback in ``_persist``) catches ``Exception`` /
``ReproError``, and a simulated kill must never be swallowed by the
very code paths it is testing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path


class SimulatedCrash(BaseException):
    """The process "died" at an injected crash point.

    Not an :class:`Exception` on purpose — see the module docstring.
    """

    def __init__(self, op_index: int, op: str, target: str) -> None:
        self.op_index = op_index
        self.op = op
        self.target = target
        super().__init__(
            f"simulated crash at op {op_index} ({op} {target})")


class OsLayer:
    """The real OS operations; the default (production) layer."""

    def open_for_write(self, path: str | Path):
        return open(path, "wb")

    def write(self, handle, data: bytes) -> None:
        handle.write(data)

    def fsync(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, source: str | Path, target: str | Path) -> None:
        os.replace(source, target)

    def fsync_dir(self, path: str | Path) -> None:
        descriptor = os.open(path, os.O_RDONLY)
        try:
            os.fsync(descriptor)
        finally:
            os.close(descriptor)

    def unlink(self, path: str | Path) -> None:
        Path(path).unlink(missing_ok=True)

    def link_replace(self, source: str | Path,
                     target: str | Path) -> None:
        """Hardlink ``source`` to ``target``, replacing ``target``.

        The manifest writer uses this to keep the previous generation
        reachable at ``store.json.prev`` without ever unlinking the
        live pointer; a crash between the unlink and the link loses
        only the (older) backup, never the current manifest.
        """
        Path(target).unlink(missing_ok=True)
        os.link(source, target)


class FaultyOs(OsLayer):
    """An :class:`OsLayer` that counts ops and injects faults.

    ``crash_at=None`` only counts (run the workload once to learn the
    op schedule, then sweep ``crash_at`` over ``1..ops``).  ``torn``
    makes a crash landing on a ``write`` op flush half the payload
    first.  ``fail`` maps op names (``"write"``, ``"fsync"``,
    ``"replace"``, ...) to exceptions raised *once* on that op's next
    occurrence — the layer stays alive afterwards.  ``fail_at`` does
    the same keyed by op *index* (1-based, from a counting run), for
    targeting one specific occurrence — e.g. the manifest's publishing
    ``replace`` rather than the data file's.
    """

    def __init__(self, crash_at: int | None = None, *,
                 torn: bool = False,
                 fail: dict[str, BaseException] | None = None,
                 fail_at: dict[int, BaseException] | None = None) -> None:
        self.crash_at = crash_at
        self.torn = torn
        self.fail = dict(fail or {})
        self.fail_at = dict(fail_at or {})
        self.ops = 0
        self.dead = False
        self.log: list[tuple[str, str]] = []

    def _gate(self, op: str, target: str) -> bool:
        """Count one op; return True when it should crash-after-torn.

        Raises immediately for a clean crash or an injected error; the
        torn-write case returns True so ``write`` can flush a prefix
        before raising.
        """
        if self.dead:
            raise SimulatedCrash(self.ops, op, target)
        self.ops += 1
        self.log.append((op, target))
        if op in self.fail:
            raise self.fail.pop(op)
        if self.ops in self.fail_at:
            raise self.fail_at.pop(self.ops)
        if self.crash_at is not None and self.ops >= self.crash_at:
            self.dead = True
            if op == "write" and self.torn:
                return True
            raise SimulatedCrash(self.ops, op, target)
        return False

    def open_for_write(self, path):
        self._gate("open", str(path))
        return super().open_for_write(path)

    def write(self, handle, data: bytes) -> None:
        if self._gate("write", getattr(handle, "name", "?")):
            super().write(handle, data[:len(data) // 2])
            handle.flush()
            raise SimulatedCrash(self.ops, "write-torn",
                                 getattr(handle, "name", "?"))
        super().write(handle, data)

    def fsync(self, handle) -> None:
        self._gate("fsync", getattr(handle, "name", "?"))
        super().fsync(handle)

    def replace(self, source, target) -> None:
        self._gate("replace", str(target))
        super().replace(source, target)

    def fsync_dir(self, path) -> None:
        self._gate("fsync_dir", str(path))
        super().fsync_dir(path)

    def unlink(self, path) -> None:
        self._gate("unlink", str(path))
        super().unlink(path)

    def link_replace(self, source, target) -> None:
        self._gate("link", str(target))
        super().link_replace(source, target)


_DEFAULT = OsLayer()
_current = _DEFAULT


def current() -> OsLayer:
    """The active layer; persistence code calls this per operation."""
    return _current


@contextmanager
def inject(layer: OsLayer):
    """Install ``layer`` for the duration of a ``with`` block."""
    global _current
    previous = _current
    _current = layer
    try:
        yield layer
    finally:
        _current = previous
