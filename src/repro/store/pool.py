"""Scatter-gather execution of corpus queries over a worker pool.

The execution protocol (DESIGN.md §13):

* the parent classifies the compiled plan
  (:mod:`repro.core.plan.distribute`), prunes shards against the
  manifest statistics, and dispatches one task per surviving shard;
* each worker process ``np.memmap``s its shard's ``.mhxb`` read-only
  (:meth:`Engine.from_mhxb` — fork-safe, no node tables cross the
  pipe), compiles the query once per process through a
  :class:`SharedPlanCache`, and executes with a ``collection``
  resolver that yields the shard root;
* results travel back as primitives only — serialized item strings
  plus packed int64 okeys (scatter), a scalar (aggregate), or strings
  alone (concat) — and the gather side merges as shard results land:
  okey lexsort for node sets, fold for aggregates, shard-order
  concatenation for FLWOR streams.

Workers are a persistent fork-context ``ProcessPoolExecutor``: the
fork inherits the parent's imported modules but **not** its engines —
each worker builds its own engine cache keyed by shard path, so a
shard queried twice is already memmapped and warm.  A worker dying
mid-query surfaces as ``BrokenProcessPool``; the pool converts that to
a :class:`StoreError` naming the shard and recycles the executor so
the next query gets a fresh pool.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

from repro.core.goddag.nodes import GNode
from repro.core.goddag.okeys import corpus_sort_order
from repro.core.runtime.serializer import serialize_item
from repro.errors import StoreError

#: Fold identities per aggregate — what a pruned shard contributes.
AGGREGATE_IDENTITY = {"count": 0, "sum": 0, "exists": False,
                      "empty": True}


@dataclass
class CorpusResult:
    """One corpus query's merged result plus its execution shape.

    ``items`` are the serialized result items in corpus document order
    (aggregates serialize their scalar), comparable one-to-one with
    ``QueryResult.strings()`` from an unsharded oracle engine.
    """

    items: list[str]
    #: "scatter" | "aggregate" | "concat" | "fused"
    mode: str
    #: the raw scalar for aggregate mode
    value: object = None
    shards_total: int = 0
    shards_pruned: int = 0
    shards_executed: int = 0
    workers: int = 1
    #: why the query fell back to the fused engine ("" otherwise)
    reason: str = ""

    def strings(self) -> list[str]:
        return list(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)


def run_shard(engine, plans, text: str, mode: str):
    """Execute one corpus query against one shard engine.

    Shared by the in-process serial path and the pool workers (the
    worker wrapper only adds the per-process engine cache), so the
    gather protocol below is exercised by ordinary single-process
    tests.  Returns a picklable payload tagged by kind:

    * ``("agg", value)`` — the shard's scalar for an aggregate plan;
    * ``("nodes", strings, okeys)`` — serialized items plus their
      packed order keys, for the okey merge;
    * ``("items", strings)`` — serialized items in shard-local order,
      for shard-order concatenation.
    """
    compiled, _hit = plans.get(
        text, engine.options,
        stats=engine.plan_stats() if engine.use_cost else None)

    def resolver(frame, _args):
        return [frame.goddag.root]

    items = compiled.execute(engine.goddag, options=engine.options,
                             functions={"collection": resolver})
    if mode == "aggregate":
        if len(items) != 1:
            raise StoreError(
                f"aggregate shard result has {len(items)} items")
        return ("agg", items[0])
    if mode == "scatter":
        goddag = engine.goddag
        okeys = [goddag.order_key(item) for item in items
                 if isinstance(item, GNode)]
        if len(okeys) != len(items):
            raise StoreError(
                "scatter plan produced non-node items; the classifier "
                "should have routed this query to the fused path")
        return ("nodes", [serialize_item(item) for item in items],
                okeys)
    return ("items", [serialize_item(item) for item in items])


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Per-worker-process state (populated after the fork; the parent's
#: copies stay empty).
_WORKER_ENGINES: dict = {}
_WORKER_PLANS = None


def _worker_engine(path: str, options):
    from repro.api import Engine

    engine = _WORKER_ENGINES.get(path)
    if engine is None:
        engine = Engine.from_mhxb(path, options=options)
        _WORKER_ENGINES[path] = engine
    return engine


def _worker_plans():
    global _WORKER_PLANS
    if _WORKER_PLANS is None:
        from repro.store.plancache import SharedPlanCache

        _WORKER_PLANS = SharedPlanCache()
    return _WORKER_PLANS


def _worker_run(path: str, text: str, mode: str, options,
                crash: bool) -> tuple:
    """Top-level (picklable) task body executed in a worker process."""
    try:
        engine = _worker_engine(path, options)
        if crash:
            # The fault-injection hook: die the way a real worker would
            # (OOM-killed, segfaulted) — no exception propagation, no
            # cleanup, mid-query as far as the parent can tell.
            os._exit(1)
        return run_shard(engine, _worker_plans(), text, mode)
    except Exception as error:  # exceptions may not unpickle; stringify
        return ("error", f"{type(error).__name__}: {error}")


class ShardWorkerPool:
    """A persistent fork-context process pool for shard tasks."""

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise StoreError(
                f"worker count must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._executor: ProcessPoolExecutor | None = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=get_context("fork"))
        return self._executor

    def run(self, tasks: list[tuple]) -> list[tuple]:
        """Run ``(path, text, mode, options, crash)`` tasks; results in
        task order.  A dead worker raises :class:`StoreError` naming
        the shard and recycles the executor."""
        executor = self._ensure_executor()
        futures = {}
        try:
            for index, task in enumerate(tasks):
                futures[executor.submit(_worker_run, *task)] = index
        except BrokenProcessPool:
            self._recycle()
            raise StoreError(
                "corpus worker pool died before dispatch completed"
            ) from None
        results: list[tuple | None] = [None] * len(tasks)
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in sorted(done, key=futures.__getitem__):
                index = futures[future]
                shard = os.path.basename(str(tasks[index][0]))
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # A broken pool fails *every* pending future at
                    # once, so blame the task that carries the crash
                    # flag when fault injection is active; otherwise
                    # name the earliest-submitted casualty.
                    crashed = next((task for task in tasks if task[-1]),
                                   tasks[index])
                    shard = os.path.basename(str(crashed[0]))
                    for other in pending:
                        other.cancel()
                    self._recycle()
                    raise StoreError(
                        f"corpus query worker died while executing "
                        f"shard {shard!r}; the pool has been "
                        f"recycled") from None
                if payload[0] == "error":
                    for other in pending:
                        other.cancel()
                    raise StoreError(
                        f"corpus query failed on shard {shard!r}: "
                        f"{payload[1]}")
                results[index] = payload
        return [payload for payload in results if payload is not None]

    def _recycle(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        self._recycle()


# ---------------------------------------------------------------------------
# gather side
# ---------------------------------------------------------------------------


def gather(mode: str, payloads: list[tuple],
           aggregate: str | None = None) -> list:
    """Merge per-shard payloads into the corpus-ordered item list.

    ``payloads`` arrive in shard order (the dispatch order); the
    scatter merge re-sorts by (hierarchy band, shard, in-shard okey),
    reproducing the unsharded document order exactly
    (:mod:`repro.core.goddag.okeys`).
    """
    if mode == "aggregate":
        values = [payload[1] for payload in payloads]
        return [fold_aggregate(aggregate, values)]
    if mode == "scatter":
        strings: list[str] = []
        okeys: list[np.ndarray] = []
        shards: list[np.ndarray] = []
        for index, payload in enumerate(payloads):
            _kind, shard_strings, shard_okeys = payload
            strings.extend(shard_strings)
            okeys.append(np.asarray(shard_okeys, dtype=np.int64))
            shards.append(np.full(len(shard_okeys), index,
                                  dtype=np.int64))
        if not strings:
            return []
        order = corpus_sort_order(np.concatenate(shards),
                                  np.concatenate(okeys))
        return [strings[position] for position in order]
    merged: list = []
    for payload in payloads:
        merged.extend(payload[1])
    return merged


def fold_aggregate(aggregate: str | None, values: list):
    """Fold per-shard aggregate scalars (empty list → fold identity)."""
    if aggregate == "count" or aggregate == "sum":
        total = AGGREGATE_IDENTITY[aggregate]
        for value in values:
            total = total + value
        return total
    if aggregate == "exists":
        return any(values)
    if aggregate == "empty":
        return all(values)
    raise StoreError(f"no fold for aggregate {aggregate!r}")
