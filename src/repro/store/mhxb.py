"""The ``.mhxb`` binary container: mmap-backed engine persistence.

A ``.mhx`` file is a JSON bundle of XML source strings — portable, but
a cold start pays the full pipeline: XML parse, alignment, KyGODDAG
build, partition sort, span-index argsorts.  ``.mhxb`` persists the
*artifacts* of that pipeline instead (DESIGN.md §10):

* per hierarchy, the component node table as parallel arrays — kind,
  interned name id, span, parent preorder, subtree end, packed int64
  Definition 3 order key — in preorder, which is exactly the order the
  component list needs;
* the partition boundary multiset as sorted ``(offsets, refcounts)``;
* the span index in **both** sorted orders: the global numeric columns
  verbatim plus one permutation per hierarchy that recovers the object
  columns by rank-gather — no argsort, no merge at load;
* a JSON header with everything non-numeric: name table, attributes,
  comments/PIs, DTD sources, the document version.

File layout (format v2)::

    b"MHXB2\\0" | u64 header length | u32 header CRC32 | header JSON
               | pad | array blocks

and v1 (still readable)::

    b"MHXB1\\0" | u64 header length | header JSON | pad | array blocks

v2 adds integrity checks (DESIGN.md §12): the u32 after the header
length is the CRC32 of the header JSON bytes, verified by every
``read_header``; each array-directory entry carries the CRC32 and byte
length of its block, verified lazily — ``verify_blocks`` (and the
store's eager cold-load policy) scans every block, while plain loads
stay zero-copy.  Writes are atomic (temp + rename through the
:mod:`~repro.store.faultfs` OS layer) and, under ``durability="full"``,
crash-durable: the temp file is fsynced before the rename and the
directory after it.

Every array block is 64-byte aligned and loaded through
``np.memmap(..., mode="r")``, so a cold load touches only the pages a
query actually reads; the loader reconstructs node objects from the
arrays and never re-parses XML or re-sorts anything.  The DOM side of
the document (needed only for updates and serialization) materializes
lazily from the same arrays on first access.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import IntegrityError, ReproError
from repro.store import faultfs
from repro.cmh import ConcurrentMarkupHierarchy, MultihierarchicalDocument
from repro.cmh.document import Hierarchy
from repro.markup import dom
from repro.core.goddag.goddag import KyGoddag, _HierarchyComponent
from repro.core.goddag.index import SpanIndex, _end_keys, _start_keys
from repro.core.goddag.nodes import (
    GComment,
    GElement,
    GPi,
    GText,
)
from repro.core.goddag.partition import Partition

MAGIC = b"MHXB1\x00"
MAGIC_V2 = b"MHXB2\x00"
MHXB_FORMAT_V1 = "mhxb-1"
MHXB_FORMAT = "mhxb-2"
_FORMATS = {MAGIC: MHXB_FORMAT_V1, MAGIC_V2: MHXB_FORMAT}
_ALIGN = 64

#: node kind codes in the component tables
_KIND_ELEMENT, _KIND_TEXT, _KIND_COMMENT, _KIND_PI = 0, 1, 2, 3


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def looks_like_mhxb(path: str | Path) -> bool:
    """True when the file starts with ``.mhxb`` magic bytes (v1 or v2)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) in _FORMATS
    except OSError:
        return False


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------


def save_engine(engine, path: str | Path, *,
                durability: str = "off",
                format_version: int = 2) -> int:
    """Serialize an engine's full state to ``path``; return the size.

    The write is atomic (temp file + rename) and deterministic: saving
    the same logical state twice — or saving a freshly cold-loaded
    engine — produces byte-identical files.  ``durability="full"``
    additionally fsyncs the temp file before the rename and the
    directory after it, so the commit survives a power cut;
    ``"off"`` (the default for direct library use — the store applies
    its own policy) leaves flushing to the OS.  ``format_version=1``
    writes the legacy checksum-free layout for compatibility tests.
    """
    goddag = engine.goddag
    if not goddag.hierarchy_names:
        raise ReproError("cannot save an empty document to .mhxb")
    if any(goddag.is_temporary(name) for name in goddag.hierarchy_names):
        raise ReproError(
            "cannot save a KyGODDAG holding temporary (analyze-string) "
            "hierarchies")
    if len(goddag.text) >= (1 << 31):
        raise ReproError(
            "base text exceeds 2^31 characters; the packed span-index "
            "keys cannot represent it")

    document = engine.document  # materializes a lazy DOM if needed
    names: list[str] = []
    name_ids: dict[str, int] = {}

    def intern(name: str) -> int:
        position = name_ids.get(name)
        if position is None:
            position = name_ids[name] = len(names)
            names.append(name)
        return position

    arrays: dict[str, np.ndarray] = {}
    hierarchy_meta: list[dict[str, Any]] = []
    sub_starts: list[np.ndarray] = []
    sub_ends: list[np.ndarray] = []
    sub_ranks: list[np.ndarray] = []
    sub_preorders: list[np.ndarray] = []
    sub_subtrees: list[np.ndarray] = []

    # rank -1: the shared root seeds both sorted orders.
    sub_starts.append(np.array([0], dtype=np.int64))
    sub_ends.append(np.array([len(goddag.text)], dtype=np.int64))
    sub_ranks.append(np.array([-1], dtype=np.int64))
    sub_preorders.append(np.array([-1], dtype=np.int64))
    sub_subtrees.append(np.array([-1], dtype=np.int64))

    for position, name in enumerate(goddag.hierarchy_names):
        component = goddag._components[name]
        prefix = f"h{position}"
        meta = _save_component(goddag, component, document, prefix,
                               arrays, intern)
        hierarchy_meta.append(meta)
        span_mask = (arrays[f"{prefix}/kinds"] <= _KIND_TEXT)
        starts = arrays[f"{prefix}/starts"][span_mask]
        ends = arrays[f"{prefix}/ends"][span_mask]
        preorders = np.nonzero(span_mask)[0].astype(np.int64)
        subtrees = arrays[f"{prefix}/subtree_ends"][span_mask]
        meta["span_count"] = int(len(starts))
        arrays[f"{prefix}/s_perm"] = np.argsort(
            _start_keys(starts, ends), kind="stable")
        arrays[f"{prefix}/e_perm"] = np.argsort(
            _end_keys(starts, ends), kind="stable")
        sub_starts.append(starts)
        sub_ends.append(ends)
        sub_ranks.append(np.full(len(starts), component.rank,
                                 dtype=np.int64))
        sub_preorders.append(preorders)
        sub_subtrees.append(subtrees)

    _save_span_index(arrays, sub_starts, sub_ends, sub_ranks,
                     sub_preorders, sub_subtrees)
    offsets, counts = goddag.partition.export_arrays()
    arrays["partition/offsets"] = offsets
    arrays["partition/counts"] = counts
    arrays["text"] = np.frombuffer(
        goddag.text.encode("utf-8"), dtype=np.uint8)

    dtds = None
    if document.cmh is not None:
        dtds = document.cmh.sources()
    if format_version not in (1, 2):
        raise ReproError(
            f"unknown .mhxb format version {format_version!r}")
    header = {
        "format": MHXB_FORMAT if format_version == 2 else MHXB_FORMAT_V1,
        "root": goddag.root.root_name,
        "version": goddag.version,
        "text_chars": len(goddag.text),
        "names": names,
        "hierarchies": hierarchy_meta,
        "dtds": dtds,
    }
    return _pack(path, header, arrays, durability=durability,
                 format_version=format_version)


def _save_component(goddag, component, document, prefix: str,
                    arrays: dict[str, np.ndarray], intern) -> dict:
    nodes = component.nodes
    count = len(nodes)
    kinds = np.empty(count, dtype=np.int8)
    ids = np.full(count, -1, dtype=np.int64)
    starts = np.empty(count, dtype=np.int64)
    ends = np.empty(count, dtype=np.int64)
    parents = np.empty(count, dtype=np.int64)
    subtree_ends = np.empty(count, dtype=np.int64)
    okeys = np.empty(count, dtype=np.int64)
    attrs: list[list] = []
    comments: list[list] = []
    pis: list[list] = []
    for position, node in enumerate(nodes):
        starts[position] = node.start
        ends[position] = node.end
        subtree_ends[position] = node.subtree_end
        okeys[position] = goddag.order_key(node)
        parent = node._parent
        parents[position] = (parent.preorder
                             if isinstance(parent, GElement) else -1)
        if isinstance(node, GElement):
            kinds[position] = _KIND_ELEMENT
            ids[position] = intern(node.name)
            if node.attributes:
                attrs.append([position, dict(node.attributes)])
        elif isinstance(node, GText):
            kinds[position] = _KIND_TEXT
        elif isinstance(node, GComment):
            kinds[position] = _KIND_COMMENT
            comments.append([position, node.data])
        elif isinstance(node, GPi):
            kinds[position] = _KIND_PI
            ids[position] = intern(node.target)
            pis.append([position, node.data])
        else:  # pragma: no cover - the component builder emits no others
            raise ReproError(
                f"cannot persist node kind {node.kind!r} to .mhxb")
    arrays[f"{prefix}/kinds"] = kinds
    arrays[f"{prefix}/name_ids"] = ids
    arrays[f"{prefix}/starts"] = starts
    arrays[f"{prefix}/ends"] = ends
    arrays[f"{prefix}/parents"] = parents
    arrays[f"{prefix}/subtree_ends"] = subtree_ends
    arrays[f"{prefix}/okeys"] = okeys
    hier_doc = document.hierarchies[component.name].document
    prolog, epilog = _document_level_nodes(hier_doc)
    return {
        "name": component.name,
        "rank": component.rank,
        "count": count,
        "root_attrs": dict(
            goddag.root.attributes_by_hierarchy.get(component.name, {})),
        "attrs": attrs,
        "comments": comments,
        "pis": pis,
        "prolog": prolog,
        "epilog": epilog,
    }


def _document_level_nodes(hier_doc: dom.Document) -> tuple[list, list]:
    """Comments/PIs outside the root element (they exist only in the
    DOM, not in the KyGODDAG, so they ride along in the header)."""
    prolog: list[list] = []
    epilog: list[list] = []
    target = prolog
    for child in hier_doc.children:
        if isinstance(child, dom.Element):
            target = epilog
        elif isinstance(child, dom.Comment):
            target.append(["comment", child.data])
        elif isinstance(child, dom.ProcessingInstruction):
            target.append(["pi", child.target, child.data])
    return prolog, epilog


def _save_span_index(arrays, sub_starts, sub_ends, sub_ranks,
                     sub_preorders, sub_subtrees) -> None:
    """Persist both global sorted orders of the span index.

    The global order is the stable sort of the concatenation root +
    components in rank order — identical to what successive
    ``searchsorted`` merges produce on a fresh build, and the
    normal form a compacted store file always carries.
    """
    starts = np.concatenate(sub_starts)
    ends = np.concatenate(sub_ends)
    ranks = np.concatenate(sub_ranks)
    preorders = np.concatenate(sub_preorders)
    subtrees = np.concatenate(sub_subtrees)
    s_order = np.argsort(_start_keys(starts, ends), kind="stable")
    arrays["index/s_keys"] = _start_keys(starts, ends)[s_order]
    arrays["index/starts"] = starts[s_order]
    arrays["index/ends"] = ends[s_order]
    arrays["index/ranks"] = ranks[s_order]
    arrays["index/preorders"] = preorders[s_order]
    arrays["index/subtree_ends"] = subtrees[s_order]
    e_order = np.argsort(_end_keys(starts, ends), kind="stable")
    arrays["index/e_keys"] = _end_keys(starts, ends)[e_order]
    arrays["index/e_starts"] = starts[e_order]
    arrays["index/e_ends"] = ends[e_order]
    arrays["index/e_ranks"] = ranks[e_order]


def _pack(path: str | Path, header: dict, arrays: dict[str, np.ndarray],
          *, durability: str = "off", format_version: int = 2) -> int:
    if durability not in ("full", "off"):
        raise ReproError(
            f"unknown .mhxb durability {durability!r} "
            f"(want 'full' or 'off')")
    if "hierarchies" in header and "plan_stats" not in header:
        # Plan statistics travel in the header (DESIGN.md §16) so a
        # cold-loaded engine costs plans without re-scanning.  Computed
        # here — the single serializer — from the packed arrays, so the
        # DOM and streaming save paths stay byte-identical; readers
        # treat an absent block as "recollect on first use".
        from repro.core.goddag.stats import plan_stats_payload
        header["plan_stats"] = plan_stats_payload(header, arrays)
    directory: dict[str, dict] = {}
    offset = 0
    blocks: list[tuple[int, bytes]] = []
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        payload = array.tobytes()
        directory[key] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
        }
        if format_version == 2:
            directory[key]["nbytes"] = len(payload)
            directory[key]["crc32"] = zlib.crc32(payload)
        blocks.append((offset, payload))
        offset += array.nbytes
    header["arrays"] = directory
    header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
    if format_version == 2:
        magic, preamble = MAGIC_V2, len(MAGIC_V2) + 8 + 4
    else:
        magic, preamble = MAGIC, len(MAGIC) + 8
    data_start = _align(preamble + len(header_bytes))
    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    layer = faultfs.current()
    handle = layer.open_for_write(temp)
    try:
        layer.write(handle, magic)
        layer.write(handle, len(header_bytes).to_bytes(8, "little"))
        if format_version == 2:
            layer.write(handle, zlib.crc32(header_bytes)
                        .to_bytes(4, "little"))
        layer.write(handle, header_bytes)
        layer.write(handle, b"\x00" * (data_start - preamble
                                       - len(header_bytes)))
        cursor = 0
        for block_offset, payload in blocks:
            layer.write(handle,
                        b"\x00" * (block_offset - cursor) + payload)
            cursor = block_offset + len(payload)
        size = handle.tell()
        if durability == "full":
            layer.fsync(handle)
    finally:
        handle.close()
    layer.replace(temp, path)
    if durability == "full":
        layer.fsync_dir(path.parent)
    return size


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------


def read_header(path: str | Path) -> tuple[dict, int]:
    """The parsed JSON header and the data-section start offset.

    Dispatches on the magic: v2 containers carry a CRC32 of the header
    JSON (verified here — a torn or bit-rotted header is caught before
    a single array block is trusted); v1 containers parse checksum-free
    for backward compatibility.
    """
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic not in _FORMATS:
                if magic[:1] == b"{":
                    raise ReproError(
                        f"{path} looks like a JSON .mhx container, not "
                        f"a binary .mhxb file — load it with load_mhx / "
                        f"Engine.from_mhx")
                raise ReproError(
                    f"{path} is not a .mhxb container (bad magic "
                    f"{magic!r})")
            header_len = int.from_bytes(handle.read(8), "little")
            preamble = len(magic) + 8
            expected_crc = None
            if magic == MAGIC_V2:
                expected_crc = int.from_bytes(handle.read(4), "little")
                preamble += 4
            header_bytes = handle.read(header_len)
            if expected_crc is not None and \
                    zlib.crc32(header_bytes) != expected_crc:
                raise IntegrityError(
                    f"{path} has a corrupt .mhxb header: CRC32 "
                    f"mismatch (stored {expected_crc:#010x}, computed "
                    f"{zlib.crc32(header_bytes):#010x})", path=path)
            header = json.loads(header_bytes.decode("utf-8"))
    except OSError as error:
        raise ReproError(
            f"cannot read .mhxb file {path}: {error}") from error
    except (ValueError, UnicodeDecodeError) as error:
        raise ReproError(
            f"{path} has a corrupt .mhxb header: {error}") from error
    if header.get("format") != _FORMATS[magic]:
        raise ReproError(
            f"{path} is not an {MHXB_FORMAT_V1}/{MHXB_FORMAT} "
            f"container (format={header.get('format')!r})")
    return header, _align(preamble + header_len)


def verify_blocks(path: str | Path, header: dict | None = None,
                  data_start: int | None = None) -> int:
    """Deep-scan every array block against its stored CRC32.

    Returns the number of blocks verified.  Raises
    :class:`~repro.errors.IntegrityError` naming the first mismatching
    block.  v1 containers carry no block checksums: the header is
    validated (structurally) and 0 is returned — callers that demand
    verifiability should re-save to v2.
    """
    if header is None:
        header, data_start = read_header(path)
    if header["format"] == MHXB_FORMAT_V1:
        return 0
    checked = 0
    with open(path, "rb") as handle:
        for key, entry in header["arrays"].items():
            nbytes = entry["nbytes"]
            handle.seek(data_start + entry["offset"])
            payload = handle.read(nbytes)
            if len(payload) != nbytes:
                raise IntegrityError(
                    f"{path}: block {key!r} is truncated "
                    f"({len(payload)} of {nbytes} bytes)",
                    path=path, block=key)
            if zlib.crc32(payload) != entry["crc32"]:
                raise IntegrityError(
                    f"{path}: CRC32 mismatch in block {key!r} "
                    f"(stored {entry['crc32']:#010x}, computed "
                    f"{zlib.crc32(payload):#010x})",
                    path=path, block=key)
            checked += 1
    return checked


def _map_arrays(path: Path, header: dict,
                data_start: int) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for key, entry in header["arrays"].items():
        shape = tuple(entry["shape"])
        if 0 in shape:
            arrays[key] = np.empty(shape, dtype=np.dtype(entry["dtype"]))
            continue
        arrays[key] = np.memmap(path, dtype=np.dtype(entry["dtype"]),
                                mode="r", offset=data_start
                                + entry["offset"], shape=shape)
    return arrays


def load_engine(path: str | Path, options=None, use_pipeline: bool = True,
                verify: bool = False):
    """Cold-load an :class:`~repro.api.Engine` from a ``.mhxb`` file.

    Reconstructs the KyGODDAG — components, partition, span index,
    order keys — straight from the memory-mapped arrays; no XML parse,
    no alignment pass, no sort.  The DOM document materializes lazily
    on first access (updates, serialization).

    ``verify=True`` deep-scans every block checksum before any array is
    trusted (the store's cold-load policy); the default keeps the load
    lazy/zero-copy, with the header CRC still checked.
    """
    from repro.api import Engine

    path = Path(path)
    header, data_start = read_header(path)
    if verify:
        verify_blocks(path, header, data_start)
    arrays = _map_arrays(path, header, data_start)
    text = bytes(arrays["text"]).decode("utf-8")
    names: list[str] = header["names"]

    goddag = KyGoddag(text, header["root"])
    goddag.partition = Partition.restore(
        goddag, len(text), arrays["partition/offsets"],
        arrays["partition/counts"])
    span_lists: list[tuple[int, list, np.ndarray, np.ndarray]] = []
    for position, meta in enumerate(header["hierarchies"]):
        prefix = f"h{position}"
        component, span_nodes = _load_component(goddag, meta, prefix,
                                                arrays, names)
        span_lists.append((component.rank, span_nodes,
                           arrays[f"{prefix}/s_perm"],
                           arrays[f"{prefix}/e_perm"]))
    goddag._index = _restore_index(goddag, header, arrays, span_lists)
    goddag.version = header["version"]
    if "plan_stats" in header:
        # Stamped at pack time; absent on pre-§16 containers, which
        # simply recollect on the first costed compile.
        from repro.core.goddag.stats import PlanStats
        goddag._plan_stats = PlanStats.from_payload(header["plan_stats"])

    loader = _DocumentLoader(header, arrays, text, names)
    return Engine.from_parts(goddag, document_loader=loader,
                             options=options, use_pipeline=use_pipeline)


def _load_component(goddag: KyGoddag, meta: dict, prefix: str,
                    arrays: dict[str, np.ndarray], names: list[str]):
    component = _HierarchyComponent(meta["name"], meta["rank"],
                                    temporary=False)
    kinds = arrays[f"{prefix}/kinds"].tolist()
    ids = arrays[f"{prefix}/name_ids"].tolist()
    starts = arrays[f"{prefix}/starts"].tolist()
    ends = arrays[f"{prefix}/ends"].tolist()
    parents = arrays[f"{prefix}/parents"].tolist()
    subtree_ends = arrays[f"{prefix}/subtree_ends"].tolist()
    okeys = arrays[f"{prefix}/okeys"].tolist()
    attrs = {position: mapping for position, mapping in meta["attrs"]}
    comments = {position: data for position, data in meta["comments"]}
    pis = {position: data for position, data in meta["pis"]}
    hierarchy = meta["name"]
    nodes: list = []
    top_nodes: list = []
    span_nodes: list = []
    # Hand-inlined constructors: this loop builds every node of the
    # document, and the nested __init__ chains are the single largest
    # cold-load cost at scale.
    for position in range(meta["count"]):
        kind = kinds[position]
        start = starts[position]
        end = ends[position]
        if kind == _KIND_ELEMENT:
            node = GElement.__new__(GElement)
            node._name = names[ids[position]]
            node.attributes = attrs.get(position) or {}
            node.children = []
            node._attr_nodes = None
            node._child_positions = None
            span_nodes.append(node)
        elif kind == _KIND_TEXT:
            node = GText.__new__(GText)
            component.text_nodes.append(node)
            component.text_starts.append(start)
            span_nodes.append(node)
        elif kind == _KIND_COMMENT:
            node = GComment.__new__(GComment)
            node.data = comments[position]
        else:
            node = GPi.__new__(GPi)
            node.target = names[ids[position]]
            node.data = pis[position]
        node.goddag = goddag
        node.start = start
        node.end = end
        node._hierarchy = hierarchy
        node.preorder = position
        node.subtree_end = subtree_ends[position]
        node._okey = okeys[position]
        parent_position = parents[position]
        if parent_position < 0:
            node._parent = goddag.root
            top_nodes.append(node)
        else:
            parent = nodes[parent_position]
            node._parent = parent
            parent.children.append(node)
        nodes.append(node)
    component.nodes = nodes
    component.boundaries = [offset for span in zip(starts, ends)
                            for offset in span]
    objects = np.empty(len(nodes), dtype=object)
    for position, node in enumerate(nodes):
        objects[position] = node
    component._nodes_arr = objects
    component._subtree_ends_arr = np.asarray(
        arrays[f"{prefix}/subtree_ends"])
    goddag.adopt_component(component, top_nodes, meta["root_attrs"])
    return component, span_nodes


def _restore_index(goddag: KyGoddag, header: dict,
                   arrays: dict[str, np.ndarray], span_lists) -> SpanIndex:
    """Rebuild the span index: numeric columns stay memory-mapped, the
    object columns (nodes, names) come from one rank-gather per
    hierarchy using the persisted per-hierarchy permutations."""
    ranks = arrays["index/ranks"]
    e_ranks = arrays["index/e_ranks"]
    total = len(ranks)
    nodes = np.empty(total, dtype=object)
    node_names = np.empty(total, dtype=object)
    e_nodes = np.empty(total, dtype=object)
    e_names = np.empty(total, dtype=object)
    root_mask = ranks == -1
    nodes[root_mask] = goddag.root
    node_names[root_mask] = goddag.root.name
    e_root_mask = e_ranks == -1
    e_nodes[e_root_mask] = goddag.root
    e_names[e_root_mask] = goddag.root.name
    subs: dict[str, tuple[int, int]] = {}
    for (rank, span_nodes, s_perm, e_perm), meta in zip(
            span_lists, header["hierarchies"]):
        count = len(span_nodes)
        subs[meta["name"]] = (rank, count)
        objects = np.empty(count, dtype=object)
        labels = np.empty(count, dtype=object)
        for position, node in enumerate(span_nodes):
            objects[position] = node
            labels[position] = node.name
        mask = ranks == rank
        nodes[mask] = objects[s_perm]
        node_names[mask] = labels[s_perm]
        e_mask = e_ranks == rank
        e_nodes[e_mask] = objects[e_perm]
        e_names[e_mask] = labels[e_perm]
    return SpanIndex.restore(goddag, {
        "s_keys": arrays["index/s_keys"],
        "nodes": nodes,
        "starts": arrays["index/starts"],
        "ends": arrays["index/ends"],
        "ranks": ranks,
        "preorders": arrays["index/preorders"],
        "subtree_ends": arrays["index/subtree_ends"],
        "names": node_names,
        "e_keys": arrays["index/e_keys"],
        "e_nodes": e_nodes,
        "e_starts": arrays["index/e_starts"],
        "ends_sorted": arrays["index/e_ends"],
        "e_ranks": e_ranks,
        "e_names": e_names,
    }, subs)


class _DocumentLoader:
    """Materializes the DOM side of a cold-loaded engine on demand."""

    def __init__(self, header: dict, arrays: dict[str, np.ndarray],
                 text: str, names: list[str]) -> None:
        self._header = header
        self._arrays = arrays
        self._text = text
        self._names = names

    def __call__(self) -> MultihierarchicalDocument:
        header, text, names = self._header, self._text, self._names
        document = MultihierarchicalDocument(text)
        for position, meta in enumerate(header["hierarchies"]):
            hier_doc = self._build_dom(meta, f"h{position}")
            document.hierarchies[meta["name"]] = Hierarchy(
                meta["name"], hier_doc)
        if header.get("dtds"):
            document.cmh = ConcurrentMarkupHierarchy.from_sources(
                header["root"], header["dtds"])
        return document

    def _build_dom(self, meta: dict, prefix: str) -> dom.Document:
        arrays, text, names = self._arrays, self._text, self._names
        hier_doc = dom.Document()
        for entry in meta["prolog"]:
            hier_doc.append(_aux_node(entry))
        root = dom.Element(self._header["root"], meta["root_attrs"])
        hier_doc.append(root)
        for entry in meta["epilog"]:
            hier_doc.append(_aux_node(entry))
        kinds = arrays[f"{prefix}/kinds"].tolist()
        ids = arrays[f"{prefix}/name_ids"].tolist()
        starts = arrays[f"{prefix}/starts"].tolist()
        ends = arrays[f"{prefix}/ends"].tolist()
        parents = arrays[f"{prefix}/parents"].tolist()
        attrs = {position: mapping for position, mapping in meta["attrs"]}
        comments = {position: data for position, data in meta["comments"]}
        pis = {position: data for position, data in meta["pis"]}
        nodes: list[dom.Node] = []
        for position in range(meta["count"]):
            kind = kinds[position]
            if kind == _KIND_ELEMENT:
                node: dom.Node = dom.Element(names[ids[position]],
                                             attrs.get(position))
            elif kind == _KIND_TEXT:
                node = dom.Text(text[starts[position]:ends[position]])
                node.start = starts[position]
                node.end = ends[position]
            elif kind == _KIND_COMMENT:
                node = dom.Comment(comments[position])
            else:
                node = dom.ProcessingInstruction(names[ids[position]],
                                                 pis[position])
            parent_position = parents[position]
            parent = (root if parent_position < 0
                      else nodes[parent_position])
            parent.append(node)
            nodes.append(node)
        return hier_doc


def _aux_node(entry: list) -> dom.Node:
    if entry[0] == "comment":
        return dom.Comment(entry[1])
    return dom.ProcessingInstruction(entry[1], entry[2])
