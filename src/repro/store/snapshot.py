"""Version-pinned snapshots: the reader side of the document store.

A :class:`Snapshot` wraps one frozen :class:`~repro.api.Engine` at one
document version.  Readers that hold a snapshot keep querying exactly
that version — the store's writer never mutates a published engine, it
forks, mutates the fork, and publishes a *new* snapshot — so reads are
lock-free and can never observe partial update state (DESIGN.md §10).

The one exception is ``analyze-string``: Definition 4 temporaries are
real (if transient) KyGODDAG membership changes, so a query that uses
them takes the exclusive side of the frozen goddag's reader/writer
latch while plain queries share the read side.  The latch lives on the
goddag itself (created by ``KyGoddag.freeze()``), so it also guards
direct ``snapshot.engine.query(...)`` calls that bypass this wrapper;
it never interacts with the store's writer lock — updates happen on
forks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.runtime import QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Engine, QueryResult
    from repro.store.plancache import SharedPlanCache


class Snapshot:
    """An immutable view of one stored document at one version."""

    __slots__ = ("name", "version", "engine", "_plans")

    def __init__(self, name: str, engine: "Engine",
                 plans: "SharedPlanCache") -> None:
        engine.goddag.freeze()
        self.name = name
        self.version = engine.version
        self.engine = engine
        self._plans = plans

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Snapshot {self.name!r} v{self.version}>"

    # -- queries -------------------------------------------------------------

    def query(self, text: str,
              variables: dict[str, list] | None = None) -> "QueryResult":
        """Evaluate an extended XQuery against this pinned version."""
        return self._run(text, variables, xpath=False)

    def xpath(self, text: str,
              variables: dict[str, list] | None = None) -> "QueryResult":
        """Evaluate a pure extended-XPath expression."""
        return self._run(text, variables, xpath=True)

    def _plan_stats(self):
        """The pinned engine's statistics when costing is on."""
        engine = self.engine
        return engine.plan_stats() if engine.use_cost else None

    def _run(self, text: str, variables, xpath: bool) -> "QueryResult":
        from repro.api import QueryResult

        engine = self.engine
        compiled, hit = self._plans.get(text, engine.options,
                                        xpath=xpath,
                                        stats=self._plan_stats())
        stats = QueryStats(plan_cache_hit=hit)
        items = engine._evaluate_guarded(
            text,
            lambda: compiled.execute(engine.goddag, variables=variables,
                                     options=engine.options,
                                     stats=stats))
        engine._finalize_stats(compiled, stats)
        return QueryResult(items, stats)

    def explain(self, text: str, xpath: bool = False,
                analyze: bool = False) -> str:
        """The compiled pipeline report (shared-cache compiled).

        ``analyze=True`` runs the query against this pinned version
        and renders actual next to estimated cardinalities.
        """
        engine = self.engine
        compiled, _hit = self._plans.get(text, engine.options,
                                         xpath=xpath,
                                         stats=self._plan_stats())
        if not analyze:
            return compiled.explain()
        stats = QueryStats()
        engine._evaluate_guarded(
            text,
            lambda: compiled.execute(engine.goddag, variables=None,
                                     options=engine.options,
                                     stats=stats))
        return compiled.explain(
            actuals=stats.op_actuals,
            miss_factor=engine.options.cost_fallback_factor)
