"""Overlap analytics over multihierarchical documents.

The questions an edition project asks before choosing an encoding
(§2's motivation, quantified): how often do hierarchies disagree, which
elements cross which, and what would a single-tree encoding cost?  All
measures are computed with the paper's own machinery (leaf partition
and extended axes), so they double as a worked example of using the
library as an analysis toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cmh.document import MultihierarchicalDocument
from repro.core.goddag import KyGoddag
from repro.core.goddag.axes import axis_overlapping
from repro.core.goddag.nodes import GElement


@dataclass(frozen=True)
class OverlapPair:
    """Aggregate overlap between two element names."""

    left_name: str
    right_name: str
    count: int


@dataclass
class OverlapReport:
    """The overlap profile of one multihierarchical document."""

    text_length: int
    hierarchy_names: list[str]
    element_count: int
    leaf_count: int
    #: element-name pairs that properly overlap, with pair counts
    #: (unordered pairs counted once, left name lexicographically first).
    pairs: list[OverlapPair] = field(default_factory=list)
    #: elements involved in at least one proper overlap.
    overlapping_elements: int = 0

    @property
    def leaves_per_element(self) -> float:
        """Partition refinement: 1.0 when hierarchies never disagree
        below the element level."""
        if self.element_count == 0:
            return 0.0
        return self.leaf_count / self.element_count

    @property
    def overlap_rate(self) -> float:
        """Fraction of elements involved in a proper overlap."""
        if self.element_count == 0:
            return 0.0
        return self.overlapping_elements / self.element_count

    def pair_count(self, left_name: str, right_name: str) -> int:
        """Overlap count for an (unordered) element-name pair."""
        key = tuple(sorted((left_name, right_name)))
        for pair in self.pairs:
            if (pair.left_name, pair.right_name) == key:
                return pair.count
        return 0

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) rows for tabular printing."""
        out = [
            ("text length", str(self.text_length)),
            ("hierarchies", ", ".join(self.hierarchy_names)),
            ("elements", str(self.element_count)),
            ("leaves", str(self.leaf_count)),
            ("leaves / element", f"{self.leaves_per_element:.2f}"),
            ("overlapping elements",
             f"{self.overlapping_elements} "
             f"({self.overlap_rate:.0%})"),
        ]
        for pair in self.pairs:
            out.append((f"overlap {pair.left_name} × {pair.right_name}",
                        str(pair.count)))
        return out


def analyze_overlap(source: MultihierarchicalDocument | KyGoddag
                    ) -> OverlapReport:
    """Compute the overlap profile of a document (or its KyGODDAG)."""
    goddag = (source if isinstance(source, KyGoddag)
              else KyGoddag.build(source))
    elements = [node for node in goddag.iter_nodes(include_leaves=False)
                if isinstance(node, GElement)]
    report = OverlapReport(
        text_length=len(goddag.text),
        hierarchy_names=list(goddag.hierarchy_names),
        element_count=len(elements),
        leaf_count=len(goddag.partition),
    )
    pair_counts: dict[tuple[str, str], int] = {}
    involved: set[int] = set()
    for element in elements:
        for other in axis_overlapping(goddag, element):
            if not isinstance(other, GElement):
                continue
            involved.add(id(element))
            involved.add(id(other))
            key = tuple(sorted((element.name, other.name)))
            pair_counts[key] = pair_counts.get(key, 0) + 1
    # Every proper overlap is seen from both sides: halve the counts.
    report.pairs = [
        OverlapPair(left, right, count // 2)
        for (left, right), count in sorted(pair_counts.items())
    ]
    report.overlapping_elements = len(involved)
    return report


def split_elements(goddag: KyGoddag, inner_name: str,
                   outer_name: str) -> list[GElement]:
    """Elements named ``inner_name`` properly overlapping some
    ``outer_name`` element — e.g. words split across physical lines
    (the paper's *singallice* phenomenon)."""
    out: list[GElement] = []
    for element in goddag.elements(inner_name):
        if any(isinstance(other, GElement) and other.name == outer_name
               for other in axis_overlapping(goddag, element)):
            out.append(element)
    return out
