"""Query answering over the flat (single-tree) baseline encodings.

These functions answer the paper's information needs using *only*
standard DOM facilities over the fragmentation/milestone documents —
the way a stock XQuery engine would have to.  The contrast with the
one-line extended-XQuery formulations is the point of experiments
C-FRAG and C-MILE: every query here must

1. walk the whole document computing character offsets (there is no
   shared leaf layer),
2. reassemble fragment groups / marker pairs into logical elements, and
3. join extents by interval arithmetic.

Correctness of the reassembly is enforced by tests that compare these
answers against the KyGODDAG engine's answers on the same documents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BaselineError
from repro.markup import dom
from repro.baselines import fragmentation as frag
from repro.baselines import milestones as mile


@dataclass
class FlatGroup:
    """A logical element reassembled from a flat encoding."""

    name: str
    group_id: str
    start: int
    end: int
    text: str
    elements: tuple[dom.Element, ...] = ()

    def overlaps(self, other: "FlatGroup") -> bool:
        """True when the two logical extents share characters."""
        return self.start < other.end and other.start < self.end


def text_offsets(document: dom.Document
                 ) -> tuple[dict[int, tuple[int, int]], str]:
    """Character extents of every node of a flat document.

    Returns ``({id(node): (start, end)}, full_text)``.  Empty elements
    (milestones) get zero-length extents at their position.
    """
    offsets: dict[int, tuple[int, int]] = {}
    pieces: list[str] = []
    cursor = 0

    def visit(node: dom.Node) -> tuple[int, int]:
        nonlocal cursor
        start = cursor
        if isinstance(node, dom.Text):
            pieces.append(node.data)
            cursor += len(node.data)
        elif isinstance(node, (dom.Element, dom.Document)):
            for child in node.children:
                visit(child)
        end = cursor
        offsets[id(node)] = (start, end)
        return start, end

    visit(document.root)
    return offsets, "".join(pieces)


def fragment_groups(document: dom.Document,
                    name: str | None = None) -> list[FlatGroup]:
    """Reassemble fragment groups of a fragmentation encoding.

    This is the per-query cost of the encoding: a full walk with offset
    bookkeeping, then grouping by ``fid``.
    """
    offsets, text = text_offsets(document)
    grouped: dict[str, list[dom.Element]] = {}
    for element in document.root.iter_elements():
        fid = element.get(frag.FID_ATTRIBUTE)
        if fid is None:
            continue
        if name is not None and element.name != name:
            continue
        grouped.setdefault(fid, []).append(element)
    out: list[FlatGroup] = []
    for fid, elements in grouped.items():
        starts = [offsets[id(e)][0] for e in elements]
        ends = [offsets[id(e)][1] for e in elements]
        start, end = min(starts), max(ends)
        out.append(FlatGroup(elements[0].name, fid, start, end,
                             text[start:end], tuple(elements)))
    out.sort(key=lambda group: (group.start, -(group.end - group.start)))
    return out


def milestone_groups(document: dom.Document,
                     name: str | None = None) -> list[FlatGroup]:
    """Reassemble marker pairs of a milestone encoding."""
    offsets, text = text_offsets(document)
    starts: dict[str, tuple[str, int]] = {}
    out: list[FlatGroup] = []
    for element in document.root.iter_elements():
        sid = element.get(mile.SID_ATTRIBUTE)
        if sid is None:
            continue
        if element.name.endswith(mile.START_SUFFIX):
            base = element.name[:-len(mile.START_SUFFIX)]
            starts[sid] = (base, offsets[id(element)][0])
        elif element.name.endswith(mile.END_SUFFIX):
            if sid not in starts:
                raise BaselineError(f"end marker without start: {sid}")
            base, start = starts.pop(sid)
            if name is not None and base != name:
                continue
            end = offsets[id(element)][0]
            out.append(FlatGroup(base, sid, start, end, text[start:end]))
    out.sort(key=lambda group: (group.start, -(group.end - group.start)))
    return out


def primary_groups(document: dom.Document,
                   name: str) -> list[FlatGroup]:
    """Real (non-marker, non-fragment) elements of a flat document."""
    offsets, text = text_offsets(document)
    out: list[FlatGroup] = []
    serial = 0
    for element in document.root.iter_elements(name):
        if element.get(mile.SID_ATTRIBUTE) is not None:
            continue
        serial += 1
        start, end = offsets[id(element)]
        out.append(FlatGroup(element.name, f"{name}#{serial}", start, end,
                             text[start:end], (element,)))
    return out


def search_groups(groups: list[FlatGroup], target: str) -> list[FlatGroup]:
    """Groups whose reassembled text equals ``target``.

    The flat counterpart of ``w[string(.) = "..."]`` — without the
    reassembly a fragmented word like *singallice* is unfindable.
    """
    return [group for group in groups if group.text == target]


def lines_containing_group(lines: list[FlatGroup],
                           targets: list[FlatGroup]) -> list[FlatGroup]:
    """Line groups whose extent overlaps any target group's extent.

    The flat counterpart of the paper's
    ``line[xdescendant::w[...] or overlapping::w[...]]`` — an interval
    join the query author must write by hand.
    """
    out: list[FlatGroup] = []
    for line in lines:
        if any(line.overlaps(target) for target in targets):
            out.append(line)
    return out


def groups_overlapping(left: list[FlatGroup],
                       right: list[FlatGroup]) -> list[FlatGroup]:
    """Members of ``left`` that intersect any member of ``right``.

    Used for the damaged-words query (I.2) over flat encodings: words
    joined against damage extents.
    """
    out: list[FlatGroup] = []
    for candidate in left:
        if any(candidate.overlaps(other) for other in right):
            out.append(candidate)
    return out
