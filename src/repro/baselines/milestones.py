"""The milestone encoding: one primary tree + empty boundary markers.

One hierarchy (the *primary*) keeps its real element structure; every
element of every other hierarchy collapses into a pair of empty marker
elements ``<nameS sid=.../>`` / ``<nameE sid=.../>`` placed at its
start/end offsets (the TEI milestone technique).  Queries over the
non-primary hierarchies must then scan between markers and rebuild
extents at query time — the cost the paper's §1 refers to.

``demilestone`` inverts the encoding (round-trip property tests).
"""

from __future__ import annotations

from repro.errors import BaselineError
from repro.markup import dom
from repro.cmh.document import Hierarchy, MultihierarchicalDocument
from repro.cmh.spans import Span, SpanSet, spans_of

SID_ATTRIBUTE = "sid"
START_SUFFIX = "S"
END_SUFFIX = "E"


def milestone_document(document: MultihierarchicalDocument,
                       primary: str | None = None) -> dom.Document:
    """Encode ``document`` as primary tree + milestones.

    ``primary`` names the hierarchy that keeps real elements; defaults
    to the first registered hierarchy.
    """
    names = document.hierarchy_names
    primary = primary or names[0]
    if primary not in document:
        raise BaselineError(f"no hierarchy named '{primary}'")
    text = document.text
    primary_spans = SpanSet(text, list(spans_of(document[primary].document)))
    flat = primary_spans.to_document(document.root_name)
    # Per offset: end markers (innermost first), then zero-length
    # start/end pairs, then start markers (outermost first) — so nesting
    # reads correctly and a zero-length span's start precedes its end.
    ends: dict[int, list[dom.Element]] = {}
    pairs: dict[int, list[dom.Element]] = {}
    starts: dict[int, list[dom.Element]] = {}
    for hierarchy in names:
        if hierarchy == primary:
            continue
        serial = 0
        for span in sorted(spans_of(document[hierarchy].document),
                           key=lambda s: (s.start, -(s.end - s.start))):
            serial += 1
            sid = f"{hierarchy}.{serial}"
            start_marker = dom.Element(span.name + START_SUFFIX,
                                       {**span.attributes_dict,
                                        SID_ATTRIBUTE: sid})
            end_marker = dom.Element(span.name + END_SUFFIX,
                                     {SID_ATTRIBUTE: sid})
            if span.start == span.end:
                pairs.setdefault(span.start, []).extend(
                    [start_marker, end_marker])
            else:
                starts.setdefault(span.start, []).append(start_marker)
                ends.setdefault(span.end, []).insert(0, end_marker)
    markers: dict[int, list[dom.Element]] = {}
    for offset in set(ends) | set(pairs) | set(starts):
        markers[offset] = (ends.get(offset, []) + pairs.get(offset, [])
                           + starts.get(offset, []))
    _insert_markers(flat, markers, text)
    return flat


def _insert_markers(document: dom.Document,
                    markers: dict[int, list[dom.Element]],
                    text: str) -> None:
    """Insert marker elements at their offsets, splitting text nodes."""
    remaining = dict(markers)
    for node in list(document.root.iter()):
        if not isinstance(node, dom.Text):
            continue
        assert node.start is not None and node.end is not None
        inside = sorted(offset for offset in remaining
                        if node.start <= offset <= node.end)
        if not inside:
            continue
        parent = node.parent
        assert parent is not None
        index = parent.children.index(node)
        parent.remove(node)
        cursor = node.start
        for offset in inside:
            if offset > cursor:
                piece = dom.Text(text[cursor:offset])
                piece.start, piece.end = cursor, offset
                parent.insert(index, piece)
                index += 1
                cursor = offset
            for marker in remaining.pop(offset):
                parent.insert(index, marker)
                index += 1
        if node.end > cursor:
            piece = dom.Text(text[cursor:node.end])
            piece.start, piece.end = cursor, node.end
            parent.insert(index, piece)
    leftovers = sorted(remaining)
    if leftovers:
        # Offsets not inside any primary text node (e.g. the document
        # ends with markup): attach at the root edge.
        for offset in leftovers:
            for marker in remaining[offset]:
                document.root.append(marker)


def demilestone(document: dom.Document,
                primary: str) -> MultihierarchicalDocument:
    """Invert :func:`milestone_document` back to aligned hierarchies."""
    from repro.baselines.flatquery import text_offsets

    offsets, text = text_offsets(document)
    primary_spans = SpanSet(text)
    starts: dict[str, tuple[int, str, dict[str, str], int]] = {}
    span_sets: dict[str, SpanSet] = {}
    counter = 0
    for element in document.root.iter_elements():
        counter += 1
        sid = element.get(SID_ATTRIBUTE)
        if sid is None:
            start, end = offsets[id(element)]
            primary_spans.add(Span(start, end, element.name,
                                   tuple(element.attributes.items()),
                                   depth_hint=counter))
            continue
        hierarchy, _dot, _serial = sid.rpartition(".")
        if element.name.endswith(START_SUFFIX):
            attributes = {k: v for k, v in element.attributes.items()
                          if k != SID_ATTRIBUTE}
            # The start-marker position (document order) recovers the
            # nesting of same-extent spans: outer starts come first.
            starts[sid] = (offsets[id(element)][0],
                           element.name[:-len(START_SUFFIX)], attributes,
                           counter)
        elif element.name.endswith(END_SUFFIX):
            if sid not in starts:
                raise BaselineError(f"end marker without start: {sid}")
            start, name, attributes, start_order = starts.pop(sid)
            end = offsets[id(element)][0]
            span_sets.setdefault(hierarchy, SpanSet(text))
            span_sets[hierarchy].add(Span(start, end, name,
                                          tuple(attributes.items()),
                                          depth_hint=start_order))
        else:
            raise BaselineError(
                f"marker element '{element.name}' has no S/E suffix")
    if starts:
        raise BaselineError(
            f"unmatched start markers: {sorted(starts)}")
    result = MultihierarchicalDocument(text)
    result.add_hierarchy(Hierarchy(
        primary, primary_spans.to_document(document.root.name)))
    for hierarchy, spans in span_sets.items():
        result.add_hierarchy(Hierarchy(
            hierarchy, spans.to_document(document.root.name)))
    return result
