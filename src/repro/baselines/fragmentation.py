"""The fragmentation encoding: one tree, overlap split into fragments.

Every element of every hierarchy is emitted into a single well-formed
document.  When two elements properly overlap, the one that must close
"through" the other is split into fragments.  Fragments carry

* ``fid`` — the fragment group id, ``<hierarchy>.<serial>``, linking
  the pieces of one original element;
* ``part`` — ``I``/``M``/``F`` (initial/middle/final) on split
  elements, following the TEI convention.

``defragment`` inverts the encoding back into per-hierarchy documents
(used by the round-trip property tests): fragments of one group are
contiguous, so each original element is recovered as the convex hull of
its fragments' character spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BaselineError
from repro.markup import dom
from repro.cmh.document import MultihierarchicalDocument
from repro.cmh.spans import Span, SpanSet, spans_of

FID_ATTRIBUTE = "fid"
PART_ATTRIBUTE = "part"


@dataclass
class _SpanRecord:
    """One original element during the sweep."""

    start: int
    end: int
    name: str
    attributes: dict[str, str]
    hierarchy: str
    rank: int
    depth: int
    fid: str
    fragments: list[dom.Element] = field(default_factory=list)


def fragment_document(document: MultihierarchicalDocument,
                      hierarchy_order: list[str] | None = None
                      ) -> dom.Document:
    """Merge all hierarchies into one fragmented document.

    ``hierarchy_order`` breaks nesting ties between same-extent elements
    of different hierarchies (earlier = outer); defaults to the
    document's registration order.
    """
    order = hierarchy_order or document.hierarchy_names
    records = _collect_records(document, order)
    return _sweep(document.text, document.root_name, records)


def _collect_records(document: MultihierarchicalDocument,
                     order: list[str]) -> list[_SpanRecord]:
    records: list[_SpanRecord] = []
    for rank, name in enumerate(order):
        hierarchy = document[name]
        serial = 0
        for span in spans_of(hierarchy.document):
            serial += 1
            records.append(_SpanRecord(
                start=span.start, end=span.end, name=span.name,
                attributes=span.attributes_dict, hierarchy=name, rank=rank,
                depth=span.depth_hint, fid=f"{name}.{serial}"))
    return records


def _sweep(text: str, root_name: str,
           records: list[_SpanRecord]) -> dom.Document:
    boundaries = sorted({0, len(text)}
                        | {r.start for r in records}
                        | {r.end for r in records})
    opens_at: dict[int, list[_SpanRecord]] = {}
    closes_at: dict[int, set[int]] = {}
    for record in records:
        if record.start == record.end:
            continue  # zero-length spans are emitted as empty elements
        opens_at.setdefault(record.start, []).append(record)
        closes_at.setdefault(record.end, set()).add(id(record))
    empties_at: dict[int, list[_SpanRecord]] = {}
    for record in records:
        if record.start == record.end:
            empties_at.setdefault(record.start, []).append(record)

    root_document = dom.Document()
    root = dom.Element(root_name)
    root_document.append(root)
    # The stack holds (record-or-None, element); None marks the root.
    stack: list[tuple[_SpanRecord | None, dom.Element]] = [(None, root)]

    def open_fragment(record: _SpanRecord) -> None:
        element = dom.Element(record.name, dict(record.attributes))
        element.set(FID_ATTRIBUTE, record.fid)
        stack[-1][1].append(element)
        record.fragments.append(element)
        stack.append((record, element))

    for position, offset in enumerate(boundaries):
        # 1. close / suspend-and-resume
        pending = closes_at.get(offset, set())
        if pending:
            suspended: list[_SpanRecord] = []
            while pending:
                record, _element = stack.pop()
                if record is None:
                    raise BaselineError(
                        "fragmentation sweep underflowed the root")
                if id(record) in pending:
                    pending.discard(id(record))
                else:
                    suspended.append(record)
            for record in reversed(suspended):
                open_fragment(record)
        # 2. point (zero-length) elements
        for record in empties_at.get(offset, []):
            element = dom.Element(record.name, dict(record.attributes))
            element.set(FID_ATTRIBUTE, record.fid)
            stack[-1][1].append(element)
            record.fragments.append(element)
        # 3. opens: longer extents (then earlier hierarchies, outer
        #    depth hints) become outer elements
        for record in sorted(opens_at.get(offset, []),
                             key=lambda r: (-r.end, r.rank, r.depth)):
            open_fragment(record)
        # 4. text run to the next boundary
        if position + 1 < len(boundaries):
            next_offset = boundaries[position + 1]
            if next_offset > offset:
                text_node = dom.Text(text[offset:next_offset])
                text_node.start, text_node.end = offset, next_offset
                stack[-1][1].append(text_node)
    if len(stack) != 1:
        raise BaselineError("unclosed elements after fragmentation sweep")
    _assign_parts(records)
    return root_document


def _assign_parts(records: list[_SpanRecord]) -> None:
    for record in records:
        fragments = record.fragments
        if len(fragments) <= 1:
            continue
        for index, fragment in enumerate(fragments):
            if index == 0:
                fragment.set(PART_ATTRIBUTE, "I")
            elif index == len(fragments) - 1:
                fragment.set(PART_ATTRIBUTE, "F")
            else:
                fragment.set(PART_ATTRIBUTE, "M")


def defragment(document: dom.Document) -> MultihierarchicalDocument:
    """Invert :func:`fragment_document` into per-hierarchy documents."""
    from repro.baselines.flatquery import text_offsets

    offsets, text = text_offsets(document)
    groups: dict[str, list[dom.Element]] = {}
    for element in document.root.iter_elements():
        fid = element.get(FID_ATTRIBUTE)
        if fid is None:
            raise BaselineError(
                f"element '{element.name}' lacks a {FID_ATTRIBUTE} "
                f"attribute; not a fragmentation encoding")
        groups.setdefault(fid, []).append(element)
    span_sets: dict[str, SpanSet] = {}
    depth_counter = 0
    for fid, elements in groups.items():
        hierarchy, _dot, _serial = fid.rpartition(".")
        if not hierarchy:
            raise BaselineError(f"malformed fragment id {fid!r}")
        starts = [offsets[id(e)][0] for e in elements]
        ends = [offsets[id(e)][1] for e in elements]
        attributes = {
            key: value for key, value in elements[0].attributes.items()
            if key not in (FID_ATTRIBUTE, PART_ATTRIBUTE)
        }
        span_sets.setdefault(hierarchy, SpanSet(text))
        depth_counter += 1
        span_sets[hierarchy].add(Span(
            min(starts), max(ends), elements[0].name,
            tuple(attributes.items()), depth_hint=depth_counter))
    result = MultihierarchicalDocument(text)
    for hierarchy, spans in span_sets.items():
        result.add_hierarchy(
            _as_hierarchy(hierarchy, spans, document.root.name))
    return result


def _as_hierarchy(name: str, spans: SpanSet, root_name: str):
    from repro.cmh.document import Hierarchy

    return Hierarchy(name, spans.to_document(root_name))
