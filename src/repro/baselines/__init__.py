"""Baseline single-document encodings of overlapping markup.

The paper (§1, citing the authors' DEXA'05 study [6]) argues that
representing concurrent hierarchies inside one well-formed XML document
via "hacks" *"comes with a steep price at query processing time"*.
This package implements the two classic hacks so the claim can be
measured (experiment ids C-FRAG, C-MILE):

* :mod:`repro.baselines.fragmentation` — overlapping elements are split
  into ``part``-linked fragments (TEI's partial-element technique);
* :mod:`repro.baselines.milestones` — non-primary hierarchies collapse
  to empty start/end marker elements (TEI milestones);
* :mod:`repro.baselines.flatquery` — answering the paper's queries over
  those encodings with standard DOM navigation only, which requires
  fragment reassembly and offset bookkeeping at query time.
"""

from repro.baselines.fragmentation import defragment, fragment_document
from repro.baselines.milestones import milestone_document, demilestone
from repro.baselines.flatquery import (
    FlatGroup,
    fragment_groups,
    lines_containing_group,
    milestone_groups,
    search_groups,
    text_offsets,
)

__all__ = [
    "fragment_document",
    "defragment",
    "milestone_document",
    "demilestone",
    "FlatGroup",
    "text_offsets",
    "fragment_groups",
    "milestone_groups",
    "search_groups",
    "lines_containing_group",
]
