"""Half-open character interval arithmetic.

Every markup node in a multihierarchical document annotates a contiguous
span of the base text, represented as a half-open interval
``[start, end)`` of character offsets.  Because every markup boundary is
a leaf boundary (see ``repro.core.goddag.partition``), the paper's
leaf-set comparisons (Definition 1) reduce to the interval predicates in
this module; the reduction is exercised by property tests in
``tests/test_prop_axes.py``.

An *empty* span (``start == end``) carries no leaves.  The predicates
below follow the set semantics: an empty set overlaps nothing and is
contained in everything, but callers in the axes layer explicitly
exclude empty-span nodes (see DESIGN.md, "Nodes with empty spans").
"""

from __future__ import annotations

from typing import NamedTuple


class Span(NamedTuple):
    """A half-open interval ``[start, end)`` of character offsets."""

    start: int
    end: int

    @property
    def is_empty(self) -> bool:
        """True when the span covers no characters."""
        return self.start >= self.end

    def __len__(self) -> int:  # pragma: no cover - trivial
        return max(0, self.end - self.start)


def overlaps(a: Span, b: Span) -> bool:
    """True when the two spans share at least one character."""
    return a.start < b.end and b.start < a.end


def contains(outer: Span, inner: Span) -> bool:
    """True when ``inner`` lies entirely within ``outer``.

    Mirrors set containment of leaf sets for non-empty spans.  An empty
    ``inner`` is vacuously contained.
    """
    return outer.start <= inner.start and inner.end <= outer.end


def strictly_before(a: Span, b: Span) -> bool:
    """True when every character of ``a`` precedes every one of ``b``.

    Equivalent to ``max(leaves(a)) < min(leaves(b))`` in the paper's
    notation, for non-empty spans.
    """
    return a.end <= b.start


def strictly_after(a: Span, b: Span) -> bool:
    """True when every character of ``a`` follows every one of ``b``."""
    return b.end <= a.start


def crosses(a: Span, b: Span) -> bool:
    """True when the spans *properly* overlap (neither contains the other).

    This is the paper's ``overlapping`` relation: the spans intersect and
    each has at least one character outside the other.
    """
    if a.is_empty or b.is_empty:
        return False
    return overlaps(a, b) and not contains(a, b) and not contains(b, a)
