"""Small shared utilities: interval arithmetic, identifiers, text helpers."""

from repro.util.intervals import (
    Span,
    contains,
    crosses,
    overlaps,
    strictly_after,
    strictly_before,
)
from repro.util.ids import NameAllocator

__all__ = [
    "Span",
    "contains",
    "crosses",
    "overlaps",
    "strictly_after",
    "strictly_before",
    "NameAllocator",
]
