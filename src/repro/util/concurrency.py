"""Concurrency primitives for frozen-snapshot readers (DESIGN.md §10).

The stdlib has no reader/writer lock; this one is writer-preferring —
once an exclusive acquirer queues, new shared acquirers wait, so a
steady stream of plain queries can never starve an ``analyze-string``
evaluation waiting for the exclusive side.
"""

from __future__ import annotations

import threading


def needs_exclusive_evaluation(text: str | None) -> bool:
    """True when a query must take the exclusive latch side.

    ``analyze-string`` registers (and removes) a real temporary
    hierarchy — a membership change of the shared structure.  The scan
    is conservative: any mention of the token, or an unavailable query
    text (pre-parsed ASTs), goes exclusive — a false positive costs
    concurrency, never correctness.
    """
    return text is None or "analyze-string" in text


class ReadWriteLatch:
    """A minimal many-reader / one-writer latch."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writing = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writing or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True

    def release_write(self) -> None:
        with self._condition:
            self._writing = False
            self._condition.notify_all()

    def acquire(self, exclusive: bool) -> None:
        (self.acquire_write if exclusive else self.acquire_read)()

    def release(self, exclusive: bool) -> None:
        (self.release_write if exclusive else self.release_read)()
