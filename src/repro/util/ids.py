"""Unique name allocation for temporary hierarchies and fragments."""

from __future__ import annotations

from collections.abc import Iterable


class NameAllocator:
    """Allocates names that are unique against a set of taken names.

    The first allocation for a base returns the base itself when free
    (``rest``); later ones append a counter (``rest2``, ``rest3``, …).
    This matches the paper's Definition 4, which names the temporary
    hierarchy "say, rest" but requires a fresh hierarchy per call.
    """

    def __init__(self, taken: Iterable[str] = ()) -> None:
        self._taken: set[str] = set(taken)
        self._counters: dict[str, int] = {}

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken without allocating it."""
        self._taken.add(name)

    def release(self, name: str) -> None:
        """Return ``name`` to the free pool."""
        self._taken.discard(name)

    def allocate(self, base: str) -> str:
        """Return a fresh name derived from ``base`` and mark it taken."""
        if base not in self._taken:
            self._taken.add(base)
            return base
        counter = self._counters.get(base, 1)
        while True:
            counter += 1
            candidate = f"{base}{counter}"
            if candidate not in self._taken:
                self._counters[base] = counter
                self._taken.add(candidate)
                return candidate
