"""From-scratch XML substrate: parser, DOM, serializer, DTD validation.

The paper's KyGODDAG generalizes DOM, so this package provides the DOM
layer it builds on.  No third-party XML library is used anywhere in the
repository; this package is the single implementation of XML parsing and
serialization.

Public entry points:

* :func:`parse` / :func:`parse_fragment` — string to DOM.
* :class:`~repro.markup.dom.Document` and node classes — the DOM.
* :func:`serialize` — DOM to string.
* :func:`~repro.markup.dtd.parse_dtd` and
  :func:`~repro.markup.validate.validate` — DTD support.
"""

from repro.markup.dom import (
    Attr,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from repro.markup.parser import parse, parse_fragment
from repro.markup.serializer import serialize, escape_attribute, escape_text
from repro.markup.dtd import DTD, parse_dtd
from repro.markup.validate import validate

__all__ = [
    "Attr",
    "Comment",
    "Document",
    "Element",
    "Node",
    "ProcessingInstruction",
    "Text",
    "parse",
    "parse_fragment",
    "serialize",
    "escape_attribute",
    "escape_text",
    "DTD",
    "parse_dtd",
    "validate",
]
