"""DTD support: declarations, content models, and their automata.

The paper defines a Concurrent Markup Hierarchy as "a collection of
DTDs ... and an XML element r" (Section 3), so DTDs are a first-class
substrate here.  This module parses the subset of DTD syntax used by
document-centric schemas:

* ``<!ELEMENT name EMPTY|ANY|(#PCDATA|a|b)*|deterministic-model>``
* ``<!ATTLIST name attr CDATA|ID|IDREF|IDREFS|NMTOKEN|NMTOKENS|(a|b)
  #REQUIRED|#IMPLIED|#FIXED "v"|"v">``
* ``<!ENTITY name "value">`` (internal general entities)

Content models compile to epsilon-free NFAs (Thompson construction +
epsilon elimination) so validation of a child sequence is a linear scan
(:meth:`ContentModel.matches`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DTDError

# --------------------------------------------------------------------------
# Content model expression tree
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelNode:
    """A node in a content model expression tree.

    ``kind`` is one of ``name`` (an element name in ``value``), ``seq``
    (``a, b``), ``choice`` (``a | b``), ``opt`` (``x?``), ``star``
    (``x*``), ``plus`` (``x+``), or ``pcdata``.
    """

    kind: str
    value: str | None = None
    children: tuple["ModelNode", ...] = ()

    def to_source(self) -> str:
        """Render back to DTD content-model syntax."""
        if self.kind == "name":
            return self.value or ""
        if self.kind == "pcdata":
            return "#PCDATA"
        if self.kind == "seq":
            return "(" + ",".join(c.to_source() for c in self.children) + ")"
        if self.kind == "choice":
            return "(" + "|".join(c.to_source() for c in self.children) + ")"
        suffix = {"opt": "?", "star": "*", "plus": "+"}[self.kind]
        return self.children[0].to_source() + suffix


class _NFA:
    """An epsilon-NFA over element names, built by Thompson construction."""

    def __init__(self) -> None:
        self.transitions: list[dict[str, set[int]]] = []
        self.epsilon: list[set[int]] = []

    def add_state(self) -> int:
        self.transitions.append({})
        self.epsilon.append(set())
        return len(self.transitions) - 1

    def add_edge(self, source: int, symbol: str, target: int) -> None:
        self.transitions[source].setdefault(symbol, set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon[source].add(target)

    def closure(self, states: set[int]) -> frozenset[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for target in self.epsilon[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)


class ContentModel:
    """A compiled element content model.

    Attributes
    ----------
    kind:
        ``"EMPTY"``, ``"ANY"``, ``"mixed"`` (``(#PCDATA|...)*``), or
        ``"children"`` (an element content model).
    """

    def __init__(self, kind: str, tree: ModelNode | None = None,
                 mixed_names: frozenset[str] | None = None) -> None:
        self.kind = kind
        self.tree = tree
        self.mixed_names = mixed_names or frozenset()
        self._nfa: _NFA | None = None
        self._start: frozenset[int] | None = None
        self._accept: int | None = None
        if kind == "children" and tree is not None:
            self._compile(tree)

    # -- compilation -----------------------------------------------------

    def _compile(self, tree: ModelNode) -> None:
        nfa = _NFA()
        start = nfa.add_state()
        accept = nfa.add_state()
        self._build(nfa, tree, start, accept)
        self._nfa = nfa
        self._start = nfa.closure({start})
        self._accept = accept

    def _build(self, nfa: _NFA, node: ModelNode, source: int,
               target: int) -> None:
        if node.kind == "name":
            assert node.value is not None
            nfa.add_edge(source, node.value, target)
        elif node.kind == "seq":
            current = source
            for index, child in enumerate(node.children):
                nxt = (target if index == len(node.children) - 1
                       else nfa.add_state())
                self._build(nfa, child, current, nxt)
                current = nxt
        elif node.kind == "choice":
            for child in node.children:
                self._build(nfa, child, source, target)
        elif node.kind == "opt":
            nfa.add_epsilon(source, target)
            self._build(nfa, node.children[0], source, target)
        elif node.kind == "star":
            hub = nfa.add_state()
            nfa.add_epsilon(source, hub)
            nfa.add_epsilon(hub, target)
            self._build(nfa, node.children[0], hub, hub)
        elif node.kind == "plus":
            hub = nfa.add_state()
            self._build(nfa, node.children[0], source, hub)
            nfa.add_epsilon(hub, target)
            self._build(nfa, node.children[0], hub, hub)
        else:  # pragma: no cover - guarded by the parser
            raise DTDError(f"unexpected model node {node.kind!r}")

    # -- matching -----------------------------------------------------------

    def allows_text(self) -> bool:
        """True when character data may appear in this content."""
        return self.kind in ("ANY", "mixed")

    def allows_element(self, name: str) -> bool:
        """True when ``name`` may appear *somewhere* in this content."""
        if self.kind == "ANY":
            return True
        if self.kind == "mixed":
            return name in self.mixed_names
        if self.kind == "EMPTY":
            return False
        assert self._nfa is not None
        return any(name in edges for edges in self._nfa.transitions)

    def matches(self, names: list[str]) -> bool:
        """True when the child-element name sequence satisfies the model."""
        if self.kind == "ANY":
            return True
        if self.kind == "EMPTY":
            return not names
        if self.kind == "mixed":
            return all(name in self.mixed_names for name in names)
        nfa, states = self._nfa, self._start
        assert nfa is not None and states is not None
        for name in names:
            reached: set[int] = set()
            for state in states:
                reached |= nfa.transitions[state].get(name, set())
            if not reached:
                return False
            states = nfa.closure(reached)
        return self._accept in states

    def to_source(self) -> str:
        """Render back to DTD syntax (canonicalized)."""
        if self.kind in ("EMPTY", "ANY"):
            return self.kind
        if self.kind == "mixed":
            if self.mixed_names:
                names = "|".join(sorted(self.mixed_names))
                return f"(#PCDATA|{names})*"
            return "(#PCDATA)"
        assert self.tree is not None
        return self.tree.to_source()


# --------------------------------------------------------------------------
# Attribute declarations
# --------------------------------------------------------------------------

ATTRIBUTE_TYPES = frozenset({
    "CDATA", "ID", "IDREF", "IDREFS", "NMTOKEN", "NMTOKENS",
    "ENTITY", "ENTITIES", "NOTATION",
})


@dataclass(frozen=True)
class AttributeDecl:
    """One attribute declaration from an ``<!ATTLIST>``.

    ``kind`` is an XML attribute type or ``"enumeration"`` (with the
    allowed tokens in ``enumeration``); ``default_kind`` is one of
    ``#REQUIRED``, ``#IMPLIED``, ``#FIXED``, or ``"default"``.
    """

    element: str
    name: str
    kind: str
    enumeration: tuple[str, ...] = ()
    default_kind: str = "#IMPLIED"
    default_value: str | None = None


@dataclass
class ElementDecl:
    """An ``<!ELEMENT>`` declaration with its compiled content model."""

    name: str
    model: ContentModel
    attributes: dict[str, AttributeDecl] = field(default_factory=dict)


class DTD:
    """A parsed DTD: element declarations and general entities."""

    def __init__(self) -> None:
        self.elements: dict[str, ElementDecl] = {}
        self.general_entities: dict[str, str] = {}
        # The internal-subset text this DTD was parsed from, kept so a
        # bundled CMH can round-trip through ``.mhx`` containers; None
        # for DTDs assembled programmatically.
        self.source: str | None = None

    @property
    def element_names(self) -> frozenset[str]:
        """All declared element names."""
        return frozenset(self.elements)

    def declared_children(self, name: str) -> frozenset[str]:
        """Element names the model of ``name`` can contain directly."""
        decl = self.elements.get(name)
        if decl is None:
            return frozenset()
        model = decl.model
        if model.kind == "mixed":
            return model.mixed_names
        if model.kind == "children" and model.tree is not None:
            names: set[str] = set()
            stack = [model.tree]
            while stack:
                node = stack.pop()
                if node.kind == "name" and node.value:
                    names.add(node.value)
                stack.extend(node.children)
            return frozenset(names)
        return frozenset()

    def reachable_from(self, root: str) -> frozenset[str]:
        """Element names reachable from ``root`` through content models."""
        seen: set[str] = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.declared_children(name))
        return frozenset(seen & set(self.elements))


# --------------------------------------------------------------------------
# DTD parsing
# --------------------------------------------------------------------------


class _DTDScanner:
    """Tokenizer over a DTD internal subset."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        self.skip_insignificant()
        return self.pos >= len(self.text)

    def skip_insignificant(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    raise DTDError("unterminated comment in DTD")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end == -1:
                    raise DTDError("unterminated PI in DTD")
                self.pos = end + 2
            elif char == "%":
                # Parameter entities are out of scope: skip the reference.
                end = self.text.find(";", self.pos)
                if end == -1:
                    raise DTDError("unterminated parameter entity reference")
                self.pos = end + 1
            else:
                return

    def expect(self, literal: str) -> None:
        self.skip_insignificant()
        if not self.text.startswith(literal, self.pos):
            context = self.text[self.pos:self.pos + 20]
            raise DTDError(f"expected {literal!r} in DTD near {context!r}")
        self.pos += len(literal)

    def read_name(self) -> str:
        self.skip_insignificant()
        start = self.pos
        while (self.pos < len(self.text)
               and self.text[self.pos] not in " \t\r\n>()|,?*+\"'"):
            self.pos += 1
        if self.pos == start:
            context = self.text[self.pos:self.pos + 20]
            raise DTDError(f"expected a name in DTD near {context!r}")
        return self.text[start:self.pos]

    def read_quoted(self) -> str:
        self.skip_insignificant()
        if self.pos >= len(self.text) or self.text[self.pos] not in "\"'":
            raise DTDError("expected quoted literal in DTD")
        quote = self.text[self.pos]
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end == -1:
            raise DTDError("unterminated quoted literal in DTD")
        value = self.text[self.pos:end]
        self.pos = end + 1
        return value

    def peek_char(self) -> str:
        self.skip_insignificant()
        return self.text[self.pos] if self.pos < len(self.text) else ""


def parse_dtd(subset: str) -> DTD:
    """Parse a DTD internal subset into a :class:`DTD`."""
    dtd = DTD()
    dtd.source = subset
    scanner = _DTDScanner(subset)
    while not scanner.at_end():
        if scanner.text.startswith("<!ELEMENT", scanner.pos):
            scanner.pos += len("<!ELEMENT")
            _parse_element_decl(scanner, dtd)
        elif scanner.text.startswith("<!ATTLIST", scanner.pos):
            scanner.pos += len("<!ATTLIST")
            _parse_attlist_decl(scanner, dtd)
        elif scanner.text.startswith("<!ENTITY", scanner.pos):
            scanner.pos += len("<!ENTITY")
            _parse_entity_decl(scanner, dtd)
        elif scanner.text.startswith("<!NOTATION", scanner.pos):
            end = scanner.text.find(">", scanner.pos)
            if end == -1:
                raise DTDError("unterminated NOTATION declaration")
            scanner.pos = end + 1
        else:
            context = scanner.text[scanner.pos:scanner.pos + 20]
            raise DTDError(f"unrecognized DTD declaration near {context!r}")
    return dtd


def _parse_element_decl(scanner: _DTDScanner, dtd: DTD) -> None:
    name = scanner.read_name()
    model = _parse_content_model(scanner)
    scanner.expect(">")
    if name in dtd.elements:
        raise DTDError(f"duplicate <!ELEMENT {name}> declaration")
    dtd.elements[name] = ElementDecl(name, model)


def _parse_content_model(scanner: _DTDScanner) -> ContentModel:
    scanner.skip_insignificant()
    if scanner.text.startswith("EMPTY", scanner.pos):
        scanner.pos += 5
        return ContentModel("EMPTY")
    if scanner.text.startswith("ANY", scanner.pos):
        scanner.pos += 3
        return ContentModel("ANY")
    scanner.expect("(")
    scanner.skip_insignificant()
    if scanner.text.startswith("#PCDATA", scanner.pos):
        scanner.pos += len("#PCDATA")
        names: set[str] = set()
        while True:
            scanner.skip_insignificant()
            if scanner.peek_char() == "|":
                scanner.expect("|")
                names.add(scanner.read_name())
            else:
                break
        scanner.expect(")")
        if scanner.peek_char() == "*":
            scanner.pos += 1
        elif names:
            raise DTDError("mixed content with names requires a trailing '*'")
        return ContentModel("mixed", mixed_names=frozenset(names))
    tree = _parse_group_body(scanner)
    return ContentModel("children", tree=tree)


def _parse_group_body(scanner: _DTDScanner) -> ModelNode:
    """Parse the body of a group whose '(' is already consumed."""
    items = [_parse_cp(scanner)]
    scanner.skip_insignificant()
    separator = scanner.peek_char()
    if separator not in "|,)":
        raise DTDError(f"expected '|', ',' or ')' in content model, "
                       f"found {separator!r}")
    while scanner.peek_char() == separator and separator != ")":
        scanner.expect(separator)
        items.append(_parse_cp(scanner))
        scanner.skip_insignificant()
    scanner.expect(")")
    if len(items) == 1:
        node = items[0]
    else:
        kind = "choice" if separator == "|" else "seq"
        node = ModelNode(kind, children=tuple(items))
    return _apply_occurrence(scanner, node)


def _parse_cp(scanner: _DTDScanner) -> ModelNode:
    scanner.skip_insignificant()
    if scanner.peek_char() == "(":
        scanner.expect("(")
        return _parse_group_body(scanner)
    name = scanner.read_name()
    return _apply_occurrence(scanner, ModelNode("name", value=name))


def _apply_occurrence(scanner: _DTDScanner, node: ModelNode) -> ModelNode:
    char = scanner.text[scanner.pos] if scanner.pos < len(scanner.text) else ""
    if char == "?":
        scanner.pos += 1
        return ModelNode("opt", children=(node,))
    if char == "*":
        scanner.pos += 1
        return ModelNode("star", children=(node,))
    if char == "+":
        scanner.pos += 1
        return ModelNode("plus", children=(node,))
    return node


def _parse_attlist_decl(scanner: _DTDScanner, dtd: DTD) -> None:
    element_name = scanner.read_name()
    while True:
        scanner.skip_insignificant()
        if scanner.peek_char() == ">":
            scanner.expect(">")
            break
        attr_name = scanner.read_name()
        scanner.skip_insignificant()
        enumeration: tuple[str, ...] = ()
        if scanner.peek_char() == "(":
            scanner.expect("(")
            tokens = [scanner.read_name()]
            while scanner.peek_char() == "|":
                scanner.expect("|")
                tokens.append(scanner.read_name())
            scanner.expect(")")
            kind = "enumeration"
            enumeration = tuple(tokens)
        else:
            kind = scanner.read_name()
            if kind not in ATTRIBUTE_TYPES:
                raise DTDError(f"unknown attribute type {kind!r} for "
                               f"'{element_name}/@{attr_name}'")
            if kind == "NOTATION":
                scanner.expect("(")
                while scanner.peek_char() != ")":
                    scanner.read_name()
                    if scanner.peek_char() == "|":
                        scanner.expect("|")
                scanner.expect(")")
        scanner.skip_insignificant()
        default_kind = "#IMPLIED"
        default_value: str | None = None
        if scanner.peek_char() == "#":
            default_kind = scanner.read_name()
            if default_kind not in ("#REQUIRED", "#IMPLIED", "#FIXED"):
                raise DTDError(f"unknown attribute default {default_kind!r}")
            if default_kind == "#FIXED":
                default_value = scanner.read_quoted()
        elif scanner.peek_char() in "\"'":
            default_kind = "default"
            default_value = scanner.read_quoted()
        decl = AttributeDecl(element_name, attr_name, kind, enumeration,
                             default_kind, default_value)
        element = dtd.elements.get(element_name)
        if element is None:
            # ATTLIST may precede ELEMENT; create a permissive placeholder.
            element = ElementDecl(element_name, ContentModel("ANY"))
            dtd.elements[element_name] = element
        element.attributes.setdefault(attr_name, decl)


def _parse_entity_decl(scanner: _DTDScanner, dtd: DTD) -> None:
    scanner.skip_insignificant()
    if scanner.peek_char() == "%":
        # Parameter entity: consume and ignore (out of scope).
        scanner.expect("%")
        scanner.read_name()
        scanner.read_quoted()
        scanner.expect(">")
        return
    name = scanner.read_name()
    scanner.skip_insignificant()
    if (scanner.text.startswith("SYSTEM", scanner.pos)
            or scanner.text.startswith("PUBLIC", scanner.pos)):
        keyword = scanner.read_name()
        scanner.read_quoted()
        if keyword == "PUBLIC":
            scanner.read_quoted()
        scanner.expect(">")
        return  # external entities are recorded as absent
    value = scanner.read_quoted()
    scanner.expect(">")
    dtd.general_entities.setdefault(name, value)
