"""Entity and character-reference handling for the XML parser.

Supports the five predefined XML entities, decimal/hexadecimal character
references, and internal general entities declared in a DTD internal
subset.  Entity values are expanded recursively with cycle detection, as
required for well-formedness (WFC: No Recursion).
"""

from __future__ import annotations

from repro.errors import MarkupError

PREDEFINED = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


def decode_char_reference(body: str, line: int | None = None,
                          column: int | None = None) -> str:
    """Decode the body of a ``&#...;`` character reference.

    ``body`` excludes the ``&#`` prefix and the ``;`` suffix, e.g.
    ``"x2014"`` or ``"955"``.
    """
    try:
        if body.startswith(("x", "X")):
            code = int(body[1:], 16)
        else:
            code = int(body, 10)
    except ValueError:
        raise MarkupError(f"malformed character reference '&#{body};'",
                          line, column) from None
    if not _is_xml_char(code):
        raise MarkupError(
            f"character reference '&#{body};' is not a legal XML character",
            line, column)
    return chr(code)


def _is_xml_char(code: int) -> bool:
    """True when the code point is allowed by the XML 1.0 Char production."""
    return (code in (0x9, 0xA, 0xD)
            or 0x20 <= code <= 0xD7FF
            or 0xE000 <= code <= 0xFFFD
            or 0x10000 <= code <= 0x10FFFF)


class EntityTable:
    """General entities visible while parsing one document."""

    def __init__(self) -> None:
        self._general: dict[str, str] = {}

    def declare(self, name: str, value: str) -> None:
        """Declare an internal general entity.

        Per XML, the *first* declaration of an entity binds; later ones
        are ignored.
        """
        self._general.setdefault(name, value)

    def resolve(self, name: str, line: int | None = None,
                column: int | None = None,
                _stack: tuple[str, ...] = ()) -> str:
        """Fully expand entity ``name`` to character data."""
        if name in PREDEFINED:
            return PREDEFINED[name]
        if name not in self._general:
            raise MarkupError(f"reference to undeclared entity '&{name};'",
                              line, column)
        if name in _stack:
            chain = " -> ".join(_stack + (name,))
            raise MarkupError(f"recursive entity reference: {chain}",
                              line, column)
        return self._expand(self._general[name], line, column,
                            _stack + (name,))

    def _expand(self, value: str, line: int | None, column: int | None,
                stack: tuple[str, ...]) -> str:
        """Expand references appearing inside an entity replacement text."""
        out: list[str] = []
        index = 0
        while index < len(value):
            char = value[index]
            if char != "&":
                out.append(char)
                index += 1
                continue
            semi = value.find(";", index)
            if semi == -1:
                raise MarkupError("unterminated entity reference inside "
                                  "entity value", line, column)
            body = value[index + 1:semi]
            if body.startswith("#"):
                out.append(decode_char_reference(body[1:], line, column))
            else:
                out.append(self.resolve(body, line, column, stack))
            index = semi + 1
        return "".join(out)
