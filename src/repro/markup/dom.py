"""A lightweight mutable DOM for document-centric XML.

The node classes mirror the W3C DOM Level 1 node types actually needed
by the paper's machinery: :class:`Document`, :class:`Element`,
:class:`Text`, :class:`Comment`, :class:`ProcessingInstruction`, and
:class:`Attr`.  Compared to the stdlib's minidom this DOM is:

* **offset-aware** — the parser records source line/column on nodes,
  and the CMH layer annotates text nodes with character offsets into
  the shared base text;
* **order-aware** — ``document_order()`` yields a stable preorder
  position used by the KyGODDAG order (paper Definition 3);
* **mutation-friendly** — the baselines (fragmentation/milestones) and
  the XQuery element constructors build documents programmatically.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional


class Node:
    """Base class of all DOM nodes.

    Attributes
    ----------
    parent:
        The parent node (``None`` for a detached node or a document).
    line, column:
        1-based source position when produced by the parser, else
        ``None``.
    """

    __slots__ = ("parent", "line", "column")

    def __init__(self) -> None:
        self.parent: Optional[ParentNode] = None
        self.line: int | None = None
        self.column: int | None = None

    # -- tree navigation -------------------------------------------------

    @property
    def owner_document(self) -> Document | None:
        """The :class:`Document` this node belongs to, if attached."""
        node: Node | None = self
        while node is not None and not isinstance(node, Document):
            node = node.parent
        return node

    def ancestors(self) -> Iterator[ParentNode]:
        """Yield ancestors from the parent up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root_element(self) -> Element | None:
        """The outermost :class:`Element` ancestor-or-self, if any."""
        candidate = self if isinstance(self, Element) else None
        for ancestor in self.ancestors():
            if isinstance(ancestor, Element):
                candidate = ancestor
        return candidate

    @property
    def following_sibling_nodes(self) -> list[Node]:
        """Siblings after this node in document order."""
        if self.parent is None:
            return []
        siblings = self.parent.children
        index = _index_of(siblings, self)
        return siblings[index + 1:]

    @property
    def preceding_sibling_nodes(self) -> list[Node]:
        """Siblings before this node, in document order."""
        if self.parent is None:
            return []
        siblings = self.parent.children
        index = _index_of(siblings, self)
        return siblings[:index]

    # -- content ---------------------------------------------------------

    def text_content(self) -> str:
        """The string value: concatenated descendant text."""
        raise NotImplementedError

    def clone(self) -> "Node":
        """A deep copy of this node, detached from any parent.

        Text spans (``start``/``end``) and source positions survive the
        copy, so a cloned, aligned hierarchy needs no re-alignment —
        the copy-on-write fork path of the document store.
        """
        raise NotImplementedError

    def detach(self) -> None:
        """Remove this node from its parent, if attached."""
        if self.parent is not None:
            self.parent.remove(self)


class ParentNode(Node):
    """A node that can hold children (document or element)."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    # -- mutation ---------------------------------------------------------

    def append(self, child: Node) -> Node:
        """Append ``child``, reparenting it; returns the child."""
        child.detach()
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: Node) -> Node:
        """Insert ``child`` at ``index``, reparenting it."""
        child.detach()
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove(self, child: Node) -> Node:
        """Detach ``child`` from this node; returns the child."""
        index = _index_of(self.children, child)
        del self.children[index]
        child.parent = None
        return child

    def replace(self, old: Node, new: Node) -> Node:
        """Replace child ``old`` with ``new``; returns ``old``."""
        index = _index_of(self.children, old)
        new.detach()
        new.parent = self
        self.children[index] = new
        old.parent = None
        return old

    # -- traversal ---------------------------------------------------------

    def iter(self) -> Iterator[Node]:
        """Preorder traversal of self and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, ParentNode):
                yield from child.iter()
            else:
                yield child

    def iter_elements(self, name: str | None = None) -> Iterator[Element]:
        """Preorder traversal of descendant elements.

        When ``name`` is given, only elements with that tag are yielded.
        """
        for node in self.iter():
            if isinstance(node, Element) and node is not self:
                if name is None or node.name == name:
                    yield node

    def iter_text(self) -> Iterator[Text]:
        """Preorder traversal of descendant text nodes."""
        for node in self.iter():
            if isinstance(node, Text):
                yield node

    def text_content(self) -> str:
        return "".join(child.text_content() for child in self.children)

    def normalize(self) -> None:
        """Merge adjacent text node children, recursively; drop empties."""
        merged: list[Node] = []
        for child in self.children:
            if (isinstance(child, Text) and merged
                    and isinstance(merged[-1], Text)):
                merged[-1].data += child.data
                child.parent = None
            elif isinstance(child, Text) and child.data == "":
                child.parent = None
            else:
                merged.append(child)
                if isinstance(child, ParentNode):
                    child.normalize()
        self.children = merged

    def _clone_children_into(self, copy: "ParentNode") -> None:
        for child in self.children:
            copy.append(child.clone())


class Document(ParentNode):
    """An XML document: at most one element child plus comments/PIs."""

    __slots__ = ("doctype_name", "dtd")

    def __init__(self) -> None:
        super().__init__()
        self.doctype_name: str | None = None
        self.dtd = None  # populated by the parser when a DTD is present

    def clone(self) -> "Document":
        copy = Document()
        copy.doctype_name = self.doctype_name
        copy.dtd = self.dtd  # parsed DTDs are immutable; share them
        self._clone_children_into(copy)
        return copy

    @property
    def root(self) -> Element:
        """The document element.

        Raises
        ------
        ValueError
            If the document has no element child (an empty or
            comment-only document).
        """
        for child in self.children:
            if isinstance(child, Element):
                return child
        raise ValueError("document has no root element")

    def document_order(self) -> dict[int, int]:
        """Map ``id(node)`` to its preorder position, including attributes.

        Attributes order immediately after their owner element, in
        declaration order, matching XPath document order.
        """
        order: dict[int, int] = {}
        counter = 0
        for node in self.iter():
            order[id(node)] = counter
            counter += 1
            if isinstance(node, Element):
                for attr in node.attribute_nodes:
                    order[id(attr)] = counter
                    counter += 1
        return order


class Element(ParentNode):
    """An XML element with ordered attributes and children."""

    __slots__ = ("name", "attributes", "_attr_nodes")

    def __init__(self, name: str,
                 attributes: dict[str, str] | None = None) -> None:
        super().__init__()
        self.name = name
        self.attributes: dict[str, str] = dict(attributes or {})
        self._attr_nodes: dict[str, Attr] | None = None

    # -- attributes --------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """The value of attribute ``name``, or ``default``."""
        return self.attributes.get(name, default)

    def set(self, name: str, value: str) -> None:
        """Set attribute ``name`` to ``value``."""
        self.attributes[name] = value
        self._attr_nodes = None

    def delete_attribute(self, name: str) -> None:
        """Remove attribute ``name`` if present."""
        self.attributes.pop(name, None)
        self._attr_nodes = None

    @property
    def attribute_nodes(self) -> list[Attr]:
        """Attribute nodes in declaration order (lazily materialized)."""
        if self._attr_nodes is None or set(self._attr_nodes) != set(
                self.attributes):
            self._attr_nodes = {
                name: Attr(name, value, self)
                for name, value in self.attributes.items()
            }
        # Refresh values in case the dict was mutated in place.
        for name, attr in self._attr_nodes.items():
            attr.value = self.attributes[name]
        return list(self._attr_nodes.values())

    def clone(self) -> "Element":
        copy = Element(self.name, self.attributes)
        copy.line, copy.column = self.line, self.column
        self._clone_children_into(copy)
        return copy

    # -- convenience --------------------------------------------------------

    @property
    def prefix(self) -> str | None:
        """The namespace prefix part of a prefixed name, or ``None``."""
        head, sep, _tail = self.name.partition(":")
        return head if sep else None

    @property
    def local_name(self) -> str:
        """The local part of the (possibly prefixed) element name."""
        _head, sep, tail = self.name.partition(":")
        return tail if sep else self.name

    def find(self, name: str) -> Element | None:
        """The first descendant element with tag ``name``, if any."""
        return next(self.iter_elements(name), None)

    def findall(self, name: str) -> list[Element]:
        """All descendant elements with tag ``name``, in document order."""
        return list(self.iter_elements(name))

    def child_elements(self) -> list[Element]:
        """Direct element children, in order."""
        return [c for c in self.children if isinstance(c, Element)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.name} attrs={self.attributes}>"


class Text(Node):
    """A run of character data.

    ``start``/``end`` are filled in by the CMH alignment layer with the
    node's character span in the shared base text.
    """

    __slots__ = ("data", "start", "end")

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data
        self.start: int | None = None
        self.end: int | None = None

    def text_content(self) -> str:
        return self.data

    def clone(self) -> "Text":
        copy = Text(self.data)
        copy.line, copy.column = self.line, self.column
        copy.start, copy.end = self.start, self.end
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Text {self.data!r}>"


class Comment(Node):
    """An XML comment; carries no text value for queries."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def text_content(self) -> str:
        return ""

    def clone(self) -> "Comment":
        copy = Comment(self.data)
        copy.line, copy.column = self.line, self.column
        return copy


class ProcessingInstruction(Node):
    """A processing instruction ``<?target data?>``."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str) -> None:
        super().__init__()
        self.target = target
        self.data = data

    def text_content(self) -> str:
        return ""

    def clone(self) -> "ProcessingInstruction":
        copy = ProcessingInstruction(self.target, self.data)
        copy.line, copy.column = self.line, self.column
        return copy


class Attr(Node):
    """An attribute node, materialized on demand from an element."""

    __slots__ = ("name", "value", "owner")

    def __init__(self, name: str, value: str, owner: Element) -> None:
        super().__init__()
        self.name = name
        self.value = value
        self.owner = owner
        self.parent = owner

    def text_content(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Attr {self.name}={self.value!r}>"


def _index_of(children: list[Node], child: Node) -> int:
    """Index of ``child`` in ``children`` by identity.

    ``list.index`` uses ``==`` which is identity for these classes, but
    an explicit identity scan keeps the contract obvious.
    """
    for index, candidate in enumerate(children):
        if candidate is child:
            return index
    raise ValueError("node is not a child of this parent")
