"""DTD validation of DOM documents.

``validate(document, dtd)`` checks the constraints that matter for
concurrent markup hierarchies:

* every element is declared;
* each element's child sequence satisfies its content model;
* character data appears only where the model allows it (whitespace is
  tolerated in element content, as XML validators conventionally do for
  "ignorable whitespace");
* attributes are declared, required attributes are present, enumerated
  and ``#FIXED`` values are honored, defaults are applied;
* ``ID`` values are unique and ``IDREF``/``IDREFS`` values resolve.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.markup import dom
from repro.markup.dtd import DTD, AttributeDecl
from repro.markup.parser import is_valid_name


def validate(document: dom.Document, dtd: DTD | None = None,
             apply_defaults: bool = True) -> None:
    """Validate ``document`` against ``dtd``.

    Uses ``document.dtd`` when ``dtd`` is not given.  Raises
    :class:`~repro.errors.ValidationError` on the first violation.
    """
    if dtd is None:
        dtd = document.dtd
    if dtd is None:
        raise ValidationError("no DTD available to validate against")
    ids: set[str] = set()
    idrefs: list[tuple[str, dom.Element]] = []
    root = document.root
    if (document.doctype_name is not None
            and root.name != document.doctype_name):
        raise ValidationError(
            f"root element '{root.name}' does not match DOCTYPE "
            f"'{document.doctype_name}'")
    _validate_element(root, dtd, ids, idrefs, apply_defaults)
    for value, element in idrefs:
        for token in value.split():
            if token not in ids:
                raise ValidationError(
                    f"IDREF '{token}' on element '{element.name}' does not "
                    f"match any ID in the document")


def _validate_element(element: dom.Element, dtd: DTD, ids: set[str],
                      idrefs: list[tuple[str, dom.Element]],
                      apply_defaults: bool) -> None:
    decl = dtd.elements.get(element.name)
    if decl is None:
        raise ValidationError(f"element '{element.name}' is not declared")
    model = decl.model
    child_names: list[str] = []
    for child in element.children:
        if isinstance(child, dom.Element):
            child_names.append(child.name)
        elif isinstance(child, dom.Text):
            if child.data.strip() and not model.allows_text():
                raise ValidationError(
                    f"character data is not allowed in element "
                    f"'{element.name}' ({model.to_source()})")
    if not model.matches(child_names):
        sequence = ", ".join(child_names) or "(no children)"
        raise ValidationError(
            f"children of '{element.name}' do not match its content model "
            f"{model.to_source()}: {sequence}")
    _validate_attributes(element, decl.attributes, ids, idrefs,
                         apply_defaults)
    for child in element.children:
        if isinstance(child, dom.Element):
            _validate_element(child, dtd, ids, idrefs, apply_defaults)


def _validate_attributes(element: dom.Element,
                         declared: dict[str, AttributeDecl],
                         ids: set[str],
                         idrefs: list[tuple[str, dom.Element]],
                         apply_defaults: bool) -> None:
    for name in element.attributes:
        if name not in declared and not name.startswith("xml"):
            raise ValidationError(
                f"attribute '{name}' is not declared on element "
                f"'{element.name}'")
    for name, decl in declared.items():
        value = element.get(name)
        if value is None:
            if decl.default_kind == "#REQUIRED":
                raise ValidationError(
                    f"required attribute '{name}' is missing on element "
                    f"'{element.name}'")
            if decl.default_value is not None and apply_defaults:
                element.set(name, decl.default_value)
            continue
        if decl.default_kind == "#FIXED" and value != decl.default_value:
            raise ValidationError(
                f"attribute '{name}' on '{element.name}' must have the "
                f"fixed value {decl.default_value!r}, found {value!r}")
        if decl.kind == "enumeration" and value not in decl.enumeration:
            allowed = "|".join(decl.enumeration)
            raise ValidationError(
                f"attribute '{name}' on '{element.name}' must be one of "
                f"({allowed}), found {value!r}")
        if decl.kind == "ID":
            if not is_valid_name(value):
                raise ValidationError(
                    f"ID value {value!r} on '{element.name}' is not a "
                    f"valid XML name")
            if value in ids:
                raise ValidationError(f"duplicate ID value {value!r}")
            ids.add(value)
        elif decl.kind in ("IDREF", "IDREFS"):
            idrefs.append((value, element))
        elif decl.kind in ("NMTOKEN", "NMTOKENS"):
            for token in value.split():
                if not all(_is_nmtoken_char(c) for c in token):
                    raise ValidationError(
                        f"value {token!r} of '{name}' on '{element.name}' "
                        f"is not a valid NMTOKEN")


def _is_nmtoken_char(char: str) -> bool:
    return char.isalnum() or char in ":_-.·" or ord(char) > 0x7F
