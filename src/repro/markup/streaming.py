"""Streaming bulk ingest: a DOM-free KyGODDAG table builder.

The canonical ingest path (``MultihierarchicalDocument.from_xml`` →
``Engine`` → ``save_engine``) materializes a full DOM per hierarchy,
re-walks it into ``GElement``/``GText`` hierarchy nodes, and only then
flattens those into the array tables that ``.mhxb`` actually stores.
For bulk ingest all three intermediate object graphs are waste: the
tables, the partition boundary multiset, and the SpanIndex columns are
each a pure function of the *event stream* (start-tag / end-tag / text
/ comment / PI in document order).

:class:`StreamingBuilder` therefore consumes iterparse-style events and
writes node tables directly:

* **preorder is event order** — a start/text/comment/PI event receives
  the next sequential table index, and at an element's end event its
  ``subtree_end`` is simply ``counter - 1``;
* **order keys vectorize** — table rows always carry ``minor == 0``, so
  a hierarchy's packed Definition 3 keys are
  ``(1 << 61) | (rank << 45) | (arange(count) << 13)``;
* **partition boundaries are a Counter** — the multiset seeded with
  ``{0, len(text)}`` plus every node's start and end offset;
* **SpanIndex columns** reuse :func:`repro.store.mhxb._save_span_index`
  on the masked span rows, exactly as the DOM path does.

The output is **byte-identical** to ``save_engine`` on the same input
(``tests/test_streaming.py`` enforces this differentially), so loaders,
CRC verification, sharded stores, and the server need no new code: a
streamed ``.mhxb`` *is* a saved engine, and the DOM stays lazy behind
``Engine.from_mhxb``/``Engine.document``.

Tokenization is optimistic: a regex fast path handles the common shape
of document-centric XML (no DOCTYPE, CDATA, carriage returns, or
non-predefined entities) and raises the internal ``_FastPathMiss`` on
*anything* it is not bit-perfectly sure about, falling back to the
canonical :func:`repro.markup.parser.parse` so the error taxonomy —
``MarkupError`` with line/column, ``CMHError``, ``AlignmentError`` —
is exactly the DOM path's.  A failed ``add_hierarchy``/``add_layer``
never leaves a half-built table behind.

Standoff annotation layers (token/sentence/entity character spans from
NLP pipelines) enter through :meth:`StreamingBuilder.add_layer`, which
replays :class:`repro.cmh.spans.SpanSet` semantics as synthetic events.

See DESIGN.md §15 for the full design discussion.
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.cmh.document import _first_divergence
from repro.cmh.spans import Span, SpanSet
from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.index import _end_keys, _start_keys
from repro.errors import (AlignmentError, CMHError, GoddagError, MarkupError,
                          ReproError, StoreError)
from repro.markup import dom
from repro.markup.entities import PREDEFINED, decode_char_reference
from repro.markup.parser import parse
from repro.store.mhxb import (MHXB_FORMAT, MHXB_FORMAT_V1, _KIND_COMMENT,
                              _KIND_ELEMENT, _KIND_PI, _KIND_TEXT, _pack,
                              _save_span_index)
from repro.store.sharding import (CorpusStats, ShardStats, balanced_cuts,
                                  valid_cut_positions)

__all__ = ["StreamingBuilder", "stream_save"]


class _FastPathMiss(Exception):
    """Internal: the optimistic tokenizer met input it cannot replicate
    bit-perfectly; the caller re-runs through the canonical parser."""


# ASCII-only name/attribute shapes.  The canonical parser additionally
# accepts non-ASCII name characters (and the middle dot) — those miss
# the fast path and fall back, they are not rejected.
_XML_NAME = r"[A-Za-z_:][A-Za-z0-9_:.\-]*"
_NAME_RE = re.compile(_XML_NAME)
_END_RE = re.compile(rf"</({_XML_NAME})[ \t\r\n]*>")
_ATTR_RE = re.compile(
    rf"[ \t\r\n]+({_XML_NAME})[ \t\r\n]*=[ \t\r\n]*"
    r"(\"[^\"<&\t\r\n]*\"|'[^'<&\t\r\n]*')")
_TAG_CLOSE_RE = re.compile(r"[ \t\r\n]*(/?)>")
_WS = " \t\r\n"


def _decode_text(chunk: str) -> str:
    """Resolve predefined/character references in a raw text chunk.

    Misses on anything the canonical parser treats specially: carriage
    returns (line-ending normalization), the ``]]>`` ban, unterminated
    or non-predefined entity references.
    """
    if "\r" in chunk or "]]>" in chunk:
        raise _FastPathMiss
    if "&" not in chunk:
        return chunk
    parts: list[str] = []
    position = 0
    while True:
        amp = chunk.find("&", position)
        if amp < 0:
            parts.append(chunk[position:])
            return "".join(parts)
        parts.append(chunk[position:amp])
        semi = chunk.find(";", amp + 1)
        if semi < 0:
            raise _FastPathMiss
        body = chunk[amp + 1:semi]
        if body.startswith("#"):
            try:
                parts.append(decode_char_reference(body[1:]))
            except MarkupError:
                raise _FastPathMiss from None
        else:
            expansion = PREDEFINED.get(body)
            if expansion is None:
                raise _FastPathMiss
            parts.append(expansion)
        position = semi + 1


def _fast_pi(source: str, lt: int) -> tuple[str, str, int] | None:
    """Match a processing instruction at ``lt``; ``None`` to miss."""
    match = _NAME_RE.match(source, lt + 2)
    if match is None:
        return None
    target = match.group()
    if target.lower() == "xml":
        return None
    position = match.end()
    after_ws = position
    n = len(source)
    while after_ws < n and source[after_ws] in _WS:
        after_ws += 1
    if after_ws > position:
        close = source.find("?>", after_ws)
        if close < 0:
            return None
        return target, source[after_ws:close], close + 2
    if source.startswith("?>", position):
        return target, "", position + 2
    return None


def _fast_events(source: str) -> Iterator[tuple]:
    """Optimistic one-pass tokenizer over well-shaped XML.

    Yields ``("start", name, attrs-or-None)``, ``("end",)``,
    ``("text", data)``, ``("comment", data)``, ``("pi", target, data)``
    and the document-level ``("doc_comment", data)`` /
    ``("doc_pi", target, data)`` variants.  Raises ``_FastPathMiss``
    on any construct it cannot replicate bit-perfectly (DOCTYPE,
    CDATA, carriage returns, general entities, non-ASCII names,
    malformed markup) — events already yielded are always a prefix of
    the canonical parser's stream, so the caller can roll back and
    replay through :func:`repro.markup.parser.parse`.
    """
    if source.startswith("﻿"):
        source = source[1:]
    position = 0
    # The canonical scanner treats an EOF peek ("") as whitespace —
    # which the empty-slice substring test here replicates — so a bare
    # "<?xml" prefix also takes (and fails) the declaration branch.
    if source.startswith("<?xml") and source[5:6] in _WS:
        close = source.find("?>", 5)
        if close < 0:
            raise _FastPathMiss
        position = close + 2
    stack: list[str] = []
    started = False
    root_done = False
    n = len(source)
    while True:
        lt = source.find("<", position)
        if lt < 0:
            if stack or not started:
                raise _FastPathMiss
            if source[position:].strip(_WS):
                raise _FastPathMiss
            return
        if lt > position:
            chunk = source[position:lt]
            if stack:
                yield ("text", _decode_text(chunk))
            elif chunk.strip(_WS):
                raise _FastPathMiss
        position = lt
        following = source[lt + 1:lt + 2]
        if following == "/":
            if not stack:
                raise _FastPathMiss
            match = _END_RE.match(source, lt)
            if match is None or match.group(1) != stack[-1]:
                raise _FastPathMiss
            stack.pop()
            yield ("end",)
            if not stack:
                root_done = True
            position = match.end()
        elif following == "!":
            if not source.startswith("<!--", lt):
                raise _FastPathMiss  # DOCTYPE, CDATA, other declarations
            close = source.find("-->", lt + 4)
            if close < 0:
                raise _FastPathMiss
            data = source[lt + 4:close]
            if "--" in data:
                raise _FastPathMiss
            yield ("comment", data) if stack else ("doc_comment", data)
            position = close + 3
        elif following == "?":
            matched = _fast_pi(source, lt)
            if matched is None:
                raise _FastPathMiss
            target, data, position = matched
            yield ("pi", target, data) if stack else ("doc_pi", target, data)
        else:
            if not stack and root_done:
                raise _FastPathMiss  # content after the document element
            match = _NAME_RE.match(source, lt + 1)
            if match is None:
                raise _FastPathMiss
            name = match.group()
            cursor = match.end()
            attrs: dict[str, str] | None = None
            while True:
                close_match = _TAG_CLOSE_RE.match(source, cursor)
                if close_match is not None:
                    self_closing = close_match.group(1) == "/"
                    cursor = close_match.end()
                    break
                attr_match = _ATTR_RE.match(source, cursor)
                if attr_match is None or attr_match.end() > n:
                    raise _FastPathMiss
                attr_name = attr_match.group(1)
                if attrs is None:
                    attrs = {}
                elif attr_name in attrs:
                    raise _FastPathMiss  # duplicate attribute
                attrs[attr_name] = attr_match.group(2)[1:-1]
                cursor = attr_match.end()
            yield ("start", name, attrs)
            started = True
            if self_closing:
                yield ("end",)
                if not stack:
                    root_done = True
            else:
                stack.append(name)
            position = cursor


def _dom_events(document: dom.Document) -> Iterator[tuple]:
    """Replay a parsed DOM as the same event stream, iteratively."""
    for child in document.children:
        if isinstance(child, dom.Element):
            yield ("start", child.name, dict(child.attributes) or None)
            stack = [iter(child.children)]
            while stack:
                try:
                    node = next(stack[-1])
                except StopIteration:
                    stack.pop()
                    yield ("end",)
                    continue
                if isinstance(node, dom.Element):
                    yield ("start", node.name, dict(node.attributes) or None)
                    stack.append(iter(node.children))
                elif isinstance(node, dom.Text):
                    yield ("text", node.data)
                elif isinstance(node, dom.Comment):
                    yield ("comment", node.data)
                elif isinstance(node, dom.ProcessingInstruction):
                    yield ("pi", node.target, node.data)
        elif isinstance(child, dom.Comment):
            yield ("doc_comment", child.data)
        elif isinstance(child, dom.ProcessingInstruction):
            yield ("doc_pi", child.target, child.data)


def _span_events(text: str, spans: Sequence[Span],
                 root_name: str) -> list[tuple]:
    """Synthesize the event stream a ``SpanSet.to_document`` DOM would
    replay, without building it.  ``spans`` must be pre-sorted."""
    events: list[tuple] = [("start", root_name, None)]
    out = events.append
    stack: list[int] = [len(text)]  # open-element end offsets; root last
    cursor = 0

    def emit_text(target: int) -> int:
        nonlocal cursor
        while cursor < target:
            while stack[-1] <= cursor and len(stack) > 1:
                stack.pop()
                out(("end",))
            stop = min(target, stack[-1])
            if stop > cursor:
                out(("text", text[cursor:stop]))
                cursor = stop
            elif len(stack) > 1:
                stack.pop()
                out(("end",))
            else:
                break
        while stack[-1] <= cursor and len(stack) > 1:
            stack.pop()
            out(("end",))
        return cursor

    for span in spans:
        emit_text(span.start)
        while stack[-1] <= span.start and len(stack) > 1:
            stack.pop()
            out(("end",))
        parent_end = stack[-1]
        if span.end > parent_end:
            raise CMHError(
                f"span <{span.name}> [{span.start}, {span.end}) escapes "
                f"its enclosing element ending at {parent_end}")
        out(("start", span.name, span.attributes_dict or None))
        stack.append(span.end)
    emit_text(len(text))
    while len(stack) > 1:
        stack.pop()
        out(("end",))
    out(("end",))  # close the root
    return events


class _HierarchyTables:
    """Flat per-hierarchy node tables in ``.mhxb`` row order."""

    __slots__ = ("name", "kinds", "name_ids", "starts", "ends", "parents",
                 "subtree_ends", "attrs", "comments", "pis", "prolog",
                 "epilog", "root_attrs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.kinds: list[int] = []
        self.name_ids: list[int] = []
        self.starts: list[int] = []
        self.ends: list[int] = []
        self.parents: list[int] = []
        self.subtree_ends: list[int] = []
        self.attrs: list[list] = []
        self.comments: list[list] = []
        self.pis: list[list] = []
        self.prolog: list[list] = []
        self.epilog: list[list] = []
        self.root_attrs: dict[str, str] = {}


class StreamingBuilder:
    """One-pass, DOM-free builder of ``.mhxb`` engine state.

    Feed it XML encodings (:meth:`add_hierarchy`) and/or standoff span
    layers (:meth:`add_layer`) over one shared base text, then
    :meth:`save` — the file is byte-identical to the DOM path's
    ``save_engine`` output, so ``Engine.from_mhxb`` loads it with the
    DOM still lazy.  :meth:`save_shards` cuts the same tables at
    fragment boundaries valid in every hierarchy, mirroring
    ``shard_document`` file-for-file.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        self._tables: dict[str, _HierarchyTables] = {}
        self._root_name: str | None = None

    @property
    def hierarchy_names(self) -> list[str]:
        return list(self._tables)

    @property
    def root_name(self) -> str:
        if self._root_name is None:
            raise CMHError("document has no hierarchies")
        return self._root_name

    def _intern(self, name: str) -> int:
        position = self._name_ids.get(name)
        if position is None:
            position = self._name_ids[name] = len(self._names)
            self._names.append(name)
        return position

    # ------------------------------------------------------------------
    # ingestion

    def add_hierarchy(self, name: str, source: str) -> None:
        """Tokenize one XML encoding straight into node tables.

        The optimistic tokenizer handles common document-centric XML;
        anything else replays through the canonical parser, so errors
        carry the DOM path's exact taxonomy and messages.  On failure
        the builder is left exactly as before the call.
        """
        mark = len(self._names)
        try:
            self._consume(name, _fast_events(source))
            return
        except _FastPathMiss:
            self._unintern(mark)
        except CMHError:
            # The DOM path fully parses before aligning, so a later
            # well-formedness error outranks the CMH/alignment one.
            self._unintern(mark)
            parse(source)
            raise
        document = parse(source)
        try:
            self._consume(name, _dom_events(document))
        except CMHError:
            self._unintern(mark)
            raise

    def add_layer(self, name: str, spans: Iterable) -> None:
        """Register a standoff annotation layer as a new hierarchy.

        ``spans`` are :class:`repro.cmh.spans.Span` objects or
        ``(start, end, name[, attributes[, depth_hint]])`` tuples of
        character offsets into the base text — the shape NLP pipelines
        emit for token/sentence/entity layers.  Semantics (ordering,
        overlap rejection, nesting) are exactly
        ``SpanSet(text, spans).to_document(root_name)`` followed by
        ``add_hierarchy``, without building the DOM.
        """
        span_set = SpanSet(self.text, [_as_span(span) for span in spans])
        events = _span_events(self.text, span_set.sorted_spans(),
                              self.root_name)
        mark = len(self._names)
        try:
            self._consume(name, iter(events))
        except CMHError:
            self._unintern(mark)
            raise

    def _unintern(self, mark: int) -> None:
        for name in self._names[mark:]:
            del self._name_ids[name]
        del self._names[mark:]

    def _consume(self, name: str, events: Iterator[tuple]) -> None:
        if name in self._tables:
            raise CMHError(f"duplicate hierarchy name '{name}'")
        text = self.text
        length = len(text)
        intern = self._intern
        tables = _HierarchyTables(name)
        kinds = tables.kinds
        name_ids = tables.name_ids
        starts = tables.starts
        ends = tables.ends
        parents = tables.parents
        subtrees = tables.subtree_ends
        cursor = 0
        counter = 0
        stack: list[int] = []
        root_seen = False
        root_name = self._root_name
        for event in events:
            kind = event[0]
            if kind == "text":
                data = event[1]
                end = cursor + len(data)
                if text[cursor:end] != data:
                    offset = _first_divergence(text, cursor, data)
                    raise AlignmentError(
                        f"hierarchy '{name}' diverges from the base text "
                        f"at offset {offset}: expected "
                        f"{text[offset:offset + 20]!r}, encoding has "
                        f"{data[offset - cursor:offset - cursor + 20]!r}",
                        hierarchy=name, offset=offset)
                kinds.append(_KIND_TEXT)
                name_ids.append(-1)
                starts.append(cursor)
                ends.append(end)
                parents.append(stack[-1] if stack else -1)
                subtrees.append(counter)
                counter += 1
                cursor = end
            elif kind == "start":
                element_name, attrs = event[1], event[2]
                if not root_seen:
                    root_seen = True
                    if root_name is None:
                        root_name = element_name
                    elif element_name != root_name:
                        raise CMHError(
                            f"hierarchy '{name}' has root "
                            f"'{element_name}' but the document root is "
                            f"'{root_name}'")
                    if attrs:
                        tables.root_attrs = dict(attrs)
                    continue
                kinds.append(_KIND_ELEMENT)
                name_ids.append(intern(element_name))
                starts.append(cursor)
                ends.append(-1)
                parents.append(stack[-1] if stack else -1)
                subtrees.append(-1)
                if attrs:
                    tables.attrs.append([counter, dict(attrs)])
                stack.append(counter)
                counter += 1
            elif kind == "end":
                if stack:
                    position = stack.pop()
                    ends[position] = cursor
                    subtrees[position] = counter - 1
                elif cursor != length:
                    raise AlignmentError(
                        f"hierarchy '{name}' covers only the first "
                        f"{cursor} of {length} characters of the base "
                        f"text", hierarchy=name, offset=cursor)
            elif kind == "comment":
                kinds.append(_KIND_COMMENT)
                name_ids.append(-1)
                starts.append(cursor)
                ends.append(cursor)
                parents.append(stack[-1] if stack else -1)
                subtrees.append(counter)
                tables.comments.append([counter, event[1]])
                counter += 1
            elif kind == "pi":
                kinds.append(_KIND_PI)
                name_ids.append(intern(event[1]))
                starts.append(cursor)
                ends.append(cursor)
                parents.append(stack[-1] if stack else -1)
                subtrees.append(counter)
                tables.pis.append([counter, event[2]])
                counter += 1
            elif kind == "doc_comment":
                target_list = tables.epilog if root_seen else tables.prolog
                target_list.append(["comment", event[1]])
            else:  # "doc_pi"
                target_list = tables.epilog if root_seen else tables.prolog
                target_list.append(["pi", event[1], event[2]])
        self._root_name = root_name
        self._tables[name] = tables

    # ------------------------------------------------------------------
    # persistence

    def save(self, path: str | Path, *, durability: str = "off",
             format_version: int = 2) -> int:
        """Write the tables as a ``.mhxb`` container; returns its size.

        Array layout, header key order, permutations, partition
        multiset, and checksums match ``save_engine`` byte for byte.
        """
        if not self._tables:
            raise ReproError("cannot save an empty document to .mhxb")
        if len(self.text) >= (1 << 31):
            raise ReproError(
                "base text exceeds 2^31 characters; the packed "
                "span-index keys cannot represent it")
        if format_version not in (1, 2):
            raise ReproError(
                f"unknown .mhxb format version {format_version!r}")
        arrays: dict[str, np.ndarray] = {}
        hierarchy_meta: list[dict] = []
        # Seed the span index with the virtual root covering the text.
        sub_starts = [np.array([0], dtype=np.int64)]
        sub_ends = [np.array([len(self.text)], dtype=np.int64)]
        sub_ranks = [np.array([-1], dtype=np.int64)]
        sub_preorders = [np.array([-1], dtype=np.int64)]
        sub_subtrees = [np.array([-1], dtype=np.int64)]
        boundaries: Counter[int] = Counter({0: 1, len(self.text): 1})
        for rank, (name, tables) in enumerate(self._tables.items()):
            prefix = f"h{rank}"
            count = len(tables.kinds)
            if count > KyGoddag._PREORDER_LIMIT:
                raise GoddagError(
                    "document-order key overflow: rank/preorder/attribute "
                    f"position ({rank}, {KyGoddag._PREORDER_LIMIT}, 0) "
                    "exceeds the packed int64 layout (see DESIGN.md §1)")
            kinds = np.asarray(tables.kinds, dtype=np.int8)
            starts_arr = np.asarray(tables.starts, dtype=np.int64)
            ends_arr = np.asarray(tables.ends, dtype=np.int64)
            subtrees_arr = np.asarray(tables.subtree_ends, dtype=np.int64)
            arrays[f"{prefix}/kinds"] = kinds
            arrays[f"{prefix}/name_ids"] = np.asarray(tables.name_ids,
                                                      dtype=np.int64)
            arrays[f"{prefix}/starts"] = starts_arr
            arrays[f"{prefix}/ends"] = ends_arr
            arrays[f"{prefix}/parents"] = np.asarray(tables.parents,
                                                     dtype=np.int64)
            arrays[f"{prefix}/subtree_ends"] = subtrees_arr
            arrays[f"{prefix}/okeys"] = (
                (1 << 61) | (rank << 45)
                | (np.arange(count, dtype=np.int64) << 13))
            meta = {
                "name": name,
                "rank": rank,
                "count": count,
                "root_attrs": dict(tables.root_attrs),
                "attrs": tables.attrs,
                "comments": tables.comments,
                "pis": tables.pis,
                "prolog": tables.prolog,
                "epilog": tables.epilog,
            }
            span_mask = kinds <= _KIND_TEXT
            span_starts = starts_arr[span_mask]
            span_ends = ends_arr[span_mask]
            meta["span_count"] = int(len(span_starts))
            arrays[f"{prefix}/s_perm"] = np.argsort(
                _start_keys(span_starts, span_ends), kind="stable")
            arrays[f"{prefix}/e_perm"] = np.argsort(
                _end_keys(span_starts, span_ends), kind="stable")
            hierarchy_meta.append(meta)
            sub_starts.append(span_starts)
            sub_ends.append(span_ends)
            sub_ranks.append(np.full(len(span_starts), rank, dtype=np.int64))
            sub_preorders.append(np.nonzero(span_mask)[0].astype(np.int64))
            sub_subtrees.append(subtrees_arr[span_mask])
            boundaries.update(tables.starts)
            boundaries.update(tables.ends)
        _save_span_index(arrays, sub_starts, sub_ends, sub_ranks,
                         sub_preorders, sub_subtrees)
        offsets = sorted(boundaries)
        arrays["partition/offsets"] = np.array(offsets, dtype=np.int64)
        arrays["partition/counts"] = np.array(
            [boundaries[offset] for offset in offsets], dtype=np.int64)
        arrays["text"] = np.frombuffer(self.text.encode("utf-8"),
                                       dtype=np.uint8)
        header = {
            "format": MHXB_FORMAT if format_version == 2 else MHXB_FORMAT_V1,
            "root": self._root_name,
            "version": len(self._tables),
            "text_chars": len(self.text),
            "names": self._names,
            "hierarchies": hierarchy_meta,
            "dtds": None,
        }
        return _pack(path, header, arrays, durability=durability,
                     format_version=format_version)

    # ------------------------------------------------------------------
    # sharding

    def _element_span_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Pooled non-empty element spans, as ``_element_spans`` sees
        them — but read off the tables instead of walking a DOM."""
        span_starts: list[int] = []
        span_ends: list[int] = []
        for tables in self._tables.values():
            for kind, start, end in zip(tables.kinds, tables.starts,
                                        tables.ends):
                if kind == _KIND_ELEMENT and end > start:
                    span_starts.append(start)
                    span_ends.append(end)
        return (np.asarray(sorted(span_starts), dtype=np.int64),
                np.asarray(sorted(span_ends), dtype=np.int64))

    def shard_bounds(self, n_shards: int) -> list[tuple[int, int]]:
        """``[lo, hi)`` bounds replicating ``choose_cuts`` exactly."""
        if not self._tables:
            raise StoreError("cannot shard a document with no hierarchies")
        if n_shards < 1:
            raise StoreError(f"shard count must be >= 1, got {n_shards}")
        total = len(self.text)
        if n_shards == 1:
            cuts: list[int] = []
        else:
            starts, ends = self._element_span_columns()
            cuts = balanced_cuts(valid_cut_positions(starts, ends, total),
                                 total, n_shards)
        bounds = [0, *cuts, total]
        return list(zip(bounds, bounds[1:]))

    def _slice(self, lo: int, hi: int) -> "StreamingBuilder":
        """A new builder holding this one's tables cut to ``[lo, hi)``,
        row-for-row what ``shard_document`` would rebuild via DOM."""
        shard = StreamingBuilder(self.text[lo:hi])
        shard._root_name = self._root_name
        total = len(self.text)
        for name, tables in self._tables.items():
            out = _HierarchyTables(name)
            out.root_attrs = dict(tables.root_attrs)
            kinds = tables.kinds
            starts = tables.starts
            ends = tables.ends
            subtrees = tables.subtree_ends
            name_ids = tables.name_ids
            attrs_map = {position: value for position, value in tables.attrs}
            comments_map = {position: value
                            for position, value in tables.comments}
            pis_map = {position: value for position, value in tables.pis}
            count = len(kinds)

            def copy_range(first: int, last: int) -> None:
                base = len(out.kinds) - first
                for row in range(first, last + 1):
                    out.kinds.append(kinds[row])
                    kind = kinds[row]
                    if kind in (_KIND_ELEMENT, _KIND_PI):
                        out.name_ids.append(
                            shard._intern(self._names[name_ids[row]]))
                    else:
                        out.name_ids.append(-1)
                    out.starts.append(starts[row] - lo)
                    out.ends.append(ends[row] - lo)
                    out.parents.append(
                        -1 if row == first else tables.parents[row] + base)
                    out.subtree_ends.append(subtrees[row] + base)
                    new_row = row + base
                    if kind == _KIND_ELEMENT and row in attrs_map:
                        out.attrs.append([new_row, dict(attrs_map[row])])
                    elif kind == _KIND_COMMENT:
                        out.comments.append([new_row, comments_map[row]])
                    elif kind == _KIND_PI:
                        out.pis.append([new_row, pis_map[row]])

            row = 0
            while row < count:
                kind = kinds[row]
                start, end = starts[row], ends[row]
                if kind == _KIND_TEXT:
                    piece_lo = max(start, lo)
                    piece_hi = min(end, hi)
                    if piece_lo < piece_hi:
                        index = len(out.kinds)
                        out.kinds.append(_KIND_TEXT)
                        out.name_ids.append(-1)
                        out.starts.append(piece_lo - lo)
                        out.ends.append(piece_hi - lo)
                        out.parents.append(-1)
                        out.subtree_ends.append(index)
                    row += 1
                    continue
                last = subtrees[row]
                if start == end:
                    # zero-length node/subtree: owned by the shard whose
                    # half-open range contains its offset (the final
                    # shard also owns the text-end position)
                    if lo <= start < hi or (start == total and hi == total):
                        copy_range(row, last)
                    row = last + 1
                    continue
                if end <= lo or start >= hi:
                    row = last + 1
                    continue
                if start < lo or end > hi:
                    raise StoreError(
                        f"element <{self._names[name_ids[row]]}> spans "
                        f"[{start}, {end}) across the shard cut at "
                        f"[{lo}, {hi}) — cut selection must only produce "
                        "element-boundary positions")
                copy_range(row, last)
                row = last + 1
            shard._tables[name] = out
        return shard

    def save_shards(self, n_shards: int,
                    path_for: Callable[[int], str | Path], *,
                    durability: str = "off") -> CorpusStats:
        """Cut the tables into ``n_shards`` files, byte-identical to
        the ``shard_document`` → ``save_engine`` pipeline, and return
        the same :class:`CorpusStats`."""
        bounds = self.shard_bounds(n_shards)
        shard_stats: list[ShardStats] = []
        name_hierarchies: dict[str, set[str]] = {}
        for index, (lo, hi) in enumerate(bounds):
            shard = self._slice(lo, hi)
            shard.save(path_for(index), durability=durability)
            cards: dict[str, int] = {}
            for hierarchy_name, tables in shard._tables.items():
                for kind, name_id in zip(tables.kinds, tables.name_ids):
                    if kind == _KIND_ELEMENT:
                        element_name = shard._names[name_id]
                        cards[element_name] = cards.get(element_name, 0) + 1
                        name_hierarchies.setdefault(
                            element_name, set()).add(hierarchy_name)
            shard_stats.append(ShardStats(
                lo=lo, hi=hi, words=len(self.text[lo:hi].split()),
                cards=cards))
        return CorpusStats(
            root_name=self.root_name,
            hierarchy_names=list(self._tables),
            name_hierarchies={name: sorted(names) for name, names
                              in name_hierarchies.items()},
            shards=shard_stats)


def _as_span(span) -> Span:
    """Coerce a ``(start, end, name[, attrs[, depth_hint]])`` tuple."""
    if isinstance(span, Span):
        return span
    start, end, name, *rest = span
    attributes: tuple = ()
    depth_hint = 0
    if rest:
        attributes = rest[0]
        if isinstance(attributes, dict):
            attributes = tuple(attributes.items())
        else:
            attributes = tuple(tuple(item) for item in attributes)
        if len(rest) > 1:
            depth_hint = rest[1]
    return Span(int(start), int(end), str(name), attributes, depth_hint)


def stream_save(text: str, sources: dict[str, str], path: str | Path, *,
                layers: dict[str, Iterable] | None = None,
                durability: str = "off", format_version: int = 2) -> int:
    """One-shot streaming ingest: encodings (+ optional standoff span
    layers) over a shared base text, straight to ``path``.  Returns the
    container size in bytes; the file is byte-identical to the DOM
    path's ``save_engine`` output on the same input."""
    builder = StreamingBuilder(text)
    for name, source in sources.items():
        builder.add_hierarchy(name, source)
    for name, spans in (layers or {}).items():
        builder.add_layer(name, spans)
    return builder.save(path, durability=durability,
                        format_version=format_version)
