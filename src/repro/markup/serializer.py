"""XML serialization for the DOM of :mod:`repro.markup.dom`.

``serialize`` produces parseable XML with minimal escaping; an optional
``indent`` reformats element-only content for human inspection (mixed
content is never re-indented — whitespace is significant in
document-centric XML).
"""

from __future__ import annotations

from repro.markup import dom

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", '"': "&quot;"}


def escape_text(data: str) -> str:
    """Escape character data for element content."""
    for char, escape in _TEXT_ESCAPES.items():
        data = data.replace(char, escape)
    return data


def escape_attribute(data: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for char, escape in _ATTR_ESCAPES.items():
        data = data.replace(char, escape)
    return data.replace("\n", "&#10;").replace("\t", "&#9;")


def serialize(node: dom.Node, indent: str | None = None) -> str:
    """Serialize a DOM node (or document) to a string.

    Parameters
    ----------
    node:
        Any DOM node; documents serialize their full child list.
    indent:
        When given (e.g. ``"  "``), elements whose content holds no text
        are pretty-printed one child per line.
    """
    out: list[str] = []
    _write(node, out, indent, 0)
    return "".join(out)


def _write(node: dom.Node, out: list[str], indent: str | None,
           depth: int) -> None:
    if isinstance(node, dom.Document):
        for index, child in enumerate(node.children):
            if indent is not None and index > 0:
                out.append("\n")
            _write(child, out, indent, depth)
    elif isinstance(node, dom.Element):
        _write_element(node, out, indent, depth)
    elif isinstance(node, dom.Text):
        out.append(escape_text(node.data))
    elif isinstance(node, dom.Comment):
        out.append(f"<!--{node.data}-->")
    elif isinstance(node, dom.ProcessingInstruction):
        separator = " " if node.data else ""
        out.append(f"<?{node.target}{separator}{node.data}?>")
    elif isinstance(node, dom.Attr):
        out.append(f'{node.name}="{escape_attribute(node.value)}"')
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot serialize node of type {type(node).__name__}")


def _write_element(element: dom.Element, out: list[str],
                   indent: str | None, depth: int) -> None:
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in element.attributes.items())
    if not element.children:
        out.append(f"<{element.name}{attrs}/>")
        return
    out.append(f"<{element.name}{attrs}>")
    pretty = indent is not None and not any(
        isinstance(child, dom.Text) for child in element.children)
    for child in element.children:
        if pretty:
            out.append("\n" + indent * (depth + 1))
        _write(child, out, indent, depth + 1)
    if pretty:
        out.append("\n" + indent * depth)
    out.append(f"</{element.name}>")
