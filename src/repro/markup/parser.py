"""A from-scratch, well-formedness-checking XML parser.

The parser is a single-pass recursive-descent scanner producing the DOM
of :mod:`repro.markup.dom`.  It supports the subset of XML 1.0 that
document-centric markup uses in practice:

* elements, attributes (with value normalization), empty-element tags;
* character data, CDATA sections, comments, processing instructions;
* the five predefined entities, character references, and internal
  general entities declared in a DOCTYPE internal subset;
* an XML declaration and a DOCTYPE declaration whose internal subset is
  handed to :mod:`repro.markup.dtd`.

Well-formedness violations raise :class:`~repro.errors.MarkupError`
with 1-based line/column positions.
"""

from __future__ import annotations

from repro.errors import MarkupError
from repro.markup import dom
from repro.markup.entities import EntityTable, decode_char_reference

_NAME_START_EXTRA = set(":_")
_NAME_EXTRA = set(":_-.·")


def _is_name_start(char: str) -> bool:
    """True for characters that may begin an XML name."""
    return char.isalpha() or char in _NAME_START_EXTRA or ord(char) > 0x7F


def _is_name_char(char: str) -> bool:
    """True for characters that may continue an XML name."""
    return (char.isalnum() or char in _NAME_EXTRA or ord(char) > 0x7F)


def is_valid_name(name: str) -> bool:
    """True when ``name`` is a legal XML name."""
    if not name:
        return False
    if not _is_name_start(name[0]):
        return False
    return all(_is_name_char(char) for char in name[1:])


class _Scanner:
    """Character scanner with line/column tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def advance(self, count: int = 1) -> str:
        """Consume ``count`` characters, maintaining line/column."""
        chunk = self.text[self.pos:self.pos + count]
        for char in chunk:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk

    def expect(self, literal: str, what: str | None = None) -> None:
        if not self.startswith(literal):
            found = self.peek() or "end of input"
            raise self.error(
                f"expected {what or literal!r}, found {found!r}")
        self.advance(len(literal))

    def consume_until(self, terminator: str, what: str) -> str:
        """Consume characters up to ``terminator`` (also consumed)."""
        index = self.text.find(terminator, self.pos)
        if index == -1:
            raise self.error(f"unterminated {what}")
        chunk = self.text[self.pos:index]
        self.advance(len(chunk) + len(terminator))
        return chunk

    def skip_whitespace(self) -> bool:
        """Skip XML whitespace; True when at least one char was skipped."""
        start = self.pos
        while not self.at_end() and self.peek() in " \t\r\n":
            self.advance()
        return self.pos > start

    def read_name(self, what: str = "name") -> str:
        if self.at_end() or not _is_name_start(self.peek()):
            found = self.peek() or "end of input"
            raise self.error(f"expected {what}, found {found!r}")
        start = self.pos
        self.advance()
        while not self.at_end() and _is_name_char(self.peek()):
            self.advance()
        return self.text[start:self.pos]

    def error(self, message: str) -> MarkupError:
        return MarkupError(message, self.line, self.column)


class XMLParser:
    """Parses a complete XML document into a :class:`Document`."""

    def __init__(self, text: str) -> None:
        if text.startswith("﻿"):
            text = text[1:]
        self.scanner = _Scanner(text)
        self.entities = EntityTable()

    # -- public API ---------------------------------------------------------

    def parse_document(self) -> dom.Document:
        """Parse and return the document; raises on any WF violation."""
        scanner = self.scanner
        document = dom.Document()
        self._parse_prolog(document)
        if scanner.at_end() or scanner.peek() != "<":
            raise scanner.error("expected document element")
        root = self._parse_element()
        document.append(root)
        self._parse_misc(document)
        if not scanner.at_end():
            raise scanner.error(
                "content after the document element is not allowed")
        return document

    def parse_fragment(self) -> list[dom.Node]:
        """Parse mixed content without the single-root constraint."""
        nodes: list[dom.Node] = []
        scanner = self.scanner
        while not scanner.at_end():
            if scanner.startswith("</"):
                raise scanner.error("unexpected end tag in fragment")
            if scanner.peek() == "<":
                nodes.append(self._parse_markup())
            else:
                text = self._parse_char_data()
                if text.data:
                    nodes.append(text)
        return nodes

    # -- prolog / misc --------------------------------------------------------

    def _parse_prolog(self, document: dom.Document) -> None:
        scanner = self.scanner
        if scanner.startswith("<?xml") and scanner.peek(5) in " \t\r\n":
            scanner.consume_until("?>", "XML declaration")
        while True:
            scanner.skip_whitespace()
            if scanner.startswith("<!--"):
                document.append(self._parse_comment())
            elif scanner.startswith("<?"):
                document.append(self._parse_pi())
            elif scanner.startswith("<!DOCTYPE"):
                self._parse_doctype(document)
            else:
                return

    def _parse_misc(self, document: dom.Document) -> None:
        scanner = self.scanner
        while True:
            scanner.skip_whitespace()
            if scanner.startswith("<!--"):
                document.append(self._parse_comment())
            elif scanner.startswith("<?"):
                document.append(self._parse_pi())
            else:
                return

    def _parse_doctype(self, document: dom.Document) -> None:
        scanner = self.scanner
        scanner.expect("<!DOCTYPE")
        scanner.skip_whitespace()
        document.doctype_name = scanner.read_name("doctype name")
        scanner.skip_whitespace()
        # External ID (SYSTEM/PUBLIC): recorded but never fetched.
        if scanner.startswith("SYSTEM") or scanner.startswith("PUBLIC"):
            keyword = scanner.advance(6)
            scanner.skip_whitespace()
            self._read_quoted("external identifier")
            if keyword == "PUBLIC":
                scanner.skip_whitespace()
                self._read_quoted("system identifier")
            scanner.skip_whitespace()
        if scanner.peek() == "[":
            subset = self._scan_internal_subset()
            # Deferred import: dtd depends on this module's name checks.
            from repro.markup.dtd import parse_dtd

            document.dtd = parse_dtd(subset)
            for name, value in document.dtd.general_entities.items():
                self.entities.declare(name, value)
        scanner.skip_whitespace()
        scanner.expect(">", "'>' closing DOCTYPE")

    def _scan_internal_subset(self) -> str:
        """Consume ``[...]`` verbatim, honoring quotes and comments."""
        scanner = self.scanner
        scanner.expect("[")
        start = scanner.pos
        while not scanner.at_end():
            char = scanner.peek()
            if char == "]":
                subset = scanner.text[start:scanner.pos]
                scanner.advance()
                return subset
            if char in "\"'":
                quote = scanner.advance()
                scanner.consume_until(quote, "quoted literal in DTD")
            elif scanner.startswith("<!--"):
                scanner.advance(4)
                scanner.consume_until("-->", "comment in DTD")
            else:
                scanner.advance()
        raise scanner.error("unterminated DOCTYPE internal subset")

    def _read_quoted(self, what: str) -> str:
        scanner = self.scanner
        quote = scanner.peek()
        if quote not in "\"'":
            raise scanner.error(f"expected quoted {what}")
        scanner.advance()
        return scanner.consume_until(quote, what)

    # -- element content ------------------------------------------------------

    def _parse_element(self) -> dom.Element:
        scanner = self.scanner
        line, column = scanner.line, scanner.column
        scanner.expect("<")
        name = scanner.read_name("element name")
        element = dom.Element(name)
        element.line, element.column = line, column
        self._parse_attributes(element)
        if scanner.startswith("/>"):
            scanner.advance(2)
            return element
        scanner.expect(">", "'>' closing start tag")
        self._parse_content(element)
        # _parse_content consumed "</"; match the end-tag name.
        end_line, end_column = scanner.line, scanner.column
        end_name = scanner.read_name("end tag name")
        if end_name != name:
            raise MarkupError(
                f"end tag '</{end_name}>' does not match start tag "
                f"'<{name}>' opened at line {line}, column {column}",
                end_line, end_column)
        scanner.skip_whitespace()
        scanner.expect(">", "'>' closing end tag")
        return element

    def _parse_attributes(self, element: dom.Element) -> None:
        scanner = self.scanner
        while True:
            had_space = scanner.skip_whitespace()
            char = scanner.peek()
            if char in (">", "/") or scanner.at_end():
                return
            if not had_space:
                raise scanner.error("expected whitespace before attribute")
            name = scanner.read_name("attribute name")
            if name in element.attributes:
                raise scanner.error(
                    f"duplicate attribute '{name}' on element "
                    f"'{element.name}'")
            scanner.skip_whitespace()
            scanner.expect("=", "'=' after attribute name")
            scanner.skip_whitespace()
            element.attributes[name] = self._parse_attribute_value()

    def _parse_attribute_value(self) -> str:
        scanner = self.scanner
        quote = scanner.peek()
        if quote not in "\"'":
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        out: list[str] = []
        while True:
            if scanner.at_end():
                raise scanner.error("unterminated attribute value")
            char = scanner.peek()
            if char == quote:
                scanner.advance()
                return "".join(out)
            if char == "<":
                raise scanner.error("'<' is not allowed in attribute values")
            if char == "&":
                out.append(self._parse_reference())
            elif char in "\t\r\n":
                # Attribute-value normalization: whitespace to space.
                scanner.advance()
                out.append(" ")
            else:
                out.append(scanner.advance())

    def _parse_content(self, element: dom.Element) -> None:
        """Parse mixed content until the matching ``</`` is consumed."""
        scanner = self.scanner
        while True:
            if scanner.at_end():
                raise scanner.error(
                    f"unexpected end of input inside element "
                    f"'{element.name}'")
            if scanner.startswith("</"):
                scanner.advance(2)
                return
            if scanner.peek() == "<":
                element.append(self._parse_markup())
            else:
                text = self._parse_char_data()
                if text.data:
                    element.append(text)

    def _parse_markup(self) -> dom.Node:
        scanner = self.scanner
        if scanner.startswith("<!--"):
            return self._parse_comment()
        if scanner.startswith("<![CDATA["):
            return self._parse_cdata()
        if scanner.startswith("<?"):
            return self._parse_pi()
        if scanner.startswith("<!"):
            raise scanner.error("unexpected markup declaration in content")
        return self._parse_element()

    def _parse_char_data(self) -> dom.Text:
        scanner = self.scanner
        line, column = scanner.line, scanner.column
        out: list[str] = []
        while not scanner.at_end():
            char = scanner.peek()
            if char == "<":
                break
            if char == "&":
                out.append(self._parse_reference())
            elif char == "]" and scanner.startswith("]]>"):
                raise scanner.error("']]>' is not allowed in content")
            elif char == "\r":
                # Line-end normalization: CRLF / CR to LF.
                scanner.advance()
                if scanner.peek() == "\n":
                    scanner.advance()
                out.append("\n")
            else:
                out.append(scanner.advance())
        text = dom.Text("".join(out))
        text.line, text.column = line, column
        return text

    def _parse_reference(self) -> str:
        scanner = self.scanner
        line, column = scanner.line, scanner.column
        scanner.expect("&")
        if scanner.peek() == "#":
            scanner.advance()
            body = scanner.consume_until(";", "character reference")
            return decode_char_reference(body, line, column)
        name = scanner.read_name("entity name")
        scanner.expect(";", "';' closing entity reference")
        return self.entities.resolve(name, line, column)

    def _parse_comment(self) -> dom.Comment:
        scanner = self.scanner
        line, column = scanner.line, scanner.column
        scanner.expect("<!--")
        data = scanner.consume_until("-->", "comment")
        if "--" in data:
            raise MarkupError("'--' is not allowed inside comments",
                              line, column)
        comment = dom.Comment(data)
        comment.line, comment.column = line, column
        return comment

    def _parse_cdata(self) -> dom.Text:
        scanner = self.scanner
        line, column = scanner.line, scanner.column
        scanner.expect("<![CDATA[")
        data = scanner.consume_until("]]>", "CDATA section")
        text = dom.Text(data)
        text.line, text.column = line, column
        return text

    def _parse_pi(self) -> dom.ProcessingInstruction:
        scanner = self.scanner
        line, column = scanner.line, scanner.column
        scanner.expect("<?")
        target = scanner.read_name("processing instruction target")
        if target.lower() == "xml":
            raise MarkupError("'<?xml' is only allowed at the document start",
                              line, column)
        data = ""
        if scanner.skip_whitespace():
            data = scanner.consume_until("?>", "processing instruction")
        else:
            scanner.expect("?>", "'?>' closing processing instruction")
        pi = dom.ProcessingInstruction(target, data)
        pi.line, pi.column = line, column
        return pi


def parse(text: str) -> dom.Document:
    """Parse a complete XML document string into a :class:`Document`."""
    return XMLParser(text).parse_document()


def parse_fragment(text: str) -> list[dom.Node]:
    """Parse an XML fragment (mixed content, any number of roots)."""
    return XMLParser(text).parse_fragment()
