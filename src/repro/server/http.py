"""A small HTTP/1.1 layer over asyncio streams (stdlib only).

Just enough protocol for the query service (DESIGN.md §14): request
parsing with hard limits (bounded request line, header block, and
body), keep-alive connection reuse, deterministic JSON response
encoding, and chunked transfer framing for streamed result sets.
Anything the parser rejects surfaces as an :class:`HttpError` carrying
its status code — the connection loop turns it into a JSON error
response, never a stack trace, so malformed input can never produce a
500.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

CRLF = b"\r\n"

#: stream-reader limit: bounds the request line and each header line
MAX_LINE_BYTES = 8192
#: total header block bound (line count × a generous line budget)
MAX_HEADER_COUNT = 100

#: the status codes the service actually speaks
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

JSON_TYPE = "application/json"
NDJSON_TYPE = "application/x-ndjson"


class HttpError(Exception):
    """A request rejection carrying its HTTP status.

    ``close`` marks errors after which the connection cannot be
    resynchronized (unread body bytes, oversized headers) — the
    response goes out with ``Connection: close`` and the loop hangs
    up.  ``retry_after`` renders as a ``Retry-After`` header (the 429
    admission/quota paths).
    """

    def __init__(self, status: int, message: str, *,
                 retry_after: int | None = None,
                 close: bool = False) -> None:
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.close = close
        super().__init__(message)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    #: the client asked to drop the connection after this exchange
    close: bool = field(default=False)

    @property
    def tenant(self) -> str:
        """The quota principal (``X-Tenant`` header, default public)."""
        return self.headers.get("x-tenant", "public")

    def json(self) -> dict:
        """The body decoded as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise HttpError(400, f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise HttpError(
                400, "invalid JSON body: expected an object, got "
                     f"{type(payload).__name__}")
        return payload


async def read_request(reader: asyncio.StreamReader, *,
                       body_limit: int) -> Request | None:
    """Parse one request off the stream.

    Returns ``None`` on a clean end-of-stream between requests (the
    keep-alive peer hung up) and raises
    :class:`asyncio.IncompleteReadError` when the peer disconnects
    mid-request — the caller treats both as a disconnect, not an
    error response.  Protocol violations raise :class:`HttpError`.
    """
    try:
        line = await reader.readline()
    except ValueError as error:  # StreamReader limit overrun
        raise HttpError(431, "request line too long",
                        close=True) from error
    if not line:
        return None
    try:
        text = line.decode("ascii").strip()
    except UnicodeDecodeError as error:
        raise HttpError(400, "malformed request line",
                        close=True) from error
    parts = text.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {text!r}",
                        close=True)
    method, target, version = parts
    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except ValueError as error:
            raise HttpError(431, "header line too long",
                            close=True) from error
        if raw in (CRLF, b"\n"):
            break
        if not raw:
            raise asyncio.IncompleteReadError(raw, None)
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(431, "too many header fields", close=True)
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep or not name.strip() or name[0].isspace():
            raise HttpError(400, f"malformed header line {raw!r}",
                            close=True)
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked request bodies are not supported",
                        close=True)
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
        if length < 0:
            raise ValueError(length_text)
    except ValueError as error:
        raise HttpError(400, f"bad Content-Length {length_text!r}",
                        close=True) from error
    if length > body_limit:
        raise HttpError(
            413, f"request body of {length} bytes exceeds the "
                 f"{body_limit}-byte limit", close=True)
    if length:
        body = await reader.readexactly(length)
    split = urlsplit(target)
    params = dict(parse_qsl(split.query, keep_blank_values=True))
    wants_close = (headers.get("connection", "").lower() == "close"
                   or version == "HTTP/1.0")
    return Request(method=method, path=split.path or "/",
                   params=params, headers=headers, body=body,
                   close=wants_close)


# -- responses ---------------------------------------------------------------


def json_bytes(payload) -> bytes:
    """Deterministic JSON encoding: sorted keys, compact separators.

    Every response body goes through this one function so identical
    payloads are identical *bytes* — the property the concurrency
    pack's replay comparison stands on.
    """
    return (json.dumps(payload, sort_keys=True, ensure_ascii=False,
                       separators=(",", ":")) + "\n").encode("utf-8")


def response(status: int, body: bytes, *,
             content_type: str = JSON_TYPE,
             extra_headers: tuple[tuple[str, str], ...] = (),
             close: bool = False) -> bytes:
    """One complete ``Content-Length``-framed response."""
    head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}"]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    head.append(f"Connection: {'close' if close else 'keep-alive'}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def error_response(error: HttpError) -> bytes:
    """The JSON rendering of an :class:`HttpError`."""
    extra: tuple[tuple[str, str], ...] = ()
    if error.retry_after is not None:
        extra = (("Retry-After", str(error.retry_after)),)
    return response(error.status,
                    json_bytes({"error": error.message}),
                    extra_headers=extra, close=error.close)


def stream_head(status: int = 200, *,
                content_type: str = NDJSON_TYPE,
                extra_headers: tuple[tuple[str, str], ...] = ()
                ) -> bytes:
    """Response head opening a chunked transfer."""
    head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            "Transfer-Encoding: chunked",
            "Connection: keep-alive"]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii")


def chunk(data: bytes) -> bytes:
    """One chunk of a chunked transfer (hex length framing)."""
    return f"{len(data):x}".encode("ascii") + CRLF + data + CRLF


#: the terminal zero-length chunk
LAST_CHUNK = b"0\r\n\r\n"
