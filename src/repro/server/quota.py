"""Per-tenant token-bucket quotas (DESIGN.md §14).

Each tenant (the ``X-Tenant`` request header) gets one bucket holding
up to ``burst`` tokens, refilled continuously at ``qps`` tokens per
second.  A request consumes one token; an empty bucket yields the
seconds until the next token, which the service renders as a 429 with
``Retry-After``.  The clock is injectable so the chaos tests can step
time deterministically.

Buckets are touched only on the server's event-loop thread, so there
is no locking — the same single-mutator discipline the rest of the
service's counters follow.
"""

from __future__ import annotations

import math
import time


class TokenBucket:
    """One tenant's bucket: ``burst`` capacity, ``rate`` tokens/s."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def consume(self, now: float) -> float:
        """Take one token; ``0.0`` when admitted, else seconds to wait."""
        elapsed = max(0.0, now - self.stamp)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class TenantQuotas:
    """The bucket table: one :class:`TokenBucket` per tenant seen.

    ``qps <= 0`` disables quotas entirely (every request admitted,
    ``tokens()`` reports no tenants).  ``burst`` defaults to two
    seconds of rate — enough to absorb a small volley without letting
    one tenant monopolize the admission queue.
    """

    def __init__(self, qps: float, burst: float | None = None,
                 clock=time.monotonic) -> None:
        self.qps = qps
        self.burst = burst if burst is not None else max(2.0 * qps, 1.0)
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.qps > 0

    def admit(self, tenant: str) -> int:
        """``0`` when admitted; else whole seconds for ``Retry-After``."""
        if not self.enabled:
            return 0
        now = self.clock()
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.qps, self.burst, now)
            self._buckets[tenant] = bucket
        wait = bucket.consume(now)
        if wait <= 0.0:
            return 0
        return max(1, math.ceil(wait))

    def tokens(self) -> dict[str, float]:
        """Current token balances per tenant (the ``/statz`` view)."""
        now = self.clock()
        out: dict[str, float] = {}
        for tenant, bucket in self._buckets.items():
            elapsed = max(0.0, now - bucket.stamp)
            balance = min(bucket.burst,
                          bucket.tokens + elapsed * bucket.rate)
            out[tenant] = round(balance, 3)
        return out
