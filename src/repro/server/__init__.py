"""Async multi-tenant query service over a DocumentStore."""

from repro.server.http import (
    HttpError,
    Request,
    chunk,
    error_response,
    json_bytes,
    read_request,
    response,
    stream_head,
)
from repro.server.quota import TenantQuotas, TokenBucket
from repro.server.service import (
    Outcome,
    QueryServer,
    QueryService,
    ServerConfig,
    ServerHandle,
    ServerStats,
    map_error,
    run_server,
    serve_async,
)

__all__ = [
    "HttpError",
    "Outcome",
    "QueryServer",
    "QueryService",
    "Request",
    "ServerConfig",
    "ServerHandle",
    "ServerStats",
    "TenantQuotas",
    "TokenBucket",
    "chunk",
    "error_response",
    "json_bytes",
    "map_error",
    "read_request",
    "response",
    "run_server",
    "serve_async",
    "stream_head",
]
