"""Async multi-tenant query service over a DocumentStore.

A stdlib-only asyncio HTTP/JSON server (DESIGN.md §14) that publishes
a :class:`repro.store.DocumentStore` to many tenants at once: reads
pin MVCC snapshots and run in a CPU-sized thread pool with zero new
locking, writes ride the store's single-writer path, and sharded
corpus queries reuse the scatter-gather pool (§13).

Endpoints: ``/query`` (document XQuery/XPath — paginated, or chunked
NDJSON with ``stream=1``), ``/update`` (write batch), ``/cquery``
(corpus scatter-gather), ``/explain``, ``/healthz``, ``/statz``.
Admission control is layered: a bounded queue over a ``max_inflight``
semaphore (429 + ``Retry-After`` when saturated), per-tenant
token-bucket quotas keyed by the ``X-Tenant`` header, and a graceful
SIGTERM drain that 503s new work while finishing what's in flight.
Every malformed input maps to a 4xx, never a 5xx.

Two front doors: ``mhxq serve --root STORE`` runs the daemon;
:class:`ServerHandle` embeds the same server in-process for tests,
tools, and the examples (``examples/serve_demo.py``).
"""

from repro.server.http import (
    HttpError,
    Request,
    chunk,
    error_response,
    json_bytes,
    read_request,
    response,
    stream_head,
)
from repro.server.quota import TenantQuotas, TokenBucket
from repro.server.service import (
    Outcome,
    QueryServer,
    QueryService,
    ServerConfig,
    ServerHandle,
    ServerStats,
    map_error,
    run_server,
    serve_async,
)

__all__ = [
    "HttpError",
    "Outcome",
    "QueryServer",
    "QueryService",
    "Request",
    "ServerConfig",
    "ServerHandle",
    "ServerStats",
    "TenantQuotas",
    "TokenBucket",
    "chunk",
    "error_response",
    "json_bytes",
    "map_error",
    "read_request",
    "response",
    "run_server",
    "serve_async",
    "stream_head",
]
