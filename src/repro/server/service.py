"""The query service: an asyncio daemon over a DocumentStore.

Architecture (DESIGN.md §14) — every request flows through four
stages, **admission → snapshot pin → execute → stream**:

* *admission* happens on the event-loop thread: a draining server
  refuses with 503, a tenant over its token-bucket rate gets 429 +
  ``Retry-After``, and when the bounded wait queue is full the
  request is rejected 429 rather than buffered without bound.
  Admitted requests wait on the in-flight semaphore (sized to CPUs),
  so at most ``max_inflight`` executions run at once and at most
  ``max_queue`` wait behind them;
* *snapshot pin* + *execute* run on a worker thread: the handler
  resolves the document's current published :class:`Snapshot` — a
  lock-free dict read against the store's MVCC catalog, zero new
  locking — and evaluates against that pinned version for the whole
  request.  Writes (``/update``) call the store's single-writer path,
  which serializes them on the store lock; corpus queries
  (``/cquery``) route to the PR-7 shard scatter-gather;
* *stream* happens back on the loop thread: small results go out as
  one deterministic JSON body (sorted keys, compact separators — a
  payload is always the same bytes), large ones page through
  ``offset``/``limit`` or stream as chunked NDJSON, one line per
  item.

All mutable server state — counters, quota buckets, the connection
set — is touched only on the loop thread, so the service adds no
locks anywhere.  :class:`ServerHandle` embeds the whole daemon on a
background thread for tests and demos; the CLI ``mhxq serve`` runs it
in the foreground with SIGTERM/SIGINT triggering a graceful drain
that finishes every admitted request before exiting.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import (
    QuerySyntaxError,
    ReproError,
    StoreError,
    UpdateConflictError,
    UpdateError,
)
from repro.server.http import (
    JSON_TYPE,
    LAST_CHUNK,
    HttpError,
    Request,
    chunk,
    error_response,
    json_bytes,
    read_request,
    response,
    stream_head,
)
from repro.server.quota import TenantQuotas
from repro.store import DocumentStore

#: endpoint → allowed methods
ROUTES: dict[str, tuple[str, ...]] = {
    "/query": ("GET", "POST"),
    "/cquery": ("GET", "POST"),
    "/explain": ("GET", "POST"),
    "/update": ("POST",),
    "/healthz": ("GET",),
    "/statz": ("GET",),
}

#: lookup-miss prefixes that map to 404 instead of 400
_NOT_FOUND_PREFIXES = ("no document named", "no corpus named")


def _default_workers() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 2


@dataclass
class ServerConfig:
    """Tunables of one :class:`QueryServer`."""

    host: str = "127.0.0.1"
    port: int = 0
    #: concurrent executions; 0 sizes to the usable CPU count
    max_inflight: int = 0
    #: admitted requests allowed to wait for an execution slot
    max_queue: int = 64
    #: per-tenant sustained queries/second; 0 disables quotas
    tenant_qps: float = 0.0
    #: bucket capacity; None = two seconds of rate
    tenant_burst: float | None = None
    #: request body bound (413 beyond it)
    body_limit: int = 1 << 20
    #: structured access-log sink: a file-like object (JSON lines) or
    #: a callable receiving each entry dict; None disables logging
    access_log: Any = None
    #: monotonic clock (injectable for deterministic quota tests)
    clock: Callable[[], float] = time.monotonic

    def workers(self) -> int:
        return self.max_inflight or _default_workers()


class ServerStats:
    """Loop-thread-only counters behind ``/statz``."""

    __slots__ = ("requests", "served", "inflight", "queued",
                 "peak_inflight", "rejected_queue", "rejected_quota",
                 "disconnects", "streamed_chunks", "cost_fallbacks",
                 "responses", "endpoints", "tenants")

    def __init__(self) -> None:
        self.requests = 0
        self.served = 0
        self.inflight = 0
        self.queued = 0
        self.peak_inflight = 0
        self.rejected_queue = 0
        self.rejected_quota = 0
        self.disconnects = 0
        self.streamed_chunks = 0
        self.cost_fallbacks = 0
        self.responses: dict[str, int] = {}
        self.endpoints: dict[str, int] = {}
        self.tenants: dict[str, dict[str, int]] = {}

    def note_response(self, status: int) -> None:
        key = str(status)
        self.responses[key] = self.responses.get(key, 0) + 1
        self.served += 1

    def tenant(self, name: str) -> dict[str, int]:
        entry = self.tenants.get(name)
        if entry is None:
            entry = {"served": 0, "rejected": 0}
            self.tenants[name] = entry
        return entry


@dataclass
class Outcome:
    """What one executed request produced.

    ``items`` set means a streaming response: ``payload`` is the meta
    line and each item follows as its own NDJSON line / chunk.
    """

    payload: dict
    items: list[str] | None = None
    plan_hit: bool | None = None
    snapshot_version: int | None = None
    status: int = 200
    #: cost-pass observability (DESIGN.md §16): the final operator's
    #: estimated vs actual cardinality and how many times the adaptive
    #: executor fell back to the mechanical ordering mid-plan
    est_rows: float | None = None
    act_rows: int | None = None
    cost_fallbacks: int = 0


def _as_bool(value, name: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        if value.lower() in ("1", "true", "yes", "on"):
            return True
        if value.lower() in ("0", "false", "no", "off", ""):
            return False
    raise HttpError(400, f"bad boolean for {name!r}: {value!r}")


def _as_int(value, name: str, minimum: int) -> int:
    try:
        out = int(value)
    except (TypeError, ValueError) as error:
        raise HttpError(400,
                        f"bad integer for {name!r}: {value!r}") from error
    if out < minimum:
        raise HttpError(400, f"{name!r} must be >= {minimum}, "
                             f"got {out}")
    return out


def _page(items: list[str], offset: int,
          limit: int | None) -> tuple[list[str], int | None]:
    """``(page, next offset or None)`` over a serialized item list."""
    end = offset + limit if limit is not None else len(items)
    page = items[offset:end]
    nxt = offset + len(page)
    return page, (nxt if nxt < len(items) else None)


class QueryService:
    """Request parsing + store execution (no I/O, no loop state).

    :meth:`job_for` validates one parsed request on the loop thread
    and returns a zero-argument callable that does the store work on
    an executor thread, returning an :class:`Outcome`.
    """

    def __init__(self, store: DocumentStore) -> None:
        self.store = store

    def job_for(self, request: Request) -> Callable[[], Outcome]:
        body = request.json() if request.body else {}

        def fld(name: str, default=None):
            if name in body:
                return body[name]
            return request.params.get(name, default)

        path = request.path
        if path in ("/query", "/explain"):
            text = fld("q")
            if not isinstance(text, str) or not text:
                raise HttpError(400, "missing query text "
                                     "(parameter 'q')")
            xpath = _as_bool(fld("xpath", False), "xpath")
            if path == "/explain":
                doc = fld("name")
                if doc is not None and (not isinstance(doc, str)
                                        or not doc):
                    raise HttpError(400, "bad document name "
                                         "(parameter 'name')")
                analyze = _as_bool(fld("analyze", False), "analyze")
                if analyze and doc is None:
                    raise HttpError(400, "analyze=true needs a "
                                         "document name "
                                         "(parameter 'name')")
                return lambda: self._explain(text, xpath, doc, analyze)
            name = fld("name")
            if not isinstance(name, str) or not name:
                raise HttpError(400, "missing document name "
                                     "(parameter 'name')")
            offset = _as_int(fld("offset", 0), "offset", 0)
            limit = fld("limit")
            limit = None if limit in (None, "") else _as_int(
                limit, "limit", 1)
            stream = _as_bool(fld("stream", False), "stream")
            return lambda: self._query(name, text, xpath, offset,
                                       limit, stream)
        if path == "/cquery":
            text = fld("q")
            if not isinstance(text, str) or not text:
                raise HttpError(400, "missing query text "
                                     "(parameter 'q')")
            workers = _as_int(fld("workers", 1), "workers", 1)
            prune = _as_bool(fld("prune", True), "prune")
            offset = _as_int(fld("offset", 0), "offset", 0)
            limit = fld("limit")
            limit = None if limit in (None, "") else _as_int(
                limit, "limit", 1)
            stream = _as_bool(fld("stream", False), "stream")
            return lambda: self._cquery(text, workers, prune, offset,
                                        limit, stream)
        if path == "/update":
            name = fld("name")
            if not isinstance(name, str) or not name:
                raise HttpError(400, "missing document name "
                                     "(parameter 'name')")
            statements = body.get("statements")
            if isinstance(statements, str):
                statements = [statements]
            if (not isinstance(statements, list) or not statements
                    or not all(isinstance(s, str) and s
                               for s in statements)):
                raise HttpError(
                    400, "'statements' must be a non-empty list of "
                         "update statements")
            check = _as_bool(fld("check", True), "check")
            return lambda: self._update(name, statements, check)
        raise HttpError(404, f"no such endpoint {path!r}")

    # -- executor-side handlers ---------------------------------------------

    def _query(self, name: str, text: str, xpath: bool, offset: int,
               limit: int | None, stream: bool) -> Outcome:
        snapshot = self.store.snapshot(name)
        result = (snapshot.xpath(text) if xpath
                  else snapshot.query(text))
        items = result.strings()
        page, nxt = _page(items, offset, limit)
        payload = {
            "name": name,
            "next": nxt,
            "offset": offset,
            "snapshot_version": snapshot.version,
            "total": len(items),
        }
        if not stream:
            payload["items"] = page
        stats = result.stats
        hit = bool(stats.plan_cache_hit) if stats else None
        return Outcome(payload, items=page if stream else None,
                       plan_hit=hit,
                       snapshot_version=snapshot.version,
                       est_rows=stats.est_rows if stats else None,
                       act_rows=stats.act_rows if stats else None,
                       cost_fallbacks=(stats.cost_fallbacks
                                       if stats else 0))

    def _cquery(self, text: str, workers: int, prune: bool,
                offset: int, limit: int | None,
                stream: bool) -> Outcome:
        result = self.store.cquery(text, workers=workers, prune=prune)
        page, nxt = _page(result.items, offset, limit)
        payload = {
            "mode": result.mode,
            "next": nxt,
            "offset": offset,
            "reason": result.reason,
            "shards_executed": result.shards_executed,
            "shards_pruned": result.shards_pruned,
            "shards_total": result.shards_total,
            "total": len(result.items),
            "workers": result.workers,
        }
        if not stream:
            payload["items"] = page
        return Outcome(payload, items=page if stream else None)

    def _update(self, name: str, statements: list[str],
                check: bool) -> Outcome:
        results = self.store.update(name, statements, check=check)
        version = self.store.snapshot(name).version
        payload = {
            "applied": sum(result.applied for result in results),
            "name": name,
            "results": [{"applied": result.applied,
                         "counts": dict(result.counts)}
                        for result in results],
            "version": version,
        }
        return Outcome(payload, snapshot_version=version)

    def _explain(self, text: str, xpath: bool,
                 name: str | None = None,
                 analyze: bool = False) -> Outcome:
        if name is not None:
            # document-costed report: estimates come from the named
            # snapshot's statistics; analyze=true also runs the query
            # there and renders actual cardinalities (est=…/act=…)
            snapshot = self.store.snapshot(name)
            report = snapshot.explain(text, xpath=xpath,
                                      analyze=analyze)
            payload = {"explain": report,
                       "mode": "xpath" if xpath else "query",
                       "name": name}
            return Outcome(payload,
                           snapshot_version=snapshot.version)
        compiled, hit = self.store.plans.get(text, self.store.options,
                                             xpath=xpath)
        payload = {"explain": compiled.explain(),
                   "mode": "xpath" if xpath else "query"}
        return Outcome(payload, plan_hit=hit)


def map_error(error: Exception) -> HttpError:
    """Translate store/engine errors to client-fault HTTP statuses.

    Everything the engine can raise about a request's *content* —
    parse errors, bad targets, missing documents, update conflicts —
    is the client's fault (4xx).  Only a non-:class:`ReproError`
    escapes, and the connection loop turns that into the 500 the
    chaos pack asserts malformed input can never cause.
    """
    if isinstance(error, HttpError):
        return error
    if isinstance(error, QuerySyntaxError):
        return HttpError(400, f"query parse error: {error}")
    if isinstance(error, UpdateConflictError):
        return HttpError(409, f"update conflict: {error}")
    if isinstance(error, UpdateError):
        return HttpError(400, f"update rejected: {error}")
    if isinstance(error, StoreError):
        return HttpError(409, str(error))
    if isinstance(error, ReproError):
        message = str(error)
        if message.startswith(_NOT_FOUND_PREFIXES):
            return HttpError(404, message)
        return HttpError(400, message)
    raise error


class QueryServer:
    """The asyncio daemon: admission, routing, streaming, drain."""

    def __init__(self, store: DocumentStore,
                 config: ServerConfig | None = None) -> None:
        self.store = store
        self.config = config or ServerConfig()
        self.service = QueryService(store)
        self.stats = ServerStats()
        self.quotas = TenantQuotas(self.config.tenant_qps,
                                   self.config.tenant_burst,
                                   clock=self.config.clock)
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.workers(),
            thread_name_prefix="mhxq-query")
        self.host = self.config.host
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._slots: asyncio.Semaphore | None = None
        self._idle: asyncio.Event | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._draining = False

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind and begin accepting connections."""
        self._slots = asyncio.Semaphore(self.config.workers())
        self._idle = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.config.host,
            port=self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def drain(self) -> None:
        """Stop accepting, finish every admitted request, hang up.

        Safe to call more than once; later callers wait on the same
        idle event.  Requests already admitted (queued or executing)
        complete and their responses go out; new requests — on new
        connections (refused at accept) or on kept-alive ones (503)
        — do not.
        """
        first = not self._draining
        self._draining = True
        if first and self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.stats.inflight == 0 and self.stats.queued == 0:
            self._idle.set()
        await self._idle.wait()
        if first:
            for writer in list(self._connections):
                writer.close()
            self.executor.shutdown(wait=False)

    # -- connection loop ----------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, body_limit=self.config.body_limit)
                except HttpError as error:
                    self.stats.requests += 1
                    self.stats.note_response(error.status)
                    await self._write(writer, error_response(error))
                    if error.close:
                        break
                    continue
                except (asyncio.IncompleteReadError,
                        ConnectionResetError):
                    self.stats.disconnects += 1
                    break
                if request is None:
                    break
                if not await self._handle(request, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            self.stats.disconnects += 1
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    OSError):
                pass

    async def _write(self, writer: asyncio.StreamWriter,
                     data: bytes) -> int:
        writer.write(data)
        await writer.drain()
        return len(data)

    async def _handle(self, request: Request,
                      writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns whether to keep the connection."""
        begin = self.config.clock()
        self.stats.requests += 1
        methods = ROUTES.get(request.path)
        outcome: Outcome | None = None
        http_error: HttpError | None = None
        try:
            if methods is None:
                raise HttpError(404,
                                f"no such endpoint {request.path!r}")
            self.stats.endpoints[request.path] = \
                self.stats.endpoints.get(request.path, 0) + 1
            if request.method not in methods:
                raise HttpError(
                    405, f"{request.method} not allowed on "
                         f"{request.path} (want "
                         f"{', '.join(methods)})")
            if request.path == "/healthz":
                outcome = Outcome(self._healthz())
            elif request.path == "/statz":
                outcome = Outcome(self._statz())
            else:
                outcome = await self._admit_and_run(request)
        except HttpError as error:
            http_error = error
        except Exception as error:  # noqa: BLE001 - mapped below
            try:
                http_error = map_error(error)
            except Exception as unmapped:  # noqa: BLE001 - real bug
                http_error = HttpError(
                    500, f"internal error: "
                         f"{type(unmapped).__name__}: {unmapped}")
        try:
            bytes_out = await self._respond(request, writer, outcome,
                                            http_error)
        except (ConnectionResetError, BrokenPipeError):
            self.stats.disconnects += 1
            return False
        status = http_error.status if http_error else outcome.status
        self.stats.note_response(status)
        if outcome is not None:
            self.stats.cost_fallbacks += outcome.cost_fallbacks
        tenant = self.stats.tenant(request.tenant)
        if http_error is not None and http_error.status == 429:
            tenant["rejected"] += 1
        else:
            tenant["served"] += 1
        self._log(request, status, bytes_out, outcome, begin)
        if http_error is not None and http_error.close:
            return False
        return not request.close

    async def _respond(self, request: Request,
                       writer: asyncio.StreamWriter,
                       outcome: Outcome | None,
                       http_error: HttpError | None) -> int:
        if http_error is not None:
            return await self._write(writer,
                                     error_response(http_error))
        extra: tuple[tuple[str, str], ...] = ()
        if outcome.plan_hit is not None:
            extra = (("X-Plan-Cache",
                      "hit" if outcome.plan_hit else "miss"),)
        if outcome.items is None:
            body = json_bytes(outcome.payload)
            return await self._write(
                writer, response(outcome.status, body,
                                 content_type=JSON_TYPE,
                                 extra_headers=extra,
                                 close=request.close))
        # chunked NDJSON stream: meta line, then one line per item
        total = await self._write(
            writer, stream_head(outcome.status, extra_headers=extra))
        for line in (outcome.payload, *outcome.items):
            total += await self._write(writer,
                                       chunk(json_bytes(line)))
            self.stats.streamed_chunks += 1
        total += await self._write(writer, LAST_CHUNK)
        return total

    async def _admit_and_run(self, request: Request) -> Outcome:
        if self._draining:
            raise HttpError(503, "server is draining", close=True)
        wait = self.quotas.admit(request.tenant)
        if wait:
            self.stats.rejected_quota += 1
            raise HttpError(
                429, f"tenant {request.tenant!r} is over its query "
                     f"rate", retry_after=wait)
        if self.stats.queued >= self.config.max_queue:
            self.stats.rejected_queue += 1
            raise HttpError(429, "request queue is full",
                            retry_after=1)
        job = self.service.job_for(request)
        loop = asyncio.get_running_loop()
        self.stats.queued += 1
        try:
            await self._slots.acquire()
        finally:
            self.stats.queued -= 1
        self.stats.inflight += 1
        self.stats.peak_inflight = max(self.stats.peak_inflight,
                                       self.stats.inflight)
        try:
            return await loop.run_in_executor(self.executor, job)
        finally:
            self.stats.inflight -= 1
            self._slots.release()
            if (self._draining and self.stats.inflight == 0
                    and self.stats.queued == 0):
                self._idle.set()

    # -- observability ------------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "corpora": len(self.store.corpora),
            "documents": len(self.store),
            "draining": self._draining,
            "status": "draining" if self._draining else "ok",
        }

    def _statz(self) -> dict:
        tokens = self.quotas.tokens()
        tenants = {
            name: {**entry,
                   "tokens": tokens.get(name)}
            for name, entry in self.stats.tenants.items()
        }
        return {
            "cost_fallbacks": self.stats.cost_fallbacks,
            "disconnects": self.stats.disconnects,
            "endpoints": dict(self.stats.endpoints),
            "inflight": self.stats.inflight,
            "peak_inflight": self.stats.peak_inflight,
            "plan_cache": self.store.plans.stats(),
            "queued": self.stats.queued,
            "quota": {"burst": self.quotas.burst,
                      "enabled": self.quotas.enabled,
                      "qps": self.quotas.qps},
            "rejected_queue": self.stats.rejected_queue,
            "rejected_quota": self.stats.rejected_quota,
            "requests": self.stats.requests,
            "responses": dict(self.stats.responses),
            "served": self.stats.served,
            "streamed_chunks": self.stats.streamed_chunks,
            "tenants": tenants,
        }

    def _log(self, request: Request, status: int, bytes_out: int,
             outcome: Outcome | None, begin: float) -> None:
        sink = self.config.access_log
        if sink is None:
            return
        text = None
        body = {}
        if request.body:
            try:
                body = request.json()
            except HttpError:
                body = {}
        for source in (body, request.params):
            value = source.get("q") or source.get("statements")
            if value:
                text = (value if isinstance(value, str)
                        else "\n".join(map(str, value)))
                break
        entry = {
            "act_rows": (outcome.act_rows if outcome is not None
                         else None),
            "bytes_out": bytes_out,
            "cost_fallbacks": (outcome.cost_fallbacks
                               if outcome is not None else 0),
            "est_rows": (outcome.est_rows if outcome is not None
                         else None),
            "latency_ms": round(
                (self.config.clock() - begin) * 1e3, 3),
            "method": request.method,
            "path": request.path,
            "plan_cache_hit": (outcome.plan_hit if outcome is not None
                               else None),
            "query_hash": (hashlib.sha256(
                text.encode("utf-8")).hexdigest()[:16]
                if text else None),
            "snapshot_version": (outcome.snapshot_version
                                 if outcome is not None else None),
            "status": status,
            "tenant": request.tenant,
            "ts": round(time.time(), 3),
        }
        if callable(sink):
            sink(entry)
            return
        sink.write(json.dumps(entry, sort_keys=True) + "\n")
        flush = getattr(sink, "flush", None)
        if flush is not None:
            flush()


class ServerHandle:
    """The daemon embedded on a background thread (tests, demos).

    Starts the event loop and server in ``__init__`` and exposes a
    small synchronous client (:meth:`request` / :meth:`get_json`) plus
    the drain/close lifecycle.  Usable as a context manager.
    """

    def __init__(self, store: DocumentStore,
                 config: ServerConfig | None = None) -> None:
        self.store = store
        self.server = QueryServer(store, config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="mhxq-serve", daemon=True)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop).result(timeout=30)
        self._closed = False

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request(self, method: str, path: str, payload: dict | None
                = None, headers: dict[str, str] | None = None,
                timeout: float = 60.0
                ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange; ``(status, headers, body bytes)``."""
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else None)
            connection.request(method, path, body=body,
                               headers=headers or {})
            reply = connection.getresponse()
            data = reply.read()
            return (reply.status,
                    {name.lower(): value
                     for name, value in reply.getheaders()}, data)
        finally:
            connection.close()

    def get_json(self, path: str,
                 headers: dict[str, str] | None = None
                 ) -> tuple[int, dict]:
        status, _headers, body = self.request("GET", path,
                                              headers=headers)
        return status, json.loads(body)

    def post_json(self, path: str, payload: dict,
                  headers: dict[str, str] | None = None
                  ) -> tuple[int, dict]:
        status, _headers, body = self.request("POST", path, payload,
                                              headers=headers)
        return status, json.loads(body)

    def drain(self, timeout: float = 60.0) -> None:
        """Graceful drain: finish admitted requests, stop accepting."""
        asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop).result(timeout=timeout)

    def close(self, timeout: float = 60.0) -> None:
        """Drain, stop the loop, and join the thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.drain(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


async def serve_async(store: DocumentStore, config: ServerConfig,
                      *, echo: Callable[[str], None] = print) -> None:
    """The CLI foreground runner: serve until SIGTERM/SIGINT, drain.

    Prints the bound address (machine-readable ``serving on URL``
    line — the SIGTERM drain test and deploy scripts parse it), then
    blocks until a termination signal flips the stop event, drains,
    and reports what was served.
    """
    import signal

    server = QueryServer(store, config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signame in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    echo(f"serving on http://{server.host}:{server.port} "
         f"({len(store)} documents, {len(store.corpora)} corpora, "
         f"{config.workers()} workers)")
    try:
        await stop.wait()
        echo(f"draining: {server.stats.inflight} in flight, "
             f"{server.stats.queued} queued")
        await server.drain()
        echo(f"drained; served {server.stats.served} responses")
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def run_server(root: str | Path, *, host: str = "127.0.0.1",
               port: int = 0, max_inflight: int = 0,
               max_queue: int = 64, tenant_qps: float = 0.0,
               body_limit: int = 1 << 20,
               access_log: Any = None,
               echo: Callable[[str], None] = print) -> int:
    """Open the store at ``root`` and serve it in the foreground."""
    store = DocumentStore(root)
    config = ServerConfig(host=host, port=port,
                          max_inflight=max_inflight,
                          max_queue=max_queue,
                          tenant_qps=tenant_qps,
                          body_limit=body_limit,
                          access_log=access_log)
    asyncio.run(serve_async(store, config, echo=echo))
    store.close()
    return 0
