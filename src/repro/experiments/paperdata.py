"""Every printed artifact of the paper, as machine-checkable data.

For each §4 query we record:

* ``query`` — the paper's query, cleaned of OCR typos (``or $w`` for
  ``for $w``, ``f$t}`` for ``{$t}``, ``analize-string``) but
  semantically literal;
* ``paper_output`` — the output as printed in the paper;
* ``expected_output`` — the output our strict semantics derives (equal
  to ``paper_output`` where the paper is internally consistent; the
  two known discrepancies are documented in DESIGN.md §4 and
  EXPERIMENTS.md);
* optional ``amended_query``/``amended_output`` — a variant that
  regenerates the paper's printed output where the literal query does
  not (Q-I.2), or that implements the stated intent (Q-III.1).

The thorn character prints as ``Da``/``ϸa`` in the paper's OCR; we use
``ϸa`` throughout.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperQuery:
    """One §4 query with its paper-printed and strict outputs."""

    id: str
    title: str
    query: str
    paper_output: str
    expected_output: str
    amended_query: str | None = None
    amended_output: str | None = None
    notes: str = ""


Q_I1 = PaperQuery(
    id="Q-I.1",
    title="Find and display lines containing the word singallice",
    query="""
for $l in /descendant::line
  [xdescendant::w[string(.) = "singallice"] or
   overlapping::w[string(.) = "singallice"]]
return string($l)
""",
    paper_output="gesceaftum unawendendne singallice sibbe gecynde ϸa",
    expected_output="gesceaftum unawendendne singallice sibbe gecynde ϸa",
    notes=("The result is the sequence of the two line strings "
           "('…sin', 'gallice…'); the paper prints their "
           "concatenation, which the 'paper' serialization mode "
           "reproduces exactly."),
)

Q_I2 = PaperQuery(
    id="Q-I.2",
    title=("Find and display lines containing words that are totally or "
           "partially damaged and highlight such words"),
    query="""
for $l in /descendant::line
  [xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return (
  for $leaf in $l/descendant::leaf() return
    if ($leaf[ancestor::w and ancestor::dmg]) then <b>{$leaf}</b>
    else $leaf
, <br/> )
""",
    paper_output=("gesceaftum <b>una</b><b>w</b><b>endendne</b>sin<br/>"
                  "gallice sibbe <b>gecyn</b><b>de</b><b>ϸa</b><br/>"),
    expected_output=("gesceaftum una<b>w</b>endendne sin<br/>"
                     "gallice sibbe gecyn<b>de</b> <b>ϸa</b><br/>"),
    amended_query="""
for $l in /descendant::line
  [xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return (
  for $leaf in $l/descendant::leaf() return
    if ($leaf[ancestor::w
              [xancestor::dmg or xdescendant::dmg or overlapping::dmg]])
    then <b>{$leaf}</b>
    else $leaf
, <br/> )
""",
    amended_output=("gesceaftum <b>una</b><b>w</b><b>endendne</b> sin<br/>"
                    "gallice sibbe <b>gecyn</b><b>de</b> <b>ϸa</b><br/>"),
    notes=("The paper's printed output bolds every leaf of each damaged "
           "word, but its printed query condition (ancestor::w and "
           "ancestor::dmg) only bolds leaves lying inside <dmg>. The "
           "amended query reproduces the printed output exactly, modulo "
           "two inter-word spaces lost in the paper's typesetting "
           "('endendne</b>sin' and '<b>de</b><b>ϸa</b>')."),
)

Q_II1 = PaperQuery(
    id="Q-II.1",
    title=("Find all words that contain the substring unawe, display such "
           "words and highlight the substring matching(s)"),
    query="""
for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  return
    for $n in $res/child::node() return
      if ($n/self::m) then <b>{string($n)}</b> else string($n)
, <br/> )
""",
    paper_output="<b>unawe</b>ndendne<br/>",
    expected_output="<b>unawe</b>ndendne<br/>",
    notes=("The paper's listing iterates $res/child::* and tests "
           "$n/parent::m with a typo'd return (f$t}); the cleaned query "
           "iterates child::node() and tests self::m, which is the "
           "reading that types (the paper's own output shows exactly "
           "this result)."),
)

Q_III1 = PaperQuery(
    id="Q-III.1",
    title=("Find all words that contain the substring unawe, display such "
           "words, highlight the matching(s) and italicize restored "
           "parts"),
    query="""
for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  return
    for $leaf in $res/descendant::leaf() return
      if ($leaf/xancestor::m and $leaf/xancestor::res)
      then <i><b>{$leaf}</b></i>
      else if ($leaf/xancestor::m) then <b>{$leaf}</b>
      else $leaf
, <br/> )
""",
    paper_output="<i><b>unawe</b></i><b>ndendne</b><br/>",
    expected_output=("<i><b>una</b></i><i><b>w</b></i><i><b>e</b></i>"
                     "ndendne<br/>"),
    amended_query="""
for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  return
    for $leaf in $res/descendant::leaf() return
      if ($leaf/xancestor::m and
          $leaf/xancestor::res[hierarchy(.) = "restoration"])
      then <i><b>{$leaf}</b></i>
      else if ($leaf/xancestor::m) then <b>{$leaf}</b>
      else $leaf
, <br/> )
""",
    amended_output="<i><b>una</b></i><b>w</b><b>e</b>ndendne<br/>",
    notes=("Literal evaluation italicizes the whole match region "
           "(leaf-by-leaf): analyze-string's wrapper element is also "
           "named <res> (Definition 4), so $leaf/xancestor::res is true "
           "for every leaf of the match — the name collision the "
           "hierarchy() extension disambiguates. The per-leaf "
           "<i><b>una</b></i><i><b>w</b></i><i><b>e</b></i> equals the "
           "paper's <i><b>unawe</b></i> textually; the paper's trailing "
           "<b>ndendne</b> contradicts its own query II.1 output "
           "('ndendne' lies outside <m>) and is recorded as a paper "
           "erratum. The amended query implements the stated intent: "
           "only editorially-restored parts of the match in italics."),
)

PAPER_QUERIES: tuple[PaperQuery, ...] = (Q_I1, Q_I2, Q_II1, Q_III1)

#: Example 1 of Definition 4: the XML-fragment pattern.
EXAMPLE_1 = {
    "id": "EX1",
    "target_query": '/descendant::w[string(.) = "unawendendne"]',
    "pattern": ".*un<a>a</a>we.*",
    "paper_output": "<res><m>un<a>a</a>we</m>ndendne</res>",
}

#: Figure 2 inventory: element counts per hierarchy derivable from the
#: paper's Figure 1 encodings (the drawing's checkable content).
FIGURE_2_INVENTORY = {
    "leaves": 16,
    "elements": {
        "physical": {"line": 2},
        "structural": {"vline": 3, "w": 6},
        "restoration": {"res": 3},
        "damage": {"dmg": 2},
    },
}
