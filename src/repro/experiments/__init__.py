"""The paper's reproducible artifacts: queries, expected outputs, runner.

* :mod:`repro.experiments.paperdata` — every printed artifact of the
  paper (§4 query outputs, Example 1, Figure 2 inventory) with the
  corresponding query text.
* :mod:`repro.experiments.runner` — executes each experiment and
  reports paper-expected vs measured (used by EXPERIMENTS.md and the
  benchmark suite).
"""

from repro.experiments.paperdata import (
    EXAMPLE_1,
    PAPER_QUERIES,
    PaperQuery,
)
from repro.experiments.runner import run_all, run_experiment

__all__ = [
    "PAPER_QUERIES",
    "PaperQuery",
    "EXAMPLE_1",
    "run_all",
    "run_experiment",
]
