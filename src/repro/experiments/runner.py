"""Execute the paper's experiments and report paper-vs-measured.

``run_all()`` regenerates every §4 query output, Example 1, and the
Figure 2 inventory against the built-in Boethius document, and returns
structured comparison records — the data behind EXPERIMENTS.md and the
reproduction benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.goddag import KyGoddag, collect
from repro.core.runtime import evaluate_query, serialize_items
from repro.corpus.boethius import boethius_goddag
from repro.experiments.paperdata import (
    EXAMPLE_1,
    FIGURE_2_INVENTORY,
    PAPER_QUERIES,
    PaperQuery,
)


@dataclass
class ExperimentReport:
    """Outcome of one reproduced artifact."""

    id: str
    title: str
    paper: str
    measured: str
    matches_paper: bool
    matches_expected: bool
    amended_measured: str | None = None
    amended_matches: bool | None = None
    notes: str = ""

    def summary_row(self) -> str:
        status = "EXACT" if self.matches_paper else (
            "OK (documented delta)" if self.matches_expected else
            "MISMATCH")
        return f"{self.id:10} {status:24} {self.title[:46]}"


def run_query_experiment(goddag: KyGoddag,
                         spec: PaperQuery) -> ExperimentReport:
    """Run one §4 query (and its amended variant, when present)."""
    measured = serialize_items(evaluate_query(goddag, spec.query))
    amended_measured = None
    amended_matches = None
    if spec.amended_query is not None:
        amended_measured = serialize_items(
            evaluate_query(goddag, spec.amended_query))
        amended_matches = amended_measured == spec.amended_output
    return ExperimentReport(
        id=spec.id,
        title=spec.title,
        paper=spec.paper_output,
        measured=measured,
        matches_paper=measured == spec.paper_output,
        matches_expected=measured == spec.expected_output,
        amended_measured=amended_measured,
        amended_matches=amended_matches,
        notes=spec.notes,
    )


def run_example_1(goddag: KyGoddag) -> ExperimentReport:
    """Definition 4 Example 1: the XML-fragment pattern."""
    query = (f"analyze-string({EXAMPLE_1['target_query']}, "
             f"\"{EXAMPLE_1['pattern']}\")")
    measured = serialize_items(evaluate_query(goddag, query))
    return ExperimentReport(
        id=EXAMPLE_1["id"],
        title="analyze-string with XML-fragment pattern (Example 1)",
        paper=EXAMPLE_1["paper_output"],
        measured=measured,
        matches_paper=measured == EXAMPLE_1["paper_output"],
        matches_expected=measured == EXAMPLE_1["paper_output"],
    )


def run_figure_2(goddag: KyGoddag) -> ExperimentReport:
    """Figure 2: the KyGODDAG inventory of the Figure 1 document."""
    stats = collect(goddag)
    measured_elements = {
        hierarchy.name: dict(sorted(hierarchy.elements_by_name.items()))
        for hierarchy in stats.hierarchies
    }
    measured = (f"leaves={stats.leaf_count} "
                f"elements={measured_elements}")
    expected = (f"leaves={FIGURE_2_INVENTORY['leaves']} "
                f"elements={FIGURE_2_INVENTORY['elements']}")
    return ExperimentReport(
        id="FIG2",
        title="KyGODDAG inventory of the Figure 1 encodings",
        paper=expected,
        measured=measured,
        matches_paper=measured == expected,
        matches_expected=measured == expected,
    )


def run_experiment(experiment_id: str,
                   goddag: KyGoddag | None = None) -> ExperimentReport:
    """Run a single experiment by id (``Q-I.1`` … ``EX1``, ``FIG2``)."""
    goddag = goddag or boethius_goddag()
    if experiment_id == "EX1":
        return run_example_1(goddag)
    if experiment_id == "FIG2":
        return run_figure_2(goddag)
    for spec in PAPER_QUERIES:
        if spec.id == experiment_id:
            return run_query_experiment(goddag, spec)
    raise KeyError(f"unknown experiment id {experiment_id!r}")


def run_all(goddag: KyGoddag | None = None) -> list[ExperimentReport]:
    """Run every paper artifact; returns one report per artifact."""
    goddag = goddag or boethius_goddag()
    reports = [run_figure_2(goddag), run_example_1(goddag)]
    reports.extend(run_query_experiment(goddag, spec)
                   for spec in PAPER_QUERIES)
    return reports


def format_reports(reports: list[ExperimentReport]) -> str:
    """A printable paper-vs-measured table."""
    lines = [f"{'id':10} {'status':24} title",
             "-" * 80]
    for report in reports:
        lines.append(report.summary_row())
    lines.append("")
    for report in reports:
        lines.append(f"== {report.id}: {report.title}")
        lines.append(f"   paper    : {report.paper}")
        lines.append(f"   measured : {report.measured}")
        if report.amended_measured is not None:
            lines.append(f"   amended  : {report.amended_measured} "
                         f"(matches documented expectation: "
                         f"{report.amended_matches})")
        if report.notes:
            lines.append(f"   notes    : {report.notes}")
        lines.append("")
    return "\n".join(lines)
