"""A seeded Old-English-flavored word source for synthetic manuscripts.

Words are assembled from attested Old English syllable inventories so
that synthetic texts have realistic word-length distributions (the
lengths drive where markup boundaries fall, which is what the overlap
machinery exercises).  The same seed always produces the same stream.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

ONSETS = [
    "", "b", "c", "d", "f", "g", "h", "hl", "hr", "hw", "l", "m", "n",
    "r", "s", "sc", "st", "str", "sw", "t", "th", "w", "wr", "ϸ",
]

NUCLEI = [
    "a", "æ", "e", "ea", "eo", "i", "ie", "o", "u", "y",
]

CODAS = [
    "", "c", "d", "f", "ft", "g", "l", "ld", "ll", "m", "n", "nd",
    "ng", "nn", "r", "rd", "rn", "s", "st", "t", "tt", "ð",
]

#: A few real words from the paper's fragment, mixed in so that sample
#: queries (e.g. for *singallice*) have hits in synthetic texts too.
SEED_WORDS = [
    "gesceaftum", "unawendendne", "singallice", "sibbe", "gecynde", "ϸa",
    "ond", "se", "cyning", "wæs", "heofon", "eorðan",
]


class WordSource:
    """A deterministic stream of synthetic Old English words."""

    def __init__(self, seed: int, seed_word_rate: float = 0.05) -> None:
        self._rng = random.Random(seed)
        self.seed_word_rate = seed_word_rate

    def word(self) -> str:
        """One word: occasionally a real seed word, usually synthetic."""
        rng = self._rng
        if rng.random() < self.seed_word_rate:
            return rng.choice(SEED_WORDS)
        syllables = rng.choices([1, 2, 3, 4], weights=[2, 5, 3, 1])[0]
        parts = []
        for _ in range(syllables):
            parts.append(rng.choice(ONSETS))
            parts.append(rng.choice(NUCLEI))
            parts.append(rng.choice(CODAS))
        return "".join(parts) or "ond"

    def words(self, count: int) -> Iterator[str]:
        """Yield ``count`` words."""
        for _ in range(count):
            yield self.word()
