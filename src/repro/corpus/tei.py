"""A TEI-flavored synthetic corpus.

The paper's motivating community (electronic editions, §2) works with
TEI markup [15].  This module re-labels the generator's hierarchies
with TEI element names so examples and tests exercise realistic
vocabularies:

================  ==========================
generator name    TEI-flavored name
================  ==========================
``line``/``page`` ``lb``-delimited ``line``, ``pb``-delimited ``page``
``vline``/``w``   ``l`` (verse line) / ``w``
``dmg``           ``damage``
``res``           ``supplied``
================  ==========================
"""

from __future__ import annotations

from repro.cmh import Hierarchy, MultihierarchicalDocument
from repro.cmh.spans import Span, SpanSet, spans_of
from repro.corpus.generator import GeneratorConfig, generate_document

#: Element renames applied per hierarchy.
TEI_NAMES = {
    "structural": {"vline": "l", "w": "w"},
    "physical": {"line": "line", "page": "page"},
    "damage": {"dmg": "damage"},
    "restoration": {"res": "supplied"},
}


def generate_tei_document(config: GeneratorConfig
                          ) -> MultihierarchicalDocument:
    """A synthetic document with TEI-flavored element names."""
    base = generate_document(config)
    result = MultihierarchicalDocument(base.text)
    for name, hierarchy in base.hierarchies.items():
        renames = TEI_NAMES.get(name, {})
        spans = SpanSet(base.text)
        for span in spans_of(hierarchy.document):
            spans.add(Span(span.start, span.end,
                           renames.get(span.name, span.name),
                           span.attributes, span.depth_hint))
        result.add_hierarchy(
            Hierarchy(name, spans.to_document("TEI")))
    return result
