"""Seeded synthetic multihierarchical manuscripts.

The generator reproduces the *shape* of the paper's motivating data
(image-based electronic editions, §2): a base text with

* a **physical** hierarchy — ``<page>``/``<line>`` following the
  manuscript's physical layout, with line breaks that may fall inside
  words (the *singallice* phenomenon: a word split across lines);
* a **structural** hierarchy — ``<vline>``/``<w>`` verse lines and
  words;
* a **damage** hierarchy — ``<dmg>`` spans that may cross word and line
  boundaries;
* a **restoration** hierarchy — ``<res>`` spans, likewise
  boundary-crossing.

All randomness is driven by the seed, so corpora are reproducible;
sizes and overlap characteristics are controlled by
:class:`GeneratorConfig`.  These corpora power the scaling and
baseline-comparison benchmarks (experiment ids C-FRAG, C-MILE,
S-BUILD, S-AXES, S-ANALYZE).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cmh import Hierarchy, MultihierarchicalDocument
from repro.cmh.spans import Span, SpanSet
from repro.corpus.vocabulary import WordSource


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of a synthetic manuscript.

    Attributes
    ----------
    n_words:
        Total number of words in the base text.
    seed:
        RNG seed; equal configs generate equal documents.
    words_per_vline:
        Mean verse-line length in words.
    chars_per_line:
        Target physical line width in characters.
    words_per_page:
        Physical page size; ``0`` disables the page level.
    hyphenation_rate:
        Probability that a physical line break splits a word (creating
        line/word overlap, the paper's query I.1 situation).
    damage_rate:
        Expected fraction of words touched by a ``<dmg>`` span.
    restoration_rate:
        Expected fraction of words touched by a ``<res>`` span.
    boundary_cross_rate:
        Probability that a damage/restoration span crosses a word
        boundary (creating markup overlap, queries I.2/III.1).
    """

    n_words: int = 200
    seed: int = 0
    words_per_vline: int = 5
    chars_per_line: int = 40
    words_per_page: int = 0
    hyphenation_rate: float = 0.35
    damage_rate: float = 0.08
    restoration_rate: float = 0.08
    boundary_cross_rate: float = 0.5


def generate_document(config: GeneratorConfig) -> MultihierarchicalDocument:
    """Generate an aligned multihierarchical document per ``config``."""
    rng = random.Random(config.seed)
    words = list(WordSource(config.seed).words(config.n_words))
    text, word_spans = _lay_out(words)
    document = MultihierarchicalDocument(text)
    builders = {
        "structural": _structural_spans(text, word_spans, config, rng),
        "physical": _physical_spans(text, word_spans, config, rng),
        "damage": _feature_spans(text, word_spans, "dmg",
                                 config.damage_rate,
                                 config.boundary_cross_rate, rng),
        "restoration": _feature_spans(text, word_spans, "res",
                                      config.restoration_rate,
                                      config.boundary_cross_rate, rng),
    }
    for name, spans in builders.items():
        document.add_hierarchy(
            Hierarchy(name, spans.to_document("r")))
    return document


def _lay_out(words: list[str]) -> tuple[str, list[tuple[int, int]]]:
    """Join words with single spaces; return the text and word spans."""
    spans: list[tuple[int, int]] = []
    cursor = 0
    parts: list[str] = []
    for index, word in enumerate(words):
        if index:
            parts.append(" ")
            cursor += 1
        spans.append((cursor, cursor + len(word)))
        parts.append(word)
        cursor += len(word)
    return "".join(parts), spans


def _structural_spans(text: str, word_spans: list[tuple[int, int]],
                      config: GeneratorConfig,
                      rng: random.Random) -> SpanSet:
    """Verse lines of ~``words_per_vline`` words, each word a ``<w>``."""
    spans = SpanSet(text)
    index = 0
    vline_number = 0
    while index < len(word_spans):
        size = max(1, config.words_per_vline + rng.randint(-1, 1))
        group = word_spans[index:index + size]
        vline_number += 1
        # The verse line runs to the start of the next one, covering
        # the inter-word spaces (as in the Boethius encoding).
        vline_end = (word_spans[index + size][0]
                     if index + size < len(word_spans)
                     else len(text))
        spans.add(Span(group[0][0], vline_end, "vline",
                       (("n", str(vline_number)),), depth_hint=0))
        for start, end in group:
            spans.add(Span(start, end, "w", depth_hint=1))
        index += size
    return spans


def _physical_spans(text: str, word_spans: list[tuple[int, int]],
                    config: GeneratorConfig,
                    rng: random.Random) -> SpanSet:
    """Physical lines of ~``chars_per_line``; breaks may split words."""
    spans = SpanSet(text)
    breaks: list[int] = [0]
    cursor = 0
    while cursor < len(text):
        target = min(cursor + config.chars_per_line, len(text))
        if target >= len(text):
            breaks.append(len(text))
            break
        if rng.random() < config.hyphenation_rate and text[target] != " ":
            # Break inside the word (hyphenation in the manuscript).
            break_at = target
        else:
            # Back off to the preceding space, if there is one nearby.
            space = text.rfind(" ", cursor + 1, target + 1)
            break_at = space + 1 if space != -1 else target
        if break_at <= cursor:
            break_at = target
        breaks.append(break_at)
        cursor = break_at
    line_number = 0
    page_groups: dict[int, list[tuple[int, int]]] = {}
    for start, end in zip(breaks, breaks[1:]):
        line_number += 1
        if config.words_per_page:
            lines_per_page = max(
                1, (config.words_per_page * 6) // config.chars_per_line)
            page = (line_number - 1) // lines_per_page
            page_groups.setdefault(page, []).append((start, end))
        spans.add(Span(start, end, "line", (("n", str(line_number)),),
                       depth_hint=1))
    for number, lines in sorted(page_groups.items()):
        spans.add(Span(lines[0][0], lines[-1][1], "page",
                       (("n", str(number + 1)),), depth_hint=0))
    return spans


def _feature_spans(text: str, word_spans: list[tuple[int, int]],
                   element: str, rate: float, cross_rate: float,
                   rng: random.Random) -> SpanSet:
    """Disjoint feature spans (damage/restoration) over random words.

    A span starts inside or at a random word; with probability
    ``cross_rate`` it extends past the word boundary into the middle of
    a following word — producing markup that overlaps the structural
    hierarchy (and often the physical one).
    """
    spans = SpanSet(text)
    expected = max(0, int(len(word_spans) * rate))
    if expected == 0:
        return spans
    chosen = sorted(rng.sample(range(len(word_spans)),
                               min(expected, len(word_spans))))
    last_end = -1
    for word_index in chosen:
        start, end = word_spans[word_index]
        span_start = rng.randint(start, max(start, end - 1))
        if rng.random() < cross_rate and word_index + 1 < len(word_spans):
            next_start, next_end = word_spans[word_index + 1]
            span_end = rng.randint(next_start + 1, next_end)
        else:
            span_end = rng.randint(min(span_start + 1, end), end)
        if span_start <= last_end:
            span_start = last_end + 1
        if span_end <= span_start:
            continue
        spans.add(Span(span_start, span_end, element))
        last_end = span_end
    return spans
