"""The paper's Figure 1 document: King Alfred's Boethius fragment.

Figure 1 shows one manuscript fragment (Cotton Otho A.vi, a 10th
century Old English manuscript) encoded four times:

* ``physical``  — manuscript lines (``<line>``); the word *singallice*
  is split across the two lines;
* ``structural`` — verse lines and words (``<vline>``, ``<w>``);
* ``restoration`` — editorial restorations (``<res>``);
* ``damage`` — damaged regions (``<dmg>``).

The paper's scan has OCR-mangled whitespace; the encodings below are
the unique whitespace reconstruction under which all four hierarchies
are encodings of the *same* base text (the CMH invariant — verified by
``tests/test_corpus_boethius.py``).  The thorn character ``ϸ`` appears
as ``D``/``Da`` in the OCR; we use ``ϸ`` throughout (see DESIGN.md §4).
"""

from __future__ import annotations

from repro.cmh import ConcurrentMarkupHierarchy, MultihierarchicalDocument
from repro.core.goddag import KyGoddag

#: The shared base text S of the manuscript fragment.
BASE_TEXT = "gesceaftum unawendendne singallice sibbe gecynde ϸa"

#: The four encodings of Figure 1, keyed by hierarchy name
#: (in the paper's presentation order).
ENCODINGS: dict[str, str] = {
    "physical": (
        "<r>"
        "<line>gesceaftum unawendendne sin</line>"
        "<line>gallice sibbe gecynde ϸa</line>"
        "</r>"
    ),
    "structural": (
        "<r>"
        "<vline><w>gesceaftum</w> <w>unawendendne</w> </vline>"
        "<vline><w>singallice</w> <w>sibbe</w> <w>gecynde</w> </vline>"
        "<vline><w>ϸa</w></vline>"
        "</r>"
    ),
    "restoration": (
        "<r>"
        "<res>gesceaftum una</res>wendendne s<res>in</res>"
        "<res>gallice sibbe gecyn</res>de ϸa"
        "</r>"
    ),
    "damage": (
        "<r>"
        "gesceaftum una<dmg>w</dmg>endendne singallice sibbe "
        "gecyn<dmg>de ϸa</dmg>"
        "</r>"
    ),
}

#: DTD sources for the four hierarchies — together they form the CMH of
#: the electronic edition (shared root ``r``, otherwise disjoint).
DTD_SOURCES: dict[str, str] = {
    "physical": """
        <!ELEMENT r (line+)>
        <!ELEMENT line (#PCDATA)>
        <!ATTLIST line n CDATA #IMPLIED>
    """,
    "structural": """
        <!ELEMENT r (vline+)>
        <!ELEMENT vline (#PCDATA|w)*>
        <!ELEMENT w (#PCDATA)>
    """,
    "restoration": """
        <!ELEMENT r (#PCDATA|res)*>
        <!ELEMENT res (#PCDATA)>
        <!ATTLIST res resp CDATA #IMPLIED>
    """,
    "damage": """
        <!ELEMENT r (#PCDATA|dmg)*>
        <!ELEMENT dmg (#PCDATA)>
        <!ATTLIST dmg degree CDATA #IMPLIED>
    """,
}


def boethius_cmh() -> ConcurrentMarkupHierarchy:
    """The CMH (root ``r`` + four DTDs) of the Figure 1 edition."""
    return ConcurrentMarkupHierarchy.from_sources("r", DTD_SOURCES)


def boethius_document(validate: bool = True) -> MultihierarchicalDocument:
    """The Figure 1 multihierarchical document.

    With ``validate`` (the default), each encoding is checked against
    its DTD and the CMH invariants.
    """
    document = MultihierarchicalDocument.from_xml(BASE_TEXT, ENCODINGS)
    if validate:
        document.attach_cmh(boethius_cmh())
    return document


def boethius_goddag() -> KyGoddag:
    """The KyGODDAG of the Figure 1 document (the paper's Figure 2)."""
    return KyGoddag.build(boethius_document(validate=False))
