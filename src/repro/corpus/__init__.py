"""Sample and synthetic corpora of multihierarchical documents.

* :mod:`repro.corpus.boethius` — the paper's Figure 1 example (King
  Alfred's Boethius, Cotton Otho A.vi) with its four hierarchies.
* :mod:`repro.corpus.generator` — seeded synthetic manuscripts with
  controllable size and overlap characteristics, used by the scaling
  and baseline-comparison benchmarks.
* :mod:`repro.corpus.tei` — a TEI-flavored variant of the generator.
"""

from repro.corpus.boethius import (
    BASE_TEXT,
    ENCODINGS,
    boethius_cmh,
    boethius_document,
    boethius_goddag,
)
from repro.corpus.generator import GeneratorConfig, generate_document

__all__ = [
    "BASE_TEXT",
    "ENCODINGS",
    "boethius_cmh",
    "boethius_document",
    "boethius_goddag",
    "GeneratorConfig",
    "generate_document",
]
