"""Exception taxonomy for the multihierarchical XQuery library.

Every error raised by the library derives from :class:`ReproError`, so
applications can install a single ``except ReproError`` barrier.  Errors
are grouped by subsystem:

* :class:`MarkupError` — XML lexing/parsing/well-formedness problems.
* :class:`DTDError` / :class:`ValidationError` — schema definition and
  document validation problems.
* :class:`CMHError` / :class:`AlignmentError` — concurrent markup
  hierarchy definition and text-alignment problems.
* :class:`GoddagError` — KyGODDAG construction/manipulation problems.
* :class:`QuerySyntaxError` / :class:`QueryEvaluationError` /
  :class:`FunctionError` — static and dynamic query errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MarkupError(ReproError):
    """A problem lexing or parsing an XML document.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position whenever they are known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DTDError(ReproError):
    """A problem parsing or interpreting a DTD."""


class ValidationError(ReproError):
    """A document does not conform to its DTD."""


class CMHError(ReproError):
    """An invalid concurrent markup hierarchy definition.

    Raised, for example, when two hierarchies share a non-root element
    name, violating the paper's CMH definition (Section 3).
    """


class AlignmentError(CMHError):
    """Hierarchy text content does not match the shared base text.

    Carries ``hierarchy`` (the offending hierarchy name) and ``offset``
    (the first character offset at which the two strings diverge), when
    known.
    """

    def __init__(self, message: str, hierarchy: str | None = None,
                 offset: int | None = None) -> None:
        self.hierarchy = hierarchy
        self.offset = offset
        super().__init__(message)


class GoddagError(ReproError):
    """A problem constructing or manipulating a KyGODDAG."""


class QueryError(ReproError):
    """Base class for query language errors."""


class QuerySyntaxError(QueryError):
    """A query failed to parse.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class QueryEvaluationError(QueryError):
    """A query failed during evaluation (a dynamic error)."""


class FunctionError(QueryEvaluationError):
    """A built-in function was called with invalid arguments."""


class StoreError(ReproError):
    """A problem in the document store (catalog, manifest, recovery).

    Raised, for example, when a requested document sits in the
    manifest's ``"quarantined"`` section after recovery or a failed
    integrity check.
    """


class IntegrityError(StoreError):
    """A persisted ``.mhxb`` container failed a checksum.

    Carries ``path`` (the offending file) and ``block`` (the array
    block whose CRC mismatched, or ``None`` for a header checksum
    failure) so callers can report — and quarantine — precisely.
    """

    def __init__(self, message: str, path=None,
                 block: str | None = None) -> None:
        self.path = path
        self.block = block
        super().__init__(message)


class BaselineError(ReproError):
    """A problem in the fragmentation/milestone baseline encoders."""


class UpdateError(ReproError):
    """An update statement cannot be applied (bad target, bad span,
    improper nesting, unknown hierarchy, …)."""


class UpdateConflictError(UpdateError):
    """Two primitives of one pending update list conflict (duplicate
    ``rename``/``replace value of`` on one node, overlapping text
    edits, a target inside a deleted or replaced subtree, …)."""
