"""Multihierarchical XQuery for document-centric XML.

A from-scratch reproduction of Iacob & Dekhtyar, "Multihierarchical
XQuery for Document-Centric XML" (SIGMOD 2006): the KyGODDAG data
structure for concurrent (overlapping) markup hierarchies, the extended
XPath axes of Definition 1, the extended node tests of Definition 2,
and an XQuery subset with ``analyze-string`` (Definition 4).

Quickstart::

    from repro import Engine
    from repro.corpus import BASE_TEXT, ENCODINGS

    engine = Engine.from_xml(BASE_TEXT, ENCODINGS)
    result = engine.query(
        'for $l in /descendant::line'
        '[xdescendant::w[string(.) = "singallice"]'
        ' or overlapping::w[string(.) = "singallice"]]'
        ' return string($l)')
    print(result.serialize())
"""

from repro.api import Engine, QueryResult, UpdateResult, load_mhx, save_mhx
from repro.core.plan import CompiledQuery, compile_query
from repro.core.update import CompiledUpdate, compile_update
from repro.store import DocumentStore, Snapshot
from repro.cmh import (
    ConcurrentMarkupHierarchy,
    Hierarchy,
    MultihierarchicalDocument,
)
from repro.core.goddag import KyGoddag
from repro.core.lang import parse_query, parse_xpath
from repro.core.runtime import (
    QueryOptions,
    QueryStats,
    evaluate_query,
    serialize_items,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "DocumentStore",
    "Engine",
    "QueryResult",
    "Snapshot",
    "UpdateResult",
    "CompiledQuery",
    "compile_query",
    "CompiledUpdate",
    "compile_update",
    "load_mhx",
    "save_mhx",
    "ConcurrentMarkupHierarchy",
    "Hierarchy",
    "MultihierarchicalDocument",
    "KyGoddag",
    "parse_query",
    "parse_xpath",
    "QueryOptions",
    "QueryStats",
    "evaluate_query",
    "serialize_items",
    "ReproError",
    "__version__",
]
