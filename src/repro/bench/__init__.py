"""Shared helpers for the benchmark suite (``benchmarks/``)."""

from repro.bench.workloads import (
    SCALING_SIZES,
    corpus_at_size,
    goddag_at_size,
    paper_query_workload,
)

__all__ = [
    "SCALING_SIZES",
    "corpus_at_size",
    "goddag_at_size",
    "paper_query_workload",
]
