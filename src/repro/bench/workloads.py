"""Benchmark workloads: sized corpora and the paper query set.

All corpora are seeded, so every benchmark run measures the same
documents.  ``corpus_at_size``/``goddag_at_size`` memoize per size —
pytest-benchmark calls the measured function many times and corpus
generation must not pollute the timings.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cmh import MultihierarchicalDocument
from repro.core.goddag import KyGoddag
from repro.corpus.generator import GeneratorConfig, generate_document
from repro.experiments.paperdata import PAPER_QUERIES

#: Word counts used by the scaling experiments (S-BUILD, S-AXES, …).
SCALING_SIZES = (100, 400, 1600, 6400)

#: A fixed seed so every run and every machine sees the same corpus.
BENCH_SEED = 20060627  # SIGMOD 2006 Chicago, June 27


@lru_cache(maxsize=None)
def corpus_at_size(n_words: int,
                   seed: int = BENCH_SEED) -> MultihierarchicalDocument:
    """A synthetic manuscript with ``n_words`` words (memoized)."""
    config = GeneratorConfig(n_words=n_words, seed=seed,
                             hyphenation_rate=0.35, damage_rate=0.08,
                             restoration_rate=0.08,
                             boundary_cross_rate=0.5)
    return generate_document(config)


@lru_cache(maxsize=None)
def goddag_at_size(n_words: int, seed: int = BENCH_SEED) -> KyGoddag:
    """The KyGODDAG of :func:`corpus_at_size` (memoized)."""
    return KyGoddag.build(corpus_at_size(n_words, seed))


def paper_query_workload() -> list[tuple[str, str]]:
    """(experiment id, query text) for every §4 query."""
    return [(spec.id, spec.query) for spec in PAPER_QUERIES]
