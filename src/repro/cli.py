"""Command-line interface: the ``mhxq`` tool.

Subcommands (all take a ``.mhx`` container, or ``--sample`` for the
built-in Boethius document):

* ``query`` — evaluate an extended XQuery expression;
* ``xpath`` — evaluate a pure extended-XPath expression;
* ``explain`` — show a query's compiled pipeline plan (rewrites +
  logical operators) without running it;
* ``update`` — apply a transactional update statement (``insert
  node``, ``delete node``, ``replace value of``, ``rename``, ``add
  markup``, ``remove markup``), optionally re-saving with ``--out``;
* ``stats`` — print the KyGODDAG node/edge inventory;
* ``describe`` — print the KyGODDAG outline (hierarchies + leaves);
* ``render`` — emit GraphViz DOT (Figure 2 style);
* ``leaves`` — list the leaf partition;
* ``validate`` — check CMH alignment (and DTDs when bundled);
* ``fragment`` / ``milestone`` — emit the baseline flat encodings;
* ``experiments`` — run the paper-vs-measured reproduction report;
* ``pack`` — bundle a base text + XML encodings into a ``.mhx`` (or,
  by extension, a binary ``.mhxb``) container;
* ``ingest`` — stream a base text + XML encodings (and optional
  standoff ``--layer`` span files) straight into a binary ``.mhxb``
  with no DOM in between (DESIGN.md §15) — byte-identical to ``pack``
  output at bulk-ingest speed;
* ``store`` — the concurrent document store (DESIGN.md §10):
  ``store init/add/get/query/update/compact`` manage a named catalog
  of ``.mhxb``-persisted documents with MVCC snapshot reads;
  ``store verify`` deep-scans every block checksum and ``store
  recover`` reports what open-time crash recovery swept, adopted, or
  quarantined (DESIGN.md §12); ``store shard`` partitions a large
  document into a corpus of per-shard ``.mhxb`` files and ``store
  cquery`` runs ``collection("name")`` queries over it with
  scatter-gather parallelism (``--workers``) and manifest-statistics
  shard pruning (DESIGN.md §13);
* ``serve`` — the async multi-tenant HTTP/JSON query service over a
  document store (DESIGN.md §14): ``mhxq serve --root STORE``
  exposes ``/query``, ``/update``, ``/cquery``, ``/explain``,
  ``/healthz`` and ``/statz`` with admission control, per-tenant
  quotas, pagination/streaming, and graceful SIGTERM drain.

Examples::

    mhxq query --sample 'count(/descendant::w)'
    mhxq experiments
    mhxq pack out.mhx --text base.txt physical=phys.xml damage=dmg.xml
    mhxq ingest out.mhxb --text base.txt verse=verse.xml \
        --layer tokens=tokens.json
    mhxq store init ./catalog
    mhxq store add ./catalog boethius --sample
    mhxq store query ./catalog boethius 'count(/descendant::w)'
    mhxq store shard ./catalog corpus --generate 64000 --shards 8
    mhxq store cquery ./catalog 'count(collection("corpus")//w)' \
        --workers 4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api import Engine, load_mhx, save_mhx
from repro.errors import ReproError
from repro.markup import serialize
from repro.cmh import MultihierarchicalDocument
from repro.baselines import fragment_document, milestone_document
from repro.corpus.boethius import boethius_document
from repro.experiments.runner import format_reports, run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mhxq",
        description="Multihierarchical XQuery over document-centric XML "
                    "(SIGMOD 2006 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_document_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--mhx", metavar="FILE",
                       help="a .mhx multihierarchical document container")
        p.add_argument("--sample", action="store_true",
                       help="use the built-in Boethius sample (Figure 1)")

    p_query = sub.add_parser(
        "query", help="evaluate an extended XQuery",
        epilog="Extended axes and the compiled plan pipeline: "
               "DESIGN.md §4 and §8; interval-join execution: §11.")
    add_document_options(p_query)
    p_query.add_argument("expression", help="the query text, or @file")
    p_query.add_argument("--mode", choices=("paper", "xquery"),
                         default="paper",
                         help="result serialization mode (default: paper)")

    p_xpath = sub.add_parser("xpath", help="evaluate an extended XPath")
    add_document_options(p_xpath)
    p_xpath.add_argument("expression", help="the path expression, or @file")
    p_xpath.add_argument("--mode", choices=("paper", "xquery"),
                         default="paper")

    p_explain = sub.add_parser(
        "explain", help="show the compiled pipeline plan for a query",
        epilog="Plan rewrites and operator lowering: DESIGN.md §8; "
               "join-aware lowering of extended axes: §11; cost-based "
               "ordering: §16.  Costed steps carry est=… estimated "
               "cardinalities; --analyze runs the query and adds "
               "act=… actual rows per operator, flagging "
               "misestimates with '!'.")
    add_document_options(p_explain)
    p_explain.add_argument("expression", help="the query text, or @file")
    p_explain.add_argument("--xpath", action="store_true",
                           help="parse as a pure extended-XPath expression")
    p_explain.add_argument("--analyze", action="store_true",
                           help="execute the query and render actual "
                                "next to estimated cardinalities")

    p_update = sub.add_parser(
        "update", help="apply a transactional update statement",
        epilog="Pending-update lists, conflict checks, and the "
               "incremental apply paths: DESIGN.md §9.")
    add_document_options(p_update)
    p_update.add_argument("statement", help="the update statement, or @file")
    p_update.add_argument("--out", metavar="FILE",
                          help="write the mutated document to a .mhx "
                               "container")
    p_update.add_argument("--no-check", action="store_true",
                          help="skip the post-apply invariant check")
    p_update.add_argument("--explain", action="store_true",
                          help="show the compiled update plan instead of "
                               "applying it")

    for name, help_text in (("stats", "print the KyGODDAG inventory"),
                            ("describe", "print the KyGODDAG outline"),
                            ("render", "emit GraphViz DOT"),
                            ("leaves", "list the leaf partition"),
                            ("validate", "check alignment and DTDs")):
        p = sub.add_parser(name, help=help_text)
        add_document_options(p)

    p_frag = sub.add_parser("fragment",
                            help="emit the fragmentation baseline encoding")
    add_document_options(p_frag)
    p_mile = sub.add_parser("milestone",
                            help="emit the milestone baseline encoding")
    add_document_options(p_mile)
    p_mile.add_argument("--primary", default=None,
                        help="hierarchy kept as the real tree")

    sub.add_parser("experiments",
                   help="run the paper-vs-measured reproduction report")

    p_pack = sub.add_parser(
        "pack", help="bundle encodings into a .mhx (or binary .mhxb)",
        epilog="Parses every encoding through the DOM pipeline; for "
               "bulk binary ingest prefer 'mhxq ingest' (DESIGN.md "
               "§15). Container formats: DESIGN.md §10 and §12.")
    p_pack.add_argument("output",
                        help="output path (.mhx = JSON, .mhxb = binary)")
    p_pack.add_argument("--text", required=True, metavar="FILE",
                        help="file containing the base text")
    p_pack.add_argument("encodings", nargs="+", metavar="NAME=FILE",
                        help="hierarchy encodings as name=xmlfile")

    p_ingest = sub.add_parser(
        "ingest", help="stream encodings straight into a binary .mhxb "
                       "(no DOM)",
        epilog="The streaming builder tokenizes each encoding in one "
               "pass into the .mhxb node tables — byte-identical to "
               "the pack/DOM path but without materializing a DOM, so "
               "bulk ingest runs at words/sec the parser allows "
               "(BENCH_ingest.json). Standoff --layer files carry "
               "JSON [start, end, name] or [start, end, name, "
               "{attrs}] rows of character spans, the shape NLP "
               "pipelines emit for token/sentence/entity layers. "
               "See DESIGN.md §15.")
    p_ingest.add_argument("output", help="output .mhxb path")
    p_ingest.add_argument("--text", required=True, metavar="FILE",
                          help="file containing the base text")
    p_ingest.add_argument("encodings", nargs="+", metavar="NAME=FILE",
                          help="hierarchy encodings as name=xmlfile")
    p_ingest.add_argument("--layer", action="append", default=[],
                          metavar="NAME=FILE",
                          help="standoff span layer: a JSON file of "
                               "[start, end, name[, {attrs}]] rows "
                               "(repeatable)")
    p_ingest.add_argument("--durability", choices=("full", "off"),
                          default="off",
                          help="fsync the container on write "
                               "(DESIGN.md §12; default: off)")

    p_store = sub.add_parser(
        "store", help="the concurrent document store (DESIGN.md §10)",
        epilog="Persistence and MVCC snapshots: DESIGN.md §10; "
               "durability and crash recovery: §12; sharded corpora "
               "and cquery scatter-gather: §13; streaming ingest "
               "(--streaming): §15.")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    def add_durability_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--durability", choices=("full", "batch", "off"),
                       default="full",
                       help="fsync policy for this store session "
                            "(DESIGN.md §12; default: full)")

    p_s_init = store_sub.add_parser("init", help="create an empty store")
    p_s_init.add_argument("store_dir", help="store directory")

    def add_streaming_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--streaming", action="store_true",
                       help="ingest DOM-free via the streaming builder "
                            "(with --text + NAME=FILE encodings; "
                            "DESIGN.md §15)")
        p.add_argument("--text", metavar="FILE",
                       help="base text file (with --streaming)")
        p.add_argument("encodings", nargs="*", metavar="NAME=FILE",
                       help="hierarchy encodings as name=xmlfile "
                            "(with --streaming; place them directly "
                            "after the catalog name)")
        p.add_argument("--layer", action="append", default=[],
                       metavar="NAME=FILE",
                       help="standoff span layer: a JSON file of "
                            "[start, end, name[, {attrs}]] rows "
                            "(with --streaming; repeatable)")

    p_s_add = store_sub.add_parser(
        "add", help="register a document",
        epilog="Registration is transactional (DESIGN.md §10); "
               "--streaming ingests without a DOM (§15).")
    p_s_add.add_argument("store_dir")
    p_s_add.add_argument("name", help="catalog name for the document")
    add_document_options(p_s_add)
    add_streaming_options(p_s_add)
    add_durability_option(p_s_add)

    p_s_get = store_sub.add_parser(
        "get", help="show (and optionally export) a stored document")
    p_s_get.add_argument("store_dir")
    p_s_get.add_argument("name", nargs="?", default=None,
                         help="document name (omit to list the catalog)")
    p_s_get.add_argument("--out", metavar="FILE",
                         help="export to .mhx (JSON) or .mhxb (binary)")

    p_s_query = store_sub.add_parser(
        "query", help="query a document's current snapshot")
    p_s_query.add_argument("store_dir")
    p_s_query.add_argument("name")
    p_s_query.add_argument("expression", help="the query text, or @file")
    p_s_query.add_argument("--mode", choices=("paper", "xquery"),
                           default="paper")

    p_s_update = store_sub.add_parser(
        "update", help="apply a transactional update batch")
    p_s_update.add_argument("store_dir")
    p_s_update.add_argument("name")
    p_s_update.add_argument("statements", nargs="+",
                            help="update statements (each may be @file); "
                                 "the batch is all-or-nothing")
    p_s_update.add_argument("--no-check", action="store_true",
                            help="skip the post-apply invariant checks")
    add_durability_option(p_s_update)

    p_s_compact = store_sub.add_parser(
        "compact", help="rewrite .mhxb files from the live snapshots")
    p_s_compact.add_argument("store_dir")
    p_s_compact.add_argument("name", nargs="?", default=None,
                             help="document name (omit for all)")
    add_durability_option(p_s_compact)

    p_s_verify = store_sub.add_parser(
        "verify", help="deep checksum scan of every stored document")
    p_s_verify.add_argument("store_dir")
    p_s_verify.add_argument("name", nargs="?", default=None,
                            help="document name (omit for all)")

    p_s_recover = store_sub.add_parser(
        "recover", help="run crash recovery and report what it did")
    p_s_recover.add_argument("store_dir")

    p_s_shard = store_sub.add_parser(
        "shard", help="partition a document into a sharded corpus",
        epilog="Cuts land at fragment boundaries valid in every "
               "hierarchy (DESIGN.md §13); --streaming cuts the node "
               "tables directly, skipping the DOM (§15).")
    p_s_shard.add_argument("store_dir")
    p_s_shard.add_argument("name", help="catalog name for the corpus")
    add_document_options(p_s_shard)
    add_streaming_options(p_s_shard)
    p_s_shard.add_argument("--generate", type=int, metavar="N_WORDS",
                           help="shard a seeded synthetic manuscript "
                                "of N_WORDS words instead of a file")
    p_s_shard.add_argument("--shards", type=int, default=4,
                           help="target shard count (default: 4; the "
                                "markup may offer fewer valid cuts)")
    add_durability_option(p_s_shard)

    p_s_cquery = store_sub.add_parser(
        "cquery", help="scatter-gather a collection(\"name\") query "
                       "over a sharded corpus")
    p_s_cquery.add_argument("store_dir")
    p_s_cquery.add_argument("expression", help="the query text, or @file")
    p_s_cquery.add_argument("--workers", type=int, default=1,
                            help="worker processes (1 = in-process "
                                 "serial scatter; default: 1)")
    p_s_cquery.add_argument("--no-prune", action="store_true",
                            help="dispatch to every shard, ignoring "
                                 "the manifest pruning statistics")
    p_s_cquery.add_argument("--stats", action="store_true",
                            help="print the execution shape (mode, "
                                 "shards pruned/executed) to stderr")

    p_serve = sub.add_parser(
        "serve", help="serve a document store over HTTP/JSON "
                      "(DESIGN.md §14)",
        epilog="Admission control, tenant quotas, snapshot pinning, "
               "and the drain protocol: DESIGN.md §14.")
    p_serve.add_argument("--root", required=True, metavar="STORE",
                         help="the document-store directory to serve")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="bind port (default: 0 = ephemeral; the "
                              "bound address is printed on startup)")
    p_serve.add_argument("--max-inflight", type=int, default=0,
                         help="concurrent query executions "
                              "(default: 0 = CPU count)")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="admitted requests allowed to wait for "
                              "an execution slot (default: 64)")
    p_serve.add_argument("--tenant-qps", type=float, default=0.0,
                         help="per-tenant sustained queries/second "
                              "(default: 0 = quotas disabled)")
    p_serve.add_argument("--body-limit", type=int, default=1 << 20,
                         help="request body bound in bytes "
                              "(default: 1 MiB)")
    p_serve.add_argument("--access-log", metavar="FILE",
                         help="append structured JSON access-log "
                              "lines here ('-' for stderr)")
    return parser


def _open_engine(args: argparse.Namespace) -> Engine:
    """An engine for ``--mhx FILE`` (routing ``.mhxb``) or ``--sample``."""
    if getattr(args, "sample", False):
        return Engine(boethius_document(validate=False))
    if getattr(args, "mhx", None):
        return Engine.from_mhx(args.mhx)
    raise ReproError("provide --mhx FILE or --sample")


def _load_document(args: argparse.Namespace) -> MultihierarchicalDocument:
    if getattr(args, "sample", False):
        return boethius_document(validate=False)
    if getattr(args, "mhx", None):
        path = Path(args.mhx)
        if path.suffix == ".mhxb":
            return Engine.from_mhxb(path).document
        return load_mhx(path)
    raise ReproError("provide --mhx FILE or --sample")


def _read_expression(expression: str) -> str:
    if expression.startswith("@"):
        return Path(expression[1:]).read_text(encoding="utf-8")
    return expression


def _read_spec_pairs(items: list[str], what: str) -> dict[str, str]:
    """``NAME=FILE`` specs → ``{name: file contents}``, in spec order."""
    pairs: dict[str, str] = {}
    for item in items:
        name, _sep, path = item.partition("=")
        if not _sep:
            raise ReproError(f"bad {what} spec {item!r}; "
                             f"expected NAME=FILE")
        pairs[name] = Path(path).read_text(encoding="utf-8")
    return pairs


def _read_layers(items: list[str]) -> dict[str, list]:
    """``--layer NAME=FILE`` specs → span rows per layer name.

    Each file holds a JSON array of ``[start, end, name]`` or
    ``[start, end, name, {attrs}]`` rows (character offsets into the
    base text) — the standoff shape NLP pipelines emit.
    """
    import json

    layers: dict[str, list] = {}
    for name, payload in _read_spec_pairs(items, "layer").items():
        try:
            rows = json.loads(payload)
        except ValueError as error:
            raise ReproError(
                f"layer {name!r} is not valid JSON: {error}") from error
        if not isinstance(rows, list):
            raise ReproError(
                f"layer {name!r} must be a JSON array of "
                f"[start, end, name[, attrs]] rows")
        layers[name] = [tuple(row) for row in rows]
    return layers


def _streaming_inputs(args: argparse.Namespace) -> tuple[str, dict, dict]:
    """``(text, sources, layers)`` for a ``--streaming`` invocation."""
    if not getattr(args, "text", None):
        raise ReproError("--streaming needs --text FILE")
    sources = _read_spec_pairs(args.encodings, "encoding")
    if not sources:
        raise ReproError(
            "--streaming needs at least one NAME=FILE encoding "
            "(standoff --layer layers attach on top of it)")
    text = Path(args.text).read_text(encoding="utf-8")
    return text, sources, _read_layers(args.layer)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    command = args.command
    if command == "experiments":
        print(format_reports(run_all()))
        return 0
    if command == "pack":
        text = Path(args.text).read_text(encoding="utf-8")
        sources = _read_spec_pairs(args.encodings, "encoding")
        document = MultihierarchicalDocument.from_xml(text, sources)
        if Path(args.output).suffix == ".mhxb":
            Engine(document).save_mhxb(args.output)
            kind = "binary .mhxb"
        else:
            save_mhx(document, args.output)
            kind = ".mhx"
        print(f"wrote {kind} {args.output} "
              f"({len(document)} hierarchies, {len(text)} characters)")
        return 0
    if command == "ingest":
        from repro.markup.streaming import stream_save

        text = Path(args.text).read_text(encoding="utf-8")
        sources = _read_spec_pairs(args.encodings, "encoding")
        layers = _read_layers(args.layer)
        size = stream_save(text, sources, args.output, layers=layers,
                           durability=args.durability)
        print(f"streamed {len(sources)} encodings + {len(layers)} "
              f"standoff layers into {args.output} "
              f"({len(text)} characters, {size} bytes)")
        return 0
    if command == "store":
        return _dispatch_store(args)
    if command == "serve":
        return _dispatch_serve(args)

    if command in ("query", "xpath"):
        engine = _open_engine(args)
        expression = _read_expression(args.expression)
        result = (engine.query(expression) if command == "query"
                  else engine.xpath(expression))
        print(result.serialize(mode=args.mode))
        return 0
    if command == "explain":
        engine = _open_engine(args)
        expression = _read_expression(args.expression)
        print(engine.explain(expression, xpath=args.xpath,
                             analyze=args.analyze))
        return 0
    if command == "update":
        engine = _open_engine(args)
        statement = _read_expression(args.statement)
        if args.explain:
            print(engine.explain_update(statement))
            return 0
        result = engine.update(statement, check=not args.no_check)
        summary = ", ".join(f"{kind}: {count}" for kind, count
                            in sorted(result.counts.items()))
        print(f"applied {result.applied} primitives "
              f"({summary or 'none'}); text delta "
              f"{result.text_delta:+d}; re-registered "
              f"{len(result.replaced_hierarchies)} hierarchies, "
              f"{result.renamed_in_place} in-place renames")
        if args.out:
            if Path(args.out).suffix == ".mhxb":
                engine.save_mhxb(args.out)
            else:
                engine.save_mhx(args.out)
            print(f"wrote {args.out} ({len(engine.document)} hierarchies, "
                  f"{len(engine.document.text)} characters)")
        return 0
    if command == "stats":
        for label, value in _open_engine(args).stats().rows():
            print(f"{label:28} {value}")
        return 0
    if command == "describe":
        print(_open_engine(args).describe())
        return 0
    if command == "render":
        print(_open_engine(args).to_dot())
        return 0
    if command == "leaves":
        engine = _open_engine(args)
        for index, leaf in enumerate(engine.goddag.leaves(), start=1):
            print(f"{index:6} [{leaf.start},{leaf.end}) {leaf.text!r}")
        return 0
    document = _load_document(args)
    if command == "validate":
        document.verify_alignment()
        if document.cmh is not None:
            document.attach_cmh(document.cmh)
        print(f"OK: {len(document)} hierarchies aligned over "
              f"{len(document.text)} characters")
        return 0
    if command == "fragment":
        print(serialize(fragment_document(document)))
        return 0
    if command == "milestone":
        print(serialize(milestone_document(document,
                                           primary=args.primary)))
        return 0
    raise ReproError(f"unknown command {command!r}")


def _dispatch_serve(args: argparse.Namespace) -> int:
    from repro.server import run_server

    access_log = None
    log_file = None
    if args.access_log == "-":
        access_log = sys.stderr
    elif args.access_log:
        log_file = open(args.access_log, "a", encoding="utf-8")
        access_log = log_file
    try:
        return run_server(args.root, host=args.host, port=args.port,
                          max_inflight=args.max_inflight,
                          max_queue=args.max_queue,
                          tenant_qps=args.tenant_qps,
                          body_limit=args.body_limit,
                          access_log=access_log)
    finally:
        if log_file is not None:
            log_file.close()


def _dispatch_store(args: argparse.Namespace) -> int:
    from repro.store import DocumentStore

    command = args.store_command
    if command == "init":
        DocumentStore.init(args.store_dir)
        print(f"initialized empty document store at {args.store_dir}")
        return 0
    store = DocumentStore(args.store_dir,
                          durability=getattr(args, "durability", "full"))
    if command == "add":
        if getattr(args, "streaming", False):
            text, sources, layers = _streaming_inputs(args)
            snapshot = store.add_streaming(args.name, text, sources,
                                           layers=layers)
        elif getattr(args, "sample", False):
            snapshot = store.add(args.name,
                                 boethius_document(validate=False))
        elif getattr(args, "mhx", None):
            snapshot = store.add(args.name, path=args.mhx)
        else:
            raise ReproError(
                "provide --mhx FILE, --sample, or --streaming")
        print(f"added {args.name!r} at version {snapshot.version} "
              f"({len(snapshot.engine.goddag.hierarchy_names)} "
              f"hierarchies)")
        return 0
    if command == "get":
        if args.name is None:
            for name, version, file_name in store.entries():
                print(f"{name:24} v{version:<6} {file_name}")
            return 0
        snapshot = store.snapshot(args.name)
        goddag = snapshot.engine.goddag
        print(f"{args.name}: version {snapshot.version}, "
              f"{len(goddag.hierarchy_names)} hierarchies "
              f"({', '.join(goddag.hierarchy_names)}), "
              f"{len(goddag.text)} characters")
        if args.out:
            if Path(args.out).suffix == ".mhxb":
                snapshot.engine.save_mhxb(args.out)
            else:
                snapshot.engine.save_mhx(args.out)
            print(f"exported to {args.out}")
        return 0
    if command == "query":
        expression = _read_expression(args.expression)
        result = store.query(args.name, expression)
        print(result.serialize(mode=args.mode))
        return 0
    if command == "update":
        statements = [_read_expression(statement)
                      for statement in args.statements]
        results = store.update(args.name, statements,
                               check=not args.no_check)
        applied = sum(result.applied for result in results)
        snapshot = store.snapshot(args.name)
        print(f"applied {applied} primitives across {len(results)} "
              f"statements; {args.name!r} now at version "
              f"{snapshot.version}")
        return 0
    if command == "compact":
        sizes = store.compact(args.name)
        for name, size in sizes.items():
            if isinstance(size, int):
                print(f"compacted {name:24} {size:>10} bytes")
            else:
                print(f"compacted {name:24} {size}")
        return 0
    if command == "verify":
        statuses = store.verify(args.name)
        corrupt = 0
        for name, status in statuses.items():
            print(f"{name:24} {status}")
            if not status.startswith("ok"):
                corrupt += 1
        print(f"verified {len(statuses)} document(s), {corrupt} with "
              f"problems")
        return 1 if corrupt else 0
    if command == "shard":
        document = None
        if args.generate is not None:
            from repro.corpus.generator import (
                GeneratorConfig,
                generate_document,
            )

            document = generate_document(
                GeneratorConfig(n_words=args.generate, seed=0))
        if getattr(args, "streaming", False):
            if document is not None:
                # stream the generated manuscript via its serialized
                # encodings — the differential exercise of DESIGN.md §15
                text = document.text
                sources = {name: document[name].to_xml()
                           for name in document.hierarchy_names}
                layers: dict = {}
            else:
                text, sources, layers = _streaming_inputs(args)
            stats = store.add_corpus_streaming(args.name, text, sources,
                                               shards=args.shards,
                                               layers=layers)
        else:
            if document is None:
                document = _load_document(args)
            stats = store.add_corpus(args.name, document,
                                     shards=args.shards)
        print(f"sharded {args.name!r} into {len(stats.shards)} shards "
              f"({stats.words} words, "
              f"{len(stats.hierarchy_names)} hierarchies)")
        for index, shard in enumerate(stats.shards):
            print(f"  shard {index:4} [{shard.lo},{shard.hi}) "
                  f"{shard.words} words, "
                  f"{len(shard.cards)} element names")
        return 0
    if command == "cquery":
        expression = _read_expression(args.expression)
        result = store.cquery(expression, workers=args.workers,
                              prune=not args.no_prune)
        print("".join(result.items))
        if args.stats:
            shape = (f"mode={result.mode} "
                     f"shards={result.shards_executed}/"
                     f"{result.shards_total} "
                     f"(pruned {result.shards_pruned}) "
                     f"workers={result.workers}")
            if result.reason:
                shape += f" reason={result.reason}"
            print(shape, file=sys.stderr)
        store.close()
        return 0
    if command == "recover":
        report = store.recovery
        print(f"manifest loaded from {report['manifest']}")
        for label in ("swept", "adopted", "quarantined"):
            items = report[label]
            print(f"{label}: {', '.join(items) if items else 'nothing'}")
        for name, entry in store.quarantined.items():
            print(f"quarantined {name!r}: {entry['reason']}")
        return 0
    raise ReproError(f"unknown store command {command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
