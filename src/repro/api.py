"""High-level public API: the :class:`Engine` facade and ``.mhx`` IO.

Typical use::

    from repro import Engine

    engine = Engine.from_xml(text, {"physical": xml1, "structural": xml2})
    result = engine.query('for $l in /descendant::line return string($l)')
    print(result.serialize())

An ``.mhx`` file is a JSON container bundling the base text, the
hierarchy encodings, and (optionally) the CMH DTD sources — a portable
interchange format for multihierarchical documents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.cmh import ConcurrentMarkupHierarchy, MultihierarchicalDocument
from repro.core.goddag import KyGoddag, collect, describe, to_dot
from repro.core.goddag.stats import GoddagStats
from repro.core.lang import parse_query, parse_xpath
from repro.core.runtime import (
    QueryOptions,
    evaluate_query,
    serialize_items,
)

MHX_FORMAT = "mhx-1"


class QueryResult:
    """The result of one query: an item sequence plus serialization."""

    def __init__(self, items: list) -> None:
        self.items = items

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int):
        return self.items[index]

    def strings(self) -> list[str]:
        """Each item serialized individually."""
        from repro.core.runtime.serializer import serialize_item

        return [serialize_item(item) for item in self.items]

    def serialize(self, mode: str = "paper") -> str:
        """The whole sequence as one string (see serializer modes)."""
        return serialize_items(self.items, mode=mode)


class Engine:
    """A query engine bound to one multihierarchical document."""

    def __init__(self, document: MultihierarchicalDocument,
                 options: QueryOptions | None = None) -> None:
        self.document = document
        self.options = options or QueryOptions()
        self.goddag = KyGoddag.build(document)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str, sources: dict[str, str],
                 options: QueryOptions | None = None) -> "Engine":
        """Build from the base text and XML encoding strings."""
        document = MultihierarchicalDocument.from_xml(text, sources)
        return cls(document, options=options)

    @classmethod
    def from_mhx(cls, path: str | Path,
                 options: QueryOptions | None = None) -> "Engine":
        """Load a ``.mhx`` JSON container."""
        document = load_mhx(path)
        return cls(document, options=options)

    # -- queries --------------------------------------------------------------

    def query(self, text: str, variables: dict[str, list] | None = None
              ) -> QueryResult:
        """Evaluate an extended XQuery expression."""
        items = evaluate_query(self.goddag, text, variables=variables,
                               options=self.options)
        return QueryResult(items)

    def xpath(self, text: str, variables: dict[str, list] | None = None
              ) -> QueryResult:
        """Evaluate a pure (extended) XPath expression."""
        expr = parse_xpath(text)
        items = evaluate_query(self.goddag, expr, variables=variables,
                               options=self.options)
        return QueryResult(items)

    def compile(self, text: str):
        """Parse a query once for repeated execution."""
        return parse_query(text)

    def execute(self, compiled, variables: dict[str, list] | None = None
                ) -> QueryResult:
        """Run a pre-compiled query AST."""
        items = evaluate_query(self.goddag, compiled, variables=variables,
                               options=self.options)
        return QueryResult(items)

    # -- inspection ----------------------------------------------------------

    def stats(self) -> GoddagStats:
        """The KyGODDAG node/edge inventory."""
        return collect(self.goddag)

    def describe(self) -> str:
        """A human-readable outline of the KyGODDAG."""
        return describe(self.goddag)

    def to_dot(self) -> str:
        """GraphViz DOT of the KyGODDAG (Figure 2 style)."""
        return to_dot(self.goddag)

    def save_mhx(self, path: str | Path) -> None:
        """Write the document to a ``.mhx`` container."""
        save_mhx(self.document, path)


# ---------------------------------------------------------------------------
# .mhx container IO
# ---------------------------------------------------------------------------


def save_mhx(document: MultihierarchicalDocument,
             path: str | Path) -> None:
    """Serialize a multihierarchical document to a ``.mhx`` JSON file."""
    payload: dict[str, Any] = {
        "format": MHX_FORMAT,
        "text": document.text,
        "hierarchies": {
            name: hierarchy.to_xml()
            for name, hierarchy in document.hierarchies.items()
        },
    }
    Path(path).write_text(
        json.dumps(payload, ensure_ascii=False, indent=2),
        encoding="utf-8")


def load_mhx(path: str | Path) -> MultihierarchicalDocument:
    """Load a multihierarchical document from a ``.mhx`` JSON file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read .mhx file {path}: {error}") from error
    if payload.get("format") != MHX_FORMAT:
        raise ReproError(
            f"{path} is not an {MHX_FORMAT} container "
            f"(format={payload.get('format')!r})")
    document = MultihierarchicalDocument.from_xml(
        payload["text"], payload["hierarchies"])
    dtds = payload.get("dtds")
    if dtds:
        cmh = ConcurrentMarkupHierarchy.from_sources(
            document.root_name, dtds)
        document.attach_cmh(cmh)
    return document
