"""High-level public API: the :class:`Engine` facade and ``.mhx`` IO.

Typical use::

    from repro import Engine

    engine = Engine.from_xml(text, {"physical": xml1, "structural": xml2})
    result = engine.query('for $l in /descendant::line return string($l)')
    print(result.serialize())

An ``.mhx`` file is a JSON container bundling the base text, the
hierarchy encodings, and (optionally) the CMH DTD sources — a portable
interchange format for multihierarchical documents.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.cmh import ConcurrentMarkupHierarchy, MultihierarchicalDocument
from repro.core.goddag import KyGoddag, collect, describe, to_dot
from repro.core.goddag.stats import GoddagStats
from repro.core.lang import parse_xpath
from repro.core.plan import CompiledQuery, compile_query
from repro.core.runtime import (
    QueryOptions,
    QueryStats,
    evaluate_query,
    serialize_items,
)
from repro.core.update import (
    CompiledUpdate,
    UpdateApplyStats,
    apply_pending,
    compile_update,
)

#: Public alias: what :meth:`Engine.update` returns.
UpdateResult = UpdateApplyStats

MHX_FORMAT = "mhx-1"

#: Compiled plans kept per engine (LRU over query text + options).
PLAN_CACHE_SIZE = 256


class QueryResult:
    """The result of one query: an item sequence plus serialization."""

    def __init__(self, items: list,
                 stats: QueryStats | None = None) -> None:
        self.items = items
        #: per-call evaluation counters (None for legacy-path results)
        self.stats = stats

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int):
        return self.items[index]

    def strings(self) -> list[str]:
        """Each item serialized individually."""
        from repro.core.runtime.serializer import serialize_item

        return [serialize_item(item) for item in self.items]

    def serialize(self, mode: str = "paper") -> str:
        """The whole sequence as one string (see serializer modes)."""
        return serialize_items(self.items, mode=mode)


class Engine:
    """A query engine bound to one multihierarchical document.

    Queries run through the compilation pipeline (parse → rewrite →
    plan → set-at-a-time execution, DESIGN.md §8); compiled plans are
    cached in an LRU keyed by query text + options, so repeated
    ``query()`` calls skip everything up to execution.  Pass
    ``use_pipeline=False`` to route through the legacy tree-walking
    evaluator instead (the differential-testing oracle).
    """

    def __init__(self, document: MultihierarchicalDocument,
                 options: QueryOptions | None = None,
                 use_pipeline: bool = True,
                 use_cost: bool = True) -> None:
        self._document = document
        self._document_loader = None
        self.options = options or QueryOptions()
        self.goddag = KyGoddag.build(document)
        self.use_pipeline = use_pipeline
        self.use_cost = use_cost
        self._plans: OrderedDict[tuple, CompiledQuery] = OrderedDict()
        self._plans_lock = threading.Lock()
        self._plans_version = self.goddag.version

    @property
    def document(self) -> MultihierarchicalDocument:
        """The DOM-side document (materialized lazily after a ``.mhxb``
        cold load — queries need only the KyGODDAG; updates and
        serialization fault the DOM in on first use).

        Safe to race on a shared frozen engine: the loader is captured
        in a local before use, ``_document`` is assigned before the
        loader is cleared, and a duplicate materialization just wastes
        work (both results are equivalent).
        """
        document = self._document
        if document is None:
            loader = self._document_loader
            if loader is None:
                return self._document  # another thread just finished
            document = loader()
            self._document = document
            self._document_loader = None
        return document

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_parts(cls, goddag: KyGoddag, *,
                   document: MultihierarchicalDocument | None = None,
                   document_loader=None,
                   options: QueryOptions | None = None,
                   use_pipeline: bool = True,
                   use_cost: bool = True) -> "Engine":
        """Assemble an engine around an already-built KyGODDAG.

        The ``.mhxb`` cold-load and store-fork paths: the goddag was
        reconstructed (or cloned) elsewhere, so nothing is rebuilt
        here.  Exactly one of ``document`` / ``document_loader`` must
        be provided; the loader defers DOM materialization to first
        access.
        """
        if (document is None) == (document_loader is None):
            raise ReproError(
                "from_parts needs exactly one of document / "
                "document_loader")
        self = cls.__new__(cls)
        self._document = document
        self._document_loader = document_loader
        self.options = options or QueryOptions()
        self.goddag = goddag
        self.use_pipeline = use_pipeline
        self.use_cost = use_cost
        self._plans = OrderedDict()
        self._plans_lock = threading.Lock()
        self._plans_version = goddag.version
        return self

    @classmethod
    def from_xml(cls, text: str, sources: dict[str, str],
                 options: QueryOptions | None = None) -> "Engine":
        """Build from the base text and XML encoding strings."""
        document = MultihierarchicalDocument.from_xml(text, sources)
        return cls(document, options=options)

    @classmethod
    def from_mhx(cls, path: str | Path,
                 options: QueryOptions | None = None) -> "Engine":
        """Load a ``.mhx`` JSON container (or, routed by extension and
        content sniffing, a binary ``.mhxb`` container)."""
        from repro.store.mhxb import looks_like_mhxb

        path = Path(path)
        if path.suffix == ".mhxb" or looks_like_mhxb(path):
            return cls.from_mhxb(path, options=options)
        document = load_mhx(path)
        return cls(document, options=options)

    @classmethod
    def from_mhxb(cls, path: str | Path,
                  options: QueryOptions | None = None,
                  verify: bool = False) -> "Engine":
        """Cold-load a binary ``.mhxb`` container (mmap-backed; no XML
        re-parse, no index rebuild — DESIGN.md §10).  ``verify=True``
        deep-scans every block checksum first (DESIGN.md §12)."""
        from repro.store.mhxb import load_engine

        return load_engine(path, options=options, verify=verify)

    # -- queries --------------------------------------------------------------

    def query(self, text: str, variables: dict[str, list] | None = None
              ) -> QueryResult:
        """Evaluate an extended XQuery expression."""
        return self._run(text, variables, xpath=False)

    def xpath(self, text: str, variables: dict[str, list] | None = None
              ) -> QueryResult:
        """Evaluate a pure (extended) XPath expression."""
        return self._run(text, variables, xpath=True)

    @property
    def version(self) -> int:
        """The document version: bumped by every applied mutation."""
        return self.goddag.version

    def _sync_plan_cache(self) -> None:
        """Drop every cached plan when the document version moved.

        The stale-plan guard of the update engine (DESIGN.md §9): a
        plan compiled before a mutation is never served afterwards, and
        — unlike keying the LRU by version — dead pre-mutation entries
        don't linger in the cache.  The deliberate cost: each mutation
        forces one recompile per query text used afterwards (sub-ms;
        mutations are rare next to queries, and correctness under a
        future document-dependent compile step is worth more than a
        warm cache across versions).
        """
        if self._plans_version != self.goddag.version:
            with self._plans_lock:
                if self._plans_version != self.goddag.version:
                    self._plans.clear()
                    self._plans_version = self.goddag.version

    def _cached_plan(self, mode: str, text: str, factory):
        """LRU lookup keyed by (mode, text, options), version-synced.

        The short lock makes the LRU bookkeeping safe for concurrent
        plain readers sharing a frozen snapshot engine directly
        (compilation runs outside it; a racing duplicate compile is
        wasted work, never a wrong result).
        """
        self._sync_plan_cache()
        key = (mode, text, self.options)
        with self._plans_lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                return cached
        compiled = factory()
        with self._plans_lock:
            racing = self._plans.get(key)
            if racing is not None:
                return racing
            self._plans[key] = compiled
            if len(self._plans) > PLAN_CACHE_SIZE:
                self._plans.popitem(last=False)
        return compiled

    def plan_stats(self):
        """Plan-time document statistics (DESIGN.md §16), cached on the
        goddag keyed by version.  A ``.mhxb`` cold load restores the
        persisted block; otherwise (or after a mutation) this collects
        vectorized off the span-index columns."""
        from repro.core.goddag.stats import collect_plan_stats

        goddag = self.goddag
        cached = getattr(goddag, "_plan_stats", None)
        if cached is None or cached.version != goddag.version:
            cached = collect_plan_stats(goddag)
            goddag._plan_stats = cached
        return cached

    def compile(self, text: str, xpath: bool = False) -> CompiledQuery:
        """Compile a query through the pipeline (LRU-cached).

        With ``use_cost`` (the default) the statistics-driven cost
        pass runs over the plan; the engine LRU needs no statistics
        key — it is per-document and version-synced, so every entry
        was costed against the live statistics.
        """
        stats = self.plan_stats() if self.use_cost else None
        return self._cached_plan(
            "xpath" if xpath else "query", text,
            lambda: compile_query(text, xpath=xpath, stats=stats))

    def compile_update(self, text: str) -> CompiledUpdate:
        """Compile an update statement (LRU-cached like queries)."""
        return self._cached_plan("update", text,
                                 lambda: compile_update(text))

    def explain(self, text: str, xpath: bool = False,
                analyze: bool = False) -> str:
        """The compiled pipeline report for one query.

        ``analyze=True`` additionally *runs* the query and renders the
        recorded actual cardinality next to each estimate
        (``[est=… act=…]``, misestimates flagged ``!``).
        """
        compiled = self.compile(text, xpath=xpath)
        if not analyze:
            return compiled.explain()
        result = self.execute(compiled)
        return compiled.explain(
            actuals=result.stats.op_actuals,
            miss_factor=self.options.cost_fallback_factor)

    def explain_update(self, text: str) -> str:
        """The compiled pipeline report for one update statement."""
        return self.compile_update(text).explain()

    # -- updates --------------------------------------------------------------

    def update(self, statement: str | CompiledUpdate,
               variables: dict[str, list] | None = None,
               check: bool = True) -> UpdateResult:
        """Apply an update statement transactionally (DESIGN.md §9).

        Targets evaluate against the pre-state snapshot into a pending
        update list (conflicts raise before anything mutates); the list
        applies atomically through the incremental KyGODDAG paths.
        With ``check`` (the default) the full structural invariant set
        is verified after the apply — pass ``check=False`` on trusted
        hot paths.
        """
        if isinstance(statement, CompiledUpdate):
            compiled = statement
        else:
            compiled = self.compile_update(statement)
        pending = compiled.pending(self.goddag, variables=variables,
                                   options=self.options)
        return apply_pending(self.document, self.goddag, pending,
                             check=check)

    def _evaluate_guarded(self, text: str | None, run):
        """Run one evaluation under the frozen-snapshot read latch.

        Unfrozen engines (the single-owner case) evaluate directly.  A
        frozen engine may be shared by concurrent snapshot readers, so
        plain queries take the latch's shared side and queries that
        mutate membership (``analyze-string`` temporaries — or a
        pre-parsed AST whose text is unknown) take the exclusive side
        (DESIGN.md §10).
        """
        latch = self.goddag.read_latch
        if latch is None:
            return run()
        from repro.util.concurrency import needs_exclusive_evaluation

        exclusive = needs_exclusive_evaluation(text)
        latch.acquire(exclusive)
        try:
            return run()
        finally:
            latch.release(exclusive)

    @staticmethod
    def _finalize_stats(compiled: CompiledQuery,
                        stats: QueryStats) -> None:
        """Stamp the costed plan's bottom-line est/act onto the per-call
        stats (observability: access logs, /statz — DESIGN.md §16)."""
        if not compiled.costed:
            return
        from repro.core.plan.cost import final_estimate

        final = final_estimate(compiled.plan)
        if final is not None:
            stats.est_rows = final[1]
            stats.act_rows = stats.op_actuals.get(final[0])

    def execute(self, compiled, variables: dict[str, list] | None = None
                ) -> QueryResult:
        """Run a :class:`CompiledQuery` (or a pre-parsed legacy AST)."""
        if isinstance(compiled, CompiledQuery):
            with self._plans_lock:
                cached = any(plan is compiled
                             for plan in self._plans.values())
            stats = QueryStats(plan_cache_hit=cached)
            items = self._evaluate_guarded(
                compiled.text,
                lambda: compiled.execute(self.goddag,
                                         variables=variables,
                                         options=self.options,
                                         stats=stats))
            self._finalize_stats(compiled, stats)
            return QueryResult(items, stats)
        items = self._evaluate_guarded(
            None,
            lambda: evaluate_query(self.goddag, compiled,
                                   variables=variables,
                                   options=self.options))
        return QueryResult(items)

    def _run(self, text: str, variables: dict[str, list] | None,
             xpath: bool) -> QueryResult:
        if not self.use_pipeline:
            expr = parse_xpath(text) if xpath else text
            stats = QueryStats()
            items = self._evaluate_guarded(
                text,
                lambda: evaluate_query(self.goddag, expr,
                                       variables=variables,
                                       options=self.options,
                                       stats=stats))
            return QueryResult(items, stats)
        self._sync_plan_cache()
        key = ("xpath" if xpath else "query", text, self.options)
        stats = QueryStats(plan_cache_hit=key in self._plans)
        compiled = self.compile(text, xpath=xpath)
        items = self._evaluate_guarded(
            text,
            lambda: compiled.execute(self.goddag, variables=variables,
                                     options=self.options, stats=stats))
        self._finalize_stats(compiled, stats)
        return QueryResult(items, stats)

    # -- inspection ----------------------------------------------------------

    def stats(self) -> GoddagStats:
        """The KyGODDAG node/edge inventory."""
        return collect(self.goddag)

    def describe(self) -> str:
        """A human-readable outline of the KyGODDAG."""
        return describe(self.goddag)

    def to_dot(self) -> str:
        """GraphViz DOT of the KyGODDAG (Figure 2 style)."""
        return to_dot(self.goddag)

    def save_mhx(self, path: str | Path) -> None:
        """Write the document to a ``.mhx`` container."""
        save_mhx(self.document, path)

    def save_mhxb(self, path: str | Path, *,
                  durability: str = "off") -> int:
        """Write the full engine state to a binary ``.mhxb`` container
        (DESIGN.md §10); returns the file size in bytes.

        ``durability="full"`` fsyncs the temp file and directory around
        the atomic rename (DESIGN.md §12)."""
        from repro.store.mhxb import save_engine

        return save_engine(self, path, durability=durability)


# ---------------------------------------------------------------------------
# .mhx container IO
# ---------------------------------------------------------------------------


def save_mhx(document: MultihierarchicalDocument,
             path: str | Path) -> None:
    """Serialize a multihierarchical document to a ``.mhx`` JSON file.

    When the document carries an attached CMH whose DTD sources are
    known, they are bundled under the ``dtds`` key so ``load_mhx``
    restores (and re-validates) the schema — the round-trip is
    lossless.
    """
    payload: dict[str, Any] = {
        "format": MHX_FORMAT,
        "text": document.text,
        "hierarchies": {
            name: hierarchy.to_xml()
            for name, hierarchy in document.hierarchies.items()
        },
    }
    if document.cmh is not None:
        sources = document.cmh.sources()
        if sources is not None:
            payload["dtds"] = sources
    Path(path).write_text(
        json.dumps(payload, ensure_ascii=False, indent=2),
        encoding="utf-8")


def load_mhx(path: str | Path) -> MultihierarchicalDocument:
    """Load a multihierarchical document from a ``.mhx`` JSON file."""
    from repro.store.mhxb import looks_like_mhxb

    if looks_like_mhxb(path):
        raise ReproError(
            f"{path} is a binary .mhxb container, not a JSON .mhx file "
            f"— load it with Engine.from_mhxb (or Engine.from_mhx, "
            f"which routes by content)")
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read .mhx file {path}: {error}") from error
    if payload.get("format") != MHX_FORMAT:
        raise ReproError(
            f"{path} is not an {MHX_FORMAT} container "
            f"(format={payload.get('format')!r})")
    document = MultihierarchicalDocument.from_xml(
        payload["text"], payload["hierarchies"])
    dtds = payload.get("dtds")
    if dtds:
        cmh = ConcurrentMarkupHierarchy.from_sources(
            document.root_name, dtds)
        document.attach_cmh(cmh)
    return document
