"""The tree-walking evaluator for the extended XQuery language.

``evaluate_query`` is the public entry point: it parses (or accepts a
pre-parsed AST), installs the default function library, runs the query
against a KyGODDAG with the shared root as the initial context item,
and — per Definition 4(5) — tears down every temporary hierarchy
created by ``analyze-string`` when evaluation finishes.  Result items
that live in temporary hierarchies are snapshotted to constructed DOM
nodes first, so callers never hold dangling KyGODDAG references (this
is why the paper notes such queries return "a string or a sequence of
strings").
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import QueryEvaluationError
from repro.markup import dom
from repro.core.goddag.axes import emits_document_order, evaluate_axis
from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import (
    GAttr,
    GComment,
    GElement,
    GLeaf,
    GNode,
    GPi,
    GRoot,
    GText,
)
from repro.core.goddag.temp import TemporaryHierarchyManager
from repro.core.lang import ast
from repro.core.lang.parser import parse_query
from repro.core.runtime import values
from repro.core.runtime.context import EvalContext, QueryOptions, QueryStats

#: Axes whose predicate positions count *away* from the context node.
REVERSE_AXES = frozenset({
    "ancestor", "ancestor-or-self", "preceding", "preceding-sibling",
    "parent", "xancestor", "xpreceding",
})

#: Deprecated alias: sort-avoidance counters of the most recent
#: ``evaluate_query`` call, mirrored from its per-call
#: :class:`~repro.core.runtime.context.QueryStats` object.  New code
#: should read ``QueryResult.stats`` (or pass ``stats=`` explicitly).
LAST_QUERY_STATS: dict[str, int] = {"axis_steps": 0, "ordered_steps": 0,
                                    "batched_steps": 0}


def evaluate_query(goddag: KyGoddag, query: str | ast.Expr,
                   variables: dict[str, list] | None = None,
                   options: QueryOptions | None = None,
                   functions: dict[str, Any] | None = None,
                   keep_temporaries: bool = False,
                   stats: "QueryStats | None" = None) -> list:
    """Evaluate ``query`` against ``goddag`` and return the item list.

    ``stats`` may be a caller-owned :class:`QueryStats` that the call
    fills in; otherwise a fresh one is created (and mirrored into the
    deprecated ``LAST_QUERY_STATS`` either way).
    """
    from repro.core.runtime.functions import default_registry

    expr = parse_query(query) if isinstance(query, str) else query
    options = options or QueryOptions()
    registry = dict(default_registry())
    if functions:
        registry.update(functions)
    manager = TemporaryHierarchyManager(goddag)
    context = EvalContext(goddag, registry, options, manager,
                          variables=variables, stats=stats)
    context.item = goddag.root
    context.position = 1
    context.size = 1
    try:
        result = evaluate(expr, context)
        if not keep_temporaries:
            result = [_snapshot(item, goddag) for item in result]
        return result
    finally:
        LAST_QUERY_STATS.clear()
        LAST_QUERY_STATS.update(context.stats.as_dict())
        if not keep_temporaries:
            manager.drop_all()


def _snapshot(item: Any, goddag: KyGoddag) -> Any:
    """Copy items living in temporary hierarchies out of the KyGODDAG."""
    if (isinstance(item, GNode) and item.hierarchy is not None
            and goddag.is_temporary(item.hierarchy)):
        return copy_gnode(item)
    return item


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


def evaluate(expr: ast.Expr, ctx: EvalContext) -> list:
    """Evaluate any AST node to a sequence."""
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        raise QueryEvaluationError(
            f"no evaluator for {type(expr).__name__}")
    return handler(expr, ctx)


def _eval_literal(expr: ast.Literal, ctx: EvalContext) -> list:
    return [expr.value]


def _eval_var(expr: ast.VarRef, ctx: EvalContext) -> list:
    return list(ctx.variable(expr.name))


def _eval_context_item(expr: ast.ContextItem, ctx: EvalContext) -> list:
    return [ctx.context_item()]


def _eval_sequence(expr: ast.SequenceExpr, ctx: EvalContext) -> list:
    out: list = []
    for item in expr.items:
        out.extend(evaluate(item, ctx))
    return out


def _eval_range(expr: ast.RangeExpr, ctx: EvalContext) -> list:
    lower = _singleton_number(evaluate(expr.lower, ctx))
    upper = _singleton_number(evaluate(expr.upper, ctx))
    if lower is None or upper is None:
        return []
    return list(range(int(lower), int(upper) + 1))


def _eval_or(expr: ast.OrExpr, ctx: EvalContext) -> list:
    for operand in expr.operands:
        if values.effective_boolean_value(evaluate(operand, ctx)):
            return [True]
    return [False]


def _eval_and(expr: ast.AndExpr, ctx: EvalContext) -> list:
    for operand in expr.operands:
        if not values.effective_boolean_value(evaluate(operand, ctx)):
            return [False]
    return [True]


def _eval_comparison(expr: ast.ComparisonExpr, ctx: EvalContext) -> list:
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if expr.style == "general":
        return [values.general_compare(expr.op, left, right)]
    if expr.style == "value":
        return values.value_compare(expr.op, left, right)
    # node comparisons: is, <<, >>
    if not left or not right:
        return []
    left_node = values.singleton_node(left, f"'{expr.op}'")
    right_node = values.singleton_node(right, f"'{expr.op}'")
    if expr.op == "is":
        return [left_node is right_node]
    if not isinstance(left_node, GNode) or not isinstance(right_node, GNode):
        raise QueryEvaluationError(
            "document-order comparison requires KyGODDAG nodes")
    left_key = ctx.goddag.order_key(left_node)
    right_key = ctx.goddag.order_key(right_node)
    return [left_key < right_key if expr.op == "<<" else
            left_key > right_key]


def _eval_arithmetic(expr: ast.ArithmeticExpr, ctx: EvalContext) -> list:
    left = _singleton_number(evaluate(expr.left, ctx))
    right = _singleton_number(evaluate(expr.right, ctx))
    if left is None or right is None:
        return []
    op = expr.op
    try:
        if op == "+":
            return [left + right]
        if op == "-":
            return [left - right]
        if op == "*":
            return [left * right]
        if op == "div":
            return [left / right]
        if op == "idiv":
            return [int(left / right)]
        if op == "mod":
            result = math.fmod(left, right)
            if isinstance(left, int) and isinstance(right, int):
                return [int(result)]
            return [result]
    except ZeroDivisionError:
        raise QueryEvaluationError("division by zero") from None
    raise QueryEvaluationError(f"unknown arithmetic operator {op!r}")


def _eval_unary(expr: ast.UnaryExpr, ctx: EvalContext) -> list:
    value = _singleton_number(evaluate(expr.operand, ctx))
    if value is None:
        return []
    return [-value if expr.op == "-" else value]


def _eval_union(expr: ast.UnionExpr, ctx: EvalContext) -> list:
    nodes: list = []
    for operand in expr.operands:
        nodes.extend(_require_gnodes(evaluate(operand, ctx), "union"))
    return ctx.goddag.sort_nodes(nodes)


def _eval_intersect_except(expr: ast.IntersectExceptExpr,
                           ctx: EvalContext) -> list:
    left = _require_gnodes(evaluate(expr.left, ctx), expr.op)
    right = _require_gnodes(evaluate(expr.right, ctx), expr.op)
    right_ids = {id(node) for node in right}
    if expr.op == "intersect":
        kept = [node for node in left if id(node) in right_ids]
    else:
        kept = [node for node in left if id(node) not in right_ids]
    return ctx.goddag.sort_nodes(kept)


def _eval_if(expr: ast.IfExpr, ctx: EvalContext) -> list:
    if values.effective_boolean_value(evaluate(expr.condition, ctx)):
        return evaluate(expr.then, ctx)
    return evaluate(expr.otherwise, ctx)


def _eval_quantified(expr: ast.QuantifiedExpr, ctx: EvalContext) -> list:
    def recurse(index: int, current: EvalContext) -> bool:
        if index == len(expr.bindings):
            return values.effective_boolean_value(
                evaluate(expr.condition, current))
        variable, sequence_expr = expr.bindings[index]
        for item in evaluate(sequence_expr, current):
            bound = current.with_variable(variable, [item])
            satisfied = recurse(index + 1, bound)
            if satisfied and expr.quantifier == "some":
                return True
            if not satisfied and expr.quantifier == "every":
                return False
        return expr.quantifier == "every"

    return [recurse(0, ctx)]


# ---------------------------------------------------------------------------
# FLWOR
# ---------------------------------------------------------------------------


def _eval_flwor(expr: ast.FLWORExpr, ctx: EvalContext) -> list:
    tuples: list[EvalContext] = [ctx]
    for clause in expr.clauses:
        if isinstance(clause, ast.ForClause):
            expanded: list[EvalContext] = []
            for current in tuples:
                sequence = evaluate(clause.sequence, current)
                for position, item in enumerate(sequence, start=1):
                    bound = current.with_variable(clause.variable, [item])
                    if clause.position_variable:
                        bound = bound.with_variable(
                            clause.position_variable, [position])
                    expanded.append(bound)
            tuples = expanded
        elif isinstance(clause, ast.LetClause):
            tuples = [
                current.with_variable(clause.variable,
                                      evaluate(clause.expression, current))
                for current in tuples
            ]
        elif isinstance(clause, ast.WhereClause):
            tuples = [
                current for current in tuples
                if values.effective_boolean_value(
                    evaluate(clause.condition, current))
            ]
        elif isinstance(clause, ast.OrderByClause):
            tuples = _order_tuples(tuples, clause)
        else:  # pragma: no cover - parser guarantees clause types
            raise QueryEvaluationError(
                f"unknown FLWOR clause {type(clause).__name__}")
    out: list = []
    for current in tuples:
        out.extend(evaluate(expr.return_expr, current))
    return out


def _order_tuples(tuples: list[EvalContext],
                  clause: ast.OrderByClause) -> list[EvalContext]:
    """Stable multi-key ordering: sort by each spec from last to first."""
    decorated = list(tuples)
    for spec in reversed(clause.specs):
        keyed = [(_order_key(evaluate(spec.key, current), spec), current)
                 for current in decorated]
        keyed.sort(key=lambda pair: pair[0], reverse=spec.descending)
        decorated = [current for _key, current in keyed]
    return decorated


def _order_key(sequence: list, spec: ast.OrderSpec) -> tuple:
    return order_key_value(sequence, spec.empty_least)


def order_key_value(sequence: list, empty_least: bool) -> tuple:
    """A totally ordered key: (empty-rank, type-rank, value).

    ``empty least`` makes the empty sequence the smallest key — first
    ascending, last descending; ``empty greatest`` the largest.  The
    direction flip itself is handled by the reverse sort.  Shared by
    the tree-walking evaluator and the pipeline's materialized FLWOR
    so the two order-by semantics can never drift apart.
    """
    if not sequence:
        return (0 if empty_least else 2, 0, 0)
    value = values.atomize(sequence[0])
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 0, float(value))
    return (1, 1, str(value))


# ---------------------------------------------------------------------------
# paths
# ---------------------------------------------------------------------------


def _eval_path(expr: ast.PathExpr, ctx: EvalContext) -> list:
    if expr.anchor == "root":
        current: list = [ctx.goddag.root]
    elif expr.anchor == "descendant":
        current = [ctx.goddag.root]
        current = _apply_step(
            ast.Step("descendant-or-self", ast.KindTest("node")),
            current, ctx)
    elif expr.primary is not None:
        current = evaluate(expr.primary, ctx)
    else:
        current = [ctx.context_item()]
    for step in expr.steps:
        current = _apply_step(step, current, ctx)
    return current


def _apply_step(step, inputs: list, ctx: EvalContext) -> list:
    if isinstance(step, ast.ExprStep):
        return _apply_expr_step(step, inputs, ctx)
    size = len(inputs)
    if size == 1:
        # Single-node context: the step result needs no cross-input
        # merge, and for forward axes ``_step_from`` already returns it
        # in document order (reverse axes return the exact reversal).
        item = inputs[0]
        _require_navigable(item)
        nodes, direction = _step_from(step, item,
                                      ctx.with_focus(item, 1, 1))
        if direction == "reverse":
            return nodes[::-1]
        return nodes
    out: list = []
    seen: set[int] = set()
    for position, item in enumerate(inputs, start=1):
        _require_navigable(item)
        focus = ctx.with_focus(item, position, size)
        for node in _step_from(step, item, focus)[0]:
            if id(node) not in seen:
                seen.add(id(node))
                out.append(node)
    return ctx.goddag.sort_nodes(out)


def _require_navigable(item) -> None:
    if not isinstance(item, GNode):
        raise QueryEvaluationError(
            "path steps navigate KyGODDAG nodes; got "
            f"{type(item).__name__} (constructed nodes are not "
            f"navigable)")


def _apply_expr_step(step: ast.ExprStep, inputs: list,
                     ctx: EvalContext) -> list:
    """XPath 2.0 expression step: evaluate once per input node.

    All-node results merge in document order; all-atomic results keep
    iteration order; mixing the two is an error (per the XQuery spec).
    """
    out: list = []
    size = len(inputs)
    for position, item in enumerate(inputs, start=1):
        if not isinstance(item, GNode):
            raise QueryEvaluationError(
                "path steps navigate KyGODDAG nodes; got "
                f"{type(item).__name__}")
        focus = ctx.with_focus(item, position, size)
        out.extend(evaluate(step.expression, focus))
    node_flags = [isinstance(value, GNode) for value in out]
    if all(node_flags):
        return ctx.goddag.sort_nodes(out)
    if any(node_flags):
        raise QueryEvaluationError(
            "a path step may not mix nodes and atomic values")
    return out


def _step_from(step: ast.Step, node: GNode,
               ctx: EvalContext) -> tuple[list, str]:
    """One axis step from one node: ``(nodes, direction)``.

    ``direction`` is ``"forward"`` (nodes ascend in document order) or
    ``"reverse"`` (exact reversal, as predicates count positions away
    from the context node on reverse axes).  Slice-based forward axes
    emit document order directly (:func:`emits_document_order`), so the
    per-step sort is skipped for them — tracked in ``ctx.stats``.
    """
    name_hint = (step.test.name
                 if isinstance(step.test, ast.NameTest) else None)
    candidates = evaluate_axis(ctx.goddag, step.axis, node, name_hint)
    candidates = [c for c in candidates
                  if _matches_test(step.test, step.axis, c, ctx)]
    ctx.stats.axis_steps += 1
    if emits_document_order(step.axis, node):
        ctx.stats.ordered_steps += 1
        direction = "forward"
    else:
        candidates = ctx.goddag.sort_nodes(candidates)
        if step.axis in REVERSE_AXES:
            candidates.reverse()
            direction = "reverse"
        else:
            direction = "forward"
    for predicate in step.predicates:
        candidates = _filter_predicate(candidates, predicate, ctx)
    return candidates, direction


def _filter_predicate(candidates: list, predicate: ast.Expr,
                      ctx: EvalContext) -> list:
    kept: list = []
    size = len(candidates)
    for position, node in enumerate(candidates, start=1):
        focus = ctx.with_focus(node, position, size)
        result = evaluate(predicate, focus)
        if _predicate_holds(result, position):
            kept.append(node)
    return kept


def _predicate_holds(result: list, position: int) -> bool:
    if (len(result) == 1 and isinstance(result[0], (int, float))
            and not isinstance(result[0], bool)):
        return float(result[0]) == float(position)
    return values.effective_boolean_value(result)


def _matches_test(test: ast.NodeTest, axis: str, node: GNode,
                  ctx: EvalContext) -> bool:
    principal_attribute = axis == "attribute"
    if isinstance(test, ast.NameTest):
        if principal_attribute:
            return isinstance(node, GAttr) and node.name == test.name
        return (isinstance(node, (GElement, GRoot))
                and node.name == test.name)
    if isinstance(test, ast.WildcardTest):
        if principal_attribute:
            return isinstance(node, GAttr)
        if not isinstance(node, (GElement, GRoot)):
            return False
        return _in_hierarchies(node, test.hierarchies, ctx)
    kind = test.kind
    if kind == "node":
        return _in_hierarchies(node, test.hierarchies, ctx)
    if kind == "text":
        return (isinstance(node, GText)
                and _in_hierarchies(node, test.hierarchies, ctx))
    if kind == "leaf":
        return isinstance(node, GLeaf)
    if kind == "comment":
        return isinstance(node, GComment)
    if kind == "processing-instruction":
        if not isinstance(node, GPi):
            return False
        return test.target is None or node.target == test.target
    raise QueryEvaluationError(f"unknown node test kind {test.kind!r}")


def _in_hierarchies(node: GNode, hierarchies: tuple[str, ...],
                    ctx: EvalContext) -> bool:
    if not hierarchies:
        return True
    return node_in_hierarchies(node, hierarchies, ctx.goddag)


def node_in_hierarchies(node: GNode, hierarchies: tuple[str, ...],
                        goddag: KyGoddag) -> bool:
    """Definition 2 hierarchy restriction.

    The shared root and the shared leaves belong to *every* hierarchy;
    unknown hierarchy names are reported (typo safety).  Shared by the
    tree-walking evaluator and the pipeline's node-test closures.
    """
    for name in hierarchies:
        if not goddag.has_hierarchy(name):
            raise QueryEvaluationError(
                f"unknown hierarchy '{name}' in node test")
    if node.hierarchy is None:  # root or leaf: present in all hierarchies
        return True
    return node.hierarchy in hierarchies


# ---------------------------------------------------------------------------
# filters and functions
# ---------------------------------------------------------------------------


def _eval_filter(expr: ast.FilterExpr, ctx: EvalContext) -> list:
    current = evaluate(expr.primary, ctx)
    for predicate in expr.predicates:
        kept: list = []
        size = len(current)
        for position, item in enumerate(current, start=1):
            focus = ctx.with_focus(item, position, size)
            result = evaluate(predicate, focus)
            if _predicate_holds(result, position):
                kept.append(item)
        current = kept
    return current


def _eval_function_call(expr: ast.FunctionCall, ctx: EvalContext) -> list:
    function = ctx.functions.get(expr.name)
    if function is None:
        raise QueryEvaluationError(f"unknown function {expr.name}()")
    args = [evaluate(arg, ctx) for arg in expr.args]
    return function(ctx, args)


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------


def _eval_constructor(expr: ast.ElementConstructor,
                      ctx: EvalContext) -> list:
    element = dom.Element(expr.name)
    for name, template in expr.attributes:
        element.set(name, _attribute_value(template, ctx))
    for piece in expr.content:
        if isinstance(piece, str):
            element.append(dom.Text(piece))
        else:
            _append_content(element, evaluate(piece, ctx))
    return [element]


def _attribute_value(template: ast.AttributeValue, ctx: EvalContext) -> str:
    parts: list[str] = []
    for piece in template.parts:
        if isinstance(piece, str):
            parts.append(piece)
        else:
            items = evaluate(piece, ctx)
            parts.append(" ".join(values.string_value(values.atomize(item))
                                  for item in items))
    return "".join(parts)


def _append_content(element: dom.Element, items: list) -> None:
    """XQuery content rules: nodes are copied; adjacent atomics are
    joined with single spaces into one text node."""
    pending_atoms: list[str] = []

    def flush() -> None:
        if pending_atoms:
            element.append(dom.Text(" ".join(pending_atoms)))
            pending_atoms.clear()

    for item in items:
        if isinstance(item, GAttr):
            element.set(item.name, item.value)
        elif isinstance(item, dom.Attr):
            element.set(item.name, item.value)
        elif isinstance(item, GNode):
            flush()
            element.append(copy_gnode(item))
        elif isinstance(item, dom.Node):
            flush()
            element.append(copy_dom(item))
        else:
            pending_atoms.append(values.string_value(item))
    flush()


def copy_gnode(node: GNode) -> dom.Node:
    """Deep-copy a KyGODDAG node into constructed DOM content."""
    if isinstance(node, GElement):
        element = dom.Element(node.name, dict(node.attributes))
        for child in node.children:
            element.append(copy_gnode(child))
        return element
    if isinstance(node, (GText, GLeaf)):
        return dom.Text(node.string_value())
    if isinstance(node, GComment):
        return dom.Comment(node.data)
    if isinstance(node, GPi):
        return dom.ProcessingInstruction(node.target, node.data)
    raise QueryEvaluationError(
        f"cannot copy a {node.kind} node into constructed content")


def copy_dom(node: dom.Node) -> dom.Node:
    """Deep-copy constructed DOM content."""
    if isinstance(node, dom.Element):
        element = dom.Element(node.name, dict(node.attributes))
        for child in node.children:
            element.append(copy_dom(child))
        return element
    if isinstance(node, dom.Text):
        return dom.Text(node.data)
    if isinstance(node, dom.Comment):
        return dom.Comment(node.data)
    if isinstance(node, dom.ProcessingInstruction):
        return dom.ProcessingInstruction(node.target, node.data)
    if isinstance(node, dom.Document):
        raise QueryEvaluationError(
            "cannot copy a whole document into constructed content")
    raise QueryEvaluationError(
        f"cannot copy node {type(node).__name__} into constructed content")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _singleton_number(sequence: list) -> float | int | None:
    if not sequence:
        return None
    if len(sequence) > 1:
        raise QueryEvaluationError(
            "arithmetic requires singleton operands")
    value = values.atomize(sequence[0])
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    number = values.to_number(value)
    return number


def _require_gnodes(sequence: list, op: str) -> list:
    for item in sequence:
        if not isinstance(item, GNode):
            raise QueryEvaluationError(
                f"'{op}' operates on KyGODDAG node sequences")
    return sequence


_HANDLERS = {
    ast.Literal: _eval_literal,
    ast.VarRef: _eval_var,
    ast.ContextItem: _eval_context_item,
    ast.SequenceExpr: _eval_sequence,
    ast.RangeExpr: _eval_range,
    ast.OrExpr: _eval_or,
    ast.AndExpr: _eval_and,
    ast.ComparisonExpr: _eval_comparison,
    ast.ArithmeticExpr: _eval_arithmetic,
    ast.UnaryExpr: _eval_unary,
    ast.UnionExpr: _eval_union,
    ast.IntersectExceptExpr: _eval_intersect_except,
    ast.IfExpr: _eval_if,
    ast.QuantifiedExpr: _eval_quantified,
    ast.FLWORExpr: _eval_flwor,
    ast.PathExpr: _eval_path,
    ast.FilterExpr: _eval_filter,
    ast.FunctionCall: _eval_function_call,
    ast.ElementConstructor: _eval_constructor,
}
