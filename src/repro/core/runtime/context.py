"""Static and dynamic evaluation context.

:class:`QueryOptions` collects the documented compatibility knobs;
:class:`EvalContext` carries the focus (context item, position, size),
variable bindings, and the per-query temporary-hierarchy manager that
implements Definition 4(5) (temporary hierarchies die with the query).
Contexts are immutable-ish: focus/variable changes produce shallow
copies so sibling iterations cannot interfere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import QueryEvaluationError
from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.temp import TemporaryHierarchyManager


@dataclass
class QueryStats:
    """Per-call evaluation counters (DESIGN.md §5, §8).

    One instance lives for exactly one query evaluation; the engine
    attaches it to the :class:`~repro.api.QueryResult`.  The mutable
    module global ``evaluator.LAST_QUERY_STATS`` survives only as a
    deprecated alias mirroring the most recent call.

    Attributes
    ----------
    axis_steps:
        Axis location steps evaluated (one per context item in the
        tree-walking evaluator, one per *batch* in the pipeline).
    ordered_steps:
        Of those, steps served straight from an already-document-ordered
        axis slice — no sort needed.
    batched_steps:
        Pipeline only: steps evaluated set-at-a-time over a whole
        context sequence in one batched axis call.
    join_steps:
        Pipeline only: vectorized interval-join executions — one per
        extended-axis step run through the join engine plus one per
        batched semi-join existence probe (DESIGN.md §11).
    batched_extended_steps:
        Pipeline only: extended-axis steps actually served by the
        set-at-a-time join kernels instead of per-node span arithmetic
        (a subset of ``join_steps``; single-context steps delegated to
        the per-node walk count in ``join_steps`` only, and predicated
        steps that fall back to the per-node machinery in neither).
    plan_cache_hit:
        Pipeline only: the compiled plan came from the engine's LRU
        cache instead of a fresh parse/rewrite/plan run.
    op_actuals:
        Costed plans only (DESIGN.md §16): actual output cardinality
        per annotated operator, keyed by ``StepOp.op_id`` (summed when
        a nested plan runs the step more than once).  Feed it to
        ``CompiledQuery.explain(actuals=…)`` for ``est=…/act=…`` lines.
    cost_fallbacks:
        Times the adaptive executor abandoned a cost-chosen probe
        order mid-plan because an estimate missed by more than
        ``QueryOptions.cost_fallback_factor``.
    est_rows / act_rows:
        The costed plan's bottom-line estimated cardinality and the
        matching recorded actual (``None`` on mechanical plans) —
        surfaced per-request by the server's access log and /statz.
    """

    axis_steps: int = 0
    ordered_steps: int = 0
    batched_steps: int = 0
    join_steps: int = 0
    batched_extended_steps: int = 0
    plan_cache_hit: bool = False
    op_actuals: dict[int, int] = field(default_factory=dict)
    cost_fallbacks: int = 0
    est_rows: float | None = None
    act_rows: int | None = None

    # -- dict-style compatibility (the legacy stats were a plain dict) --

    def as_dict(self) -> dict[str, int]:
        return {
            "axis_steps": self.axis_steps,
            "ordered_steps": self.ordered_steps,
            "batched_steps": self.batched_steps,
            "join_steps": self.join_steps,
            "batched_extended_steps": self.batched_extended_steps,
        }

    def __getitem__(self, key: str) -> int:
        return self.as_dict()[key]

    def keys(self):
        return self.as_dict().keys()


@dataclass(frozen=True)
class QueryOptions:
    """Documented behavior knobs (DESIGN.md §3).

    Attributes
    ----------
    analyze_strip_dotstar:
        Strip redundant leading/trailing ``.*``/``.*?`` from
        ``analyze-string`` patterns (paper-compat; Example 1 passes
        ``.*un<a>a</a>we.*`` but expects ``<m>`` around ``unawe`` only).
    analyze_wrapper / analyze_match:
        Element names for the temporary hierarchy wrapper and match
        tags (``res``/``m`` per Definition 4).
    analyze_hierarchy_base:
        Base name for temporary hierarchies ("say, rest").
    cost_fallback_factor:
        Adaptive-execution tolerance (DESIGN.md §16): when a costed
        plan's recorded actual cardinality misses its estimate by more
        than this factor, the executor falls back to the safe source
        ordering for the rest of the plan.
    """

    analyze_strip_dotstar: bool = True
    analyze_wrapper: str = "res"
    analyze_match: str = "m"
    analyze_hierarchy_base: str = "rest"
    cost_fallback_factor: float = 8.0


class EvalContext:
    """The dynamic context of one evaluation focus."""

    __slots__ = ("goddag", "item", "position", "size", "variables",
                 "functions", "options", "temp_manager", "stats")

    def __init__(self, goddag: KyGoddag, functions: dict[str, Any],
                 options: QueryOptions,
                 temp_manager: TemporaryHierarchyManager,
                 variables: dict[str, list] | None = None,
                 stats: QueryStats | None = None) -> None:
        self.goddag = goddag
        self.item = None
        self.position = 0
        self.size = 0
        self.variables: dict[str, list] = dict(variables or {})
        self.functions = functions
        self.options = options
        self.temp_manager = temp_manager
        # Shared across all focus clones of one query: the evaluator's
        # sort-avoidance instrumentation (DESIGN.md §5).
        self.stats: QueryStats = stats if stats is not None else QueryStats()

    def _clone(self) -> "EvalContext":
        clone = EvalContext.__new__(EvalContext)
        clone.goddag = self.goddag
        clone.item = self.item
        clone.position = self.position
        clone.size = self.size
        clone.variables = self.variables
        clone.functions = self.functions
        clone.options = self.options
        clone.temp_manager = self.temp_manager
        clone.stats = self.stats
        return clone

    def with_focus(self, item: Any, position: int, size: int
                   ) -> "EvalContext":
        """A context focused on one item of an iteration."""
        clone = self._clone()
        clone.item = item
        clone.position = position
        clone.size = size
        return clone

    def with_variable(self, name: str, value: list) -> "EvalContext":
        """A context with one additional variable binding."""
        clone = self._clone()
        clone.variables = dict(self.variables)
        clone.variables[name] = value
        return clone

    def with_variables(self, bindings: dict[str, list]) -> "EvalContext":
        clone = self._clone()
        clone.variables = dict(self.variables)
        clone.variables.update(bindings)
        return clone

    def variable(self, name: str) -> list:
        if name not in self.variables:
            raise QueryEvaluationError(f"undefined variable ${name}")
        return self.variables[name]

    def context_item(self) -> Any:
        if self.item is None:
            raise QueryEvaluationError("the context item is undefined here")
        return self.item
