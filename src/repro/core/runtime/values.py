"""The value model of the extended query language.

A value is a flat sequence (Python list) of *items*.  An item is

* a KyGODDAG node (:class:`~repro.core.goddag.nodes.GNode`),
* a constructed DOM node (:class:`~repro.markup.dom.Node`) produced by
  an element constructor, or
* an atomic: ``str``, ``int``, ``float``, or ``bool``.

Conversions follow XPath pragmatics: nodes atomize to their string
value; general comparisons are existential with numeric promotion when
either side is numeric (matching how XPath 1.0 queries behave over
untyped document-centric XML).
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import QueryEvaluationError
from repro.markup import dom
from repro.core.goddag.nodes import GNode

Item = Any
Sequence = list


def is_node(item: Item) -> bool:
    """True for KyGODDAG and constructed DOM nodes."""
    return isinstance(item, (GNode, dom.Node))


def string_value(item: Item) -> str:
    """The string value of any item."""
    if isinstance(item, GNode):
        return item.string_value()
    if isinstance(item, dom.Node):
        return item.text_content()
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, (int, float)):
        return format_number(item)
    return str(item)


def atomize(item: Item) -> Item:
    """Node → string value; atomics pass through."""
    if is_node(item):
        return string_value(item)
    return item


def atomize_sequence(sequence: Sequence) -> Sequence:
    return [atomize(item) for item in sequence]


def effective_boolean_value(sequence: Sequence) -> bool:
    """The XQuery effective boolean value of a sequence."""
    if not sequence:
        return False
    first = sequence[0]
    if is_node(first):
        return True
    if len(sequence) > 1:
        raise QueryEvaluationError(
            "effective boolean value of a multi-item atomic sequence is "
            "undefined")
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return bool(first) and not (isinstance(first, float)
                                    and math.isnan(first))
    if isinstance(first, str):
        return bool(first)
    raise QueryEvaluationError(
        f"no effective boolean value for {type(first).__name__}")


def to_number(item: Item) -> float:
    """XPath ``number()`` semantics: unconvertible values become NaN."""
    value = atomize(item)
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value).strip())
    except ValueError:
        return math.nan


def format_number(value: int | float) -> str:
    """XPath-style number formatting: integral floats print bare."""
    if isinstance(value, bool):  # bool is an int subclass; guard first
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


# ---------------------------------------------------------------------------
# comparisons
# ---------------------------------------------------------------------------

_OPERATOR_NAMES = {
    "=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}


def compare_atomic(op: str, left: Item, right: Item) -> bool:
    """Compare two atomics under XPath coercion rules.

    ``op`` is a value-comparison name (``eq``/``ne``/``lt``/…).  When
    either side is numeric (or boolean), both sides are promoted to
    numbers; otherwise both are compared as strings.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        left_value, right_value = bool_of_atomic(left), bool_of_atomic(right)
        return _apply(op, left_value, right_value)
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        left_number, right_number = to_number(left), to_number(right)
        if math.isnan(left_number) or math.isnan(right_number):
            return op == "ne"
        return _apply(op, left_number, right_number)
    return _apply(op, str(left), str(right))


def bool_of_atomic(value: Item) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    return bool(str(value))


def _apply(op: str, left: Any, right: Any) -> bool:
    if op == "eq":
        return left == right
    if op == "ne":
        return left != right
    if op == "lt":
        return left < right
    if op == "le":
        return left <= right
    if op == "gt":
        return left > right
    if op == "ge":
        return left >= right
    raise QueryEvaluationError(f"unknown comparison operator {op!r}")


def general_compare(op: str, left: Sequence, right: Sequence) -> bool:
    """Existential general comparison (``=``, ``!=``, ``<``, …)."""
    name = _OPERATOR_NAMES[op]
    left_atoms = atomize_sequence(left)
    right_atoms = atomize_sequence(right)
    for left_value in left_atoms:
        for right_value in right_atoms:
            if compare_atomic(name, left_value, right_value):
                return True
    return False


def value_compare(op: str, left: Sequence, right: Sequence) -> Sequence:
    """Value comparison (``eq`` …): empty operand yields empty."""
    if not left or not right:
        return []
    if len(left) > 1 or len(right) > 1:
        raise QueryEvaluationError(
            f"value comparison '{op}' requires singleton operands")
    return [compare_atomic(op, atomize(left[0]), atomize(right[0]))]


def singleton_node(sequence: Sequence, what: str) -> Item:
    """The single node of a sequence, or raise a clear dynamic error."""
    if len(sequence) != 1 or not is_node(sequence[0]):
        raise QueryEvaluationError(f"{what} requires a single node operand")
    return sequence[0]
