"""The query runtime: evaluator, function library, serialization."""

from repro.core.runtime.context import EvalContext, QueryOptions, QueryStats
from repro.core.runtime.evaluator import evaluate, evaluate_query
from repro.core.runtime.functions import default_registry
from repro.core.runtime.serializer import serialize_item, serialize_items

__all__ = [
    "EvalContext",
    "QueryOptions",
    "QueryStats",
    "evaluate",
    "evaluate_query",
    "default_registry",
    "serialize_item",
    "serialize_items",
]
