"""``fn:analyze-string`` — Definition 4 of the paper.

``analyze-string($node, $pattern)``:

1. creates a new KyGODDAG hierarchy with a fresh name (``rest``,
   ``rest2``, …);
2. wraps the content of ``$node`` in a ``<res>`` element of that
   hierarchy;
3. tags each non-overlapping match of ``$pattern`` with ``<m>``;
4. when ``$pattern`` is a well-formed XML fragment
   (``"xxx<a>xxx</a>xxx"``), each embedded tag pair becomes a regex
   group and each group's matches are tagged with the originating
   element name (nested tags nest);
5. the temporary hierarchy is deleted after the whole query finishes
   (handled by the evaluator's
   :class:`~repro.core.goddag.temp.TemporaryHierarchyManager`).

Because the match markup is a real (temporary) hierarchy, the search
results participate in *all* extended axes — the paper's central trick
for relating text matches to structure even within a single-hierarchy
document.

Paper-compat note: the paper passes ``.*unawe.*`` yet expects ``<m>``
around ``unawe`` only (Example 1), so redundant leading/trailing
``.*``/``.*?`` are stripped by default
(:attr:`QueryOptions.analyze_strip_dotstar`); Python's ``re`` stands in
for XML Schema regular expressions (DESIGN.md §3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import FunctionError
from repro.cmh.spans import Span, SpanSet
from repro.core.goddag.nodes import GNode
from repro.core.runtime.context import EvalContext

_TAG = re.compile(r"</?([A-Za-z_][\w.\-]*)>")

_FLAG_LETTERS = {"i": re.IGNORECASE, "s": re.DOTALL, "m": re.MULTILINE,
                 "x": re.VERBOSE}


def _translate_flags(flags: str) -> int:
    """XPath flag letters to ``re`` flags (shared with fn:matches)."""
    out = 0
    for flag in flags:
        if flag not in _FLAG_LETTERS:
            raise FunctionError(f"unsupported regex flag {flag!r}")
        out |= _FLAG_LETTERS[flag]
    return out


@dataclass(frozen=True)
class PatternTemplate:
    """A compiled analyze-string pattern.

    ``groups`` maps each synthesized regex group name to the element
    name it originated from and its nesting depth in the fragment.
    """

    regex: re.Pattern
    groups: tuple[tuple[str, str, int], ...]
    source: str


def compile_pattern(pattern: str, strip_dotstar: bool,
                    flags: str = "") -> PatternTemplate:
    """Translate an (optionally XML-fragment) pattern to a regex.

    Start tags become named groups ``(?P<_agN>``, end tags become
    ``)``; everything else is passed through as regex source.
    ``flags`` uses the XPath letters (``i``/``s``/``m``/``x``).
    """
    parts: list[str] = []
    groups: list[tuple[str, str, int]] = []
    stack: list[str] = []
    cursor = 0
    counter = 0
    for match in _TAG.finditer(pattern):
        parts.append(pattern[cursor:match.start()])
        cursor = match.end()
        name = match.group(1)
        if match.group(0).startswith("</"):
            if not stack or stack[-1] != name:
                raise FunctionError(
                    f"analyze-string pattern has mismatched tag "
                    f"</{name}>: {pattern!r}")
            stack.pop()
            parts.append(")")
        else:
            group_name = f"_ag{counter}"
            counter += 1
            groups.append((group_name, name, len(stack)))
            stack.append(name)
            parts.append(f"(?P<{group_name}>")
    if stack:
        raise FunctionError(
            f"analyze-string pattern has unclosed tag <{stack[-1]}>: "
            f"{pattern!r}")
    parts.append(pattern[cursor:])
    source = "".join(parts)
    if strip_dotstar:
        source = _strip_anchoring_dotstars(source)
    try:
        regex = re.compile(source, _translate_flags(flags))
    except re.error as error:
        raise FunctionError(
            f"invalid analyze-string pattern {pattern!r}: {error}"
        ) from error
    return PatternTemplate(regex, tuple(groups), source)


def _strip_anchoring_dotstars(source: str) -> str:
    """Remove redundant leading/trailing ``.*`` / ``.*?`` (paper-compat)."""
    stripped = source
    while True:
        if stripped.startswith(".*?"):
            stripped = stripped[3:]
        elif stripped.startswith(".*"):
            stripped = stripped[2:]
        else:
            break
    while True:
        if stripped.endswith(".*?") and not stripped.endswith("\\.*?"):
            stripped = stripped[:-3]
        elif stripped.endswith(".*") and not stripped.endswith("\\.*"):
            stripped = stripped[:-2]
        else:
            break
    return stripped if stripped else source


def analyze_string(ctx: EvalContext, node: GNode, pattern: str,
                   flags: str = "") -> list:
    """Execute Definition 4; returns the temporary ``<res>`` element.

    ``flags`` extends the paper's signature with the XPath 2.0 regex
    flags (``i``/``s``/``m``/``x``), matching our ``matches()``.
    """
    if not isinstance(node, GNode):
        raise FunctionError(
            "analyze-string requires a KyGODDAG node as its first argument")
    options = ctx.options
    template = compile_pattern(pattern, options.analyze_strip_dotstar,
                               flags)
    goddag = ctx.goddag
    base = node.start
    content = goddag.text[node.start:node.end]
    spans = SpanSet(goddag.text)
    spans.add(Span(node.start, node.end, options.analyze_wrapper,
                   depth_hint=0))
    for match in template.regex.finditer(content):
        if match.start() == match.end():
            continue  # zero-length matches produce no markup
        spans.add(Span(base + match.start(), base + match.end(),
                       options.analyze_match, depth_hint=1))
        for group_name, element_name, depth in template.groups:
            group_start, group_end = match.span(group_name)
            if group_start == -1 or group_start == group_end:
                continue
            spans.add(Span(base + group_start, base + group_end,
                           element_name, depth_hint=2 + depth))
    hierarchy = ctx.temp_manager.create(
        spans, base_name=options.analyze_hierarchy_base)
    return [ctx.temp_manager.top_element(hierarchy)]
