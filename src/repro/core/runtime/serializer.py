"""Serialization of query results.

Two modes, reflecting the paper vs the XQuery recommendation:

* ``"paper"`` (default): items are concatenated with **no** separator.
  This is how the paper prints results — query I.1 returns the two
  line strings ``…sin`` and ``gallice…`` and displays
  ``…singallice…`` (the concatenation).
* ``"xquery"``: adjacent atomic values are separated by a single
  space, per the XSLT/XQuery serialization rules.

KyGODDAG elements serialize within their own hierarchy; leaves and
text nodes serialize as escaped character data; constructed DOM nodes
use the standard XML serializer.
"""

from __future__ import annotations

from typing import Any

from repro.markup import dom
from repro.markup.serializer import escape_attribute, escape_text, serialize
from repro.core.goddag.nodes import GAttr, GLeaf, GNode, GRoot, GText
from repro.core.goddag.render import serialize_node
from repro.core.runtime import values


def serialize_item(item: Any) -> str:
    """Serialize one result item to its textual form."""
    if isinstance(item, GAttr):
        return f'{item.name}="{escape_attribute(item.value)}"'
    if isinstance(item, (GText, GLeaf)):
        return escape_text(item.string_value())
    if isinstance(item, GRoot):
        parts = [serialize_node(item, hierarchy)
                 for hierarchy in item.goddag.hierarchy_names]
        return "".join(parts)
    if isinstance(item, GNode):
        return serialize_node(item)
    if isinstance(item, dom.Text):
        return escape_text(item.data)
    if isinstance(item, dom.Node):
        return serialize(item)
    return values.string_value(item)


def serialize_items(items: list, mode: str = "paper") -> str:
    """Serialize a result sequence; see module docstring for modes."""
    if mode not in ("paper", "xquery"):
        raise ValueError(f"unknown serialization mode {mode!r}")
    parts: list[str] = []
    previous_atomic = False
    for item in items:
        atomic = not values.is_node(item)
        if mode == "xquery" and atomic and previous_atomic:
            parts.append(" ")
        parts.append(serialize_item(item))
        previous_atomic = atomic
    return "".join(parts)
