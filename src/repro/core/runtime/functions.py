"""The built-in function library.

Covers the XPath/XQuery core functions the paper's queries use plus the
standard everyday set (strings, numbers, sequences, booleans), the
paper's ``analyze-string`` (Definition 4), and documented KyGODDAG
extensions:

* ``hierarchy($node?)`` — the owning hierarchy name (empty string for
  the shared root and leaves).  Lets queries disambiguate element names
  that occur in several hierarchies (e.g. the paper's ``<res>`` name
  collision, EXPERIMENTS.md Q-III.1).
* ``leaves($node?)`` — the node's leaf sequence (``leaves(n)``).
* ``span($node?)`` — the ``(start, end)`` character span.
* ``hierarchies()`` — all hierarchy names of the document.

Functions receive ``(ctx, args)`` where ``args`` is a list of already
evaluated sequences; they return a sequence.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable

from repro.errors import FunctionError
from repro.core.goddag.nodes import GAttr, GElement, GNode, GPi, GRoot
from repro.core.runtime import values
from repro.core.runtime.analyze import analyze_string
from repro.core.runtime.context import EvalContext

Registry = dict[str, Callable[[EvalContext, list], list]]


def default_registry() -> Registry:
    """A fresh copy of the built-in function registry."""
    return dict(_REGISTRY)


_REGISTRY: Registry = {}


def _register(name: str, min_args: int, max_args: int | None):
    """Register a builtin with arity checking under ``name``."""

    def decorator(fn: Callable[..., list]):
        def wrapper(ctx: EvalContext, args: list) -> list:
            if len(args) < min_args or (max_args is not None
                                        and len(args) > max_args):
                expected = (str(min_args) if min_args == max_args
                            else f"{min_args}..{max_args or 'N'}")
                raise FunctionError(
                    f"{name}() expects {expected} arguments, "
                    f"got {len(args)}")
            return fn(ctx, args)

        _REGISTRY[name] = wrapper
        return fn

    return decorator


def _context_or_arg(ctx: EvalContext, args: list, index: int = 0) -> list:
    """The ``index``-th argument, defaulting to the context item."""
    if len(args) > index:
        return args[index]
    return [ctx.context_item()]


def _one_string(sequence: list) -> str:
    """The string value of an optional singleton ('' when empty)."""
    if not sequence:
        return ""
    if len(sequence) > 1:
        raise FunctionError("expected at most one item, got a sequence")
    return values.string_value(values.atomize(sequence[0]))


def _one_number(sequence: list) -> float:
    if not sequence:
        return math.nan
    if len(sequence) > 1:
        raise FunctionError("expected at most one item, got a sequence")
    return values.to_number(sequence[0])


def _translate_flags(flags: str) -> int:
    mapping = {"i": re.IGNORECASE, "s": re.DOTALL, "m": re.MULTILINE,
               "x": re.VERBOSE}
    out = 0
    for flag in flags:
        if flag not in mapping:
            raise FunctionError(f"unsupported regex flag {flag!r}")
        out |= mapping[flag]
    return out


def _compile(pattern: str, flags: str) -> re.Pattern:
    try:
        return re.compile(pattern, _translate_flags(flags))
    except re.error as error:
        raise FunctionError(
            f"invalid regular expression {pattern!r}: {error}") from error


# ---------------------------------------------------------------------------
# focus / node functions
# ---------------------------------------------------------------------------


@_register("position", 0, 0)
def _fn_position(ctx: EvalContext, args: list) -> list:
    return [ctx.position]


@_register("last", 0, 0)
def _fn_last(ctx: EvalContext, args: list) -> list:
    return [ctx.size]


@_register("count", 1, 1)
def _fn_count(ctx: EvalContext, args: list) -> list:
    return [len(args[0])]


@_register("name", 0, 1)
def _fn_name(ctx: EvalContext, args: list) -> list:
    sequence = _context_or_arg(ctx, args)
    if not sequence:
        return [""]
    node = sequence[0]
    if isinstance(node, (GElement, GRoot, GAttr, GPi)):
        return [node.name]
    return [""]


@_register("local-name", 0, 1)
def _fn_local_name(ctx: EvalContext, args: list) -> list:
    name = _fn_name(ctx, args)[0]
    _prefix, _sep, local = name.rpartition(":")
    return [local]


@_register("root", 0, 1)
def _fn_root(ctx: EvalContext, args: list) -> list:
    return [ctx.goddag.root]


@_register("hierarchy", 0, 1)
def _fn_hierarchy(ctx: EvalContext, args: list) -> list:
    """Extension: the hierarchy owning a node ('' for root/leaves)."""
    sequence = _context_or_arg(ctx, args)
    if not sequence:
        return [""]
    node = sequence[0]
    if isinstance(node, GNode) and node.hierarchy is not None:
        return [node.hierarchy]
    return [""]


@_register("hierarchies", 0, 0)
def _fn_hierarchies(ctx: EvalContext, args: list) -> list:
    """Extension: all hierarchy names, in registration order."""
    return list(ctx.goddag.hierarchy_names)


@_register("leaves", 0, 1)
def _fn_leaves(ctx: EvalContext, args: list) -> list:
    """Extension: ``leaves(n)`` — the node's leaf sequence."""
    sequence = _context_or_arg(ctx, args)
    if not sequence:
        return []
    node = sequence[0]
    if not isinstance(node, GNode):
        raise FunctionError("leaves() requires a KyGODDAG node")
    return list(ctx.goddag.leaves_of(node))


@_register("span", 0, 1)
def _fn_span(ctx: EvalContext, args: list) -> list:
    """Extension: the (start, end) character span of a node."""
    sequence = _context_or_arg(ctx, args)
    if not sequence:
        return []
    node = sequence[0]
    if not isinstance(node, GNode):
        raise FunctionError("span() requires a KyGODDAG node")
    return [node.start, node.end]


@_register("analyze-string", 2, 3)
def _fn_analyze_string(ctx: EvalContext, args: list) -> list:
    node_sequence = args[0]
    if len(node_sequence) != 1 or not isinstance(node_sequence[0], GNode):
        raise FunctionError(
            "analyze-string() requires a single KyGODDAG node")
    flags = _one_string(args[2]) if len(args) > 2 else ""
    return analyze_string(ctx, node_sequence[0], _one_string(args[1]),
                          flags)


# ---------------------------------------------------------------------------
# strings
# ---------------------------------------------------------------------------


@_register("string", 0, 1)
def _fn_string(ctx: EvalContext, args: list) -> list:
    return [_one_string(_context_or_arg(ctx, args))]


@_register("concat", 2, None)
def _fn_concat(ctx: EvalContext, args: list) -> list:
    return ["".join(_one_string(arg) for arg in args)]


@_register("string-join", 1, 2)
def _fn_string_join(ctx: EvalContext, args: list) -> list:
    separator = _one_string(args[1]) if len(args) > 1 else ""
    return [separator.join(
        values.string_value(values.atomize(item)) for item in args[0])]


@_register("contains", 2, 2)
def _fn_contains(ctx: EvalContext, args: list) -> list:
    return [_one_string(args[1]) in _one_string(args[0])]


@_register("starts-with", 2, 2)
def _fn_starts_with(ctx: EvalContext, args: list) -> list:
    return [_one_string(args[0]).startswith(_one_string(args[1]))]


@_register("ends-with", 2, 2)
def _fn_ends_with(ctx: EvalContext, args: list) -> list:
    return [_one_string(args[0]).endswith(_one_string(args[1]))]


@_register("substring", 2, 3)
def _fn_substring(ctx: EvalContext, args: list) -> list:
    text = _one_string(args[0])
    start = _one_number(args[1])
    if math.isnan(start):
        return [""]
    begin = round(start) - 1
    if len(args) > 2:
        length = _one_number(args[2])
        if math.isnan(length):
            return [""]
        stop = begin + round(length)
    else:
        stop = len(text)
    begin = max(begin, 0)
    stop = max(stop, begin)
    return [text[begin:stop]]


@_register("substring-before", 2, 2)
def _fn_substring_before(ctx: EvalContext, args: list) -> list:
    text, needle = _one_string(args[0]), _one_string(args[1])
    index = text.find(needle)
    return [text[:index] if index != -1 else ""]


@_register("substring-after", 2, 2)
def _fn_substring_after(ctx: EvalContext, args: list) -> list:
    text, needle = _one_string(args[0]), _one_string(args[1])
    index = text.find(needle)
    return [text[index + len(needle):] if index != -1 else ""]


@_register("string-length", 0, 1)
def _fn_string_length(ctx: EvalContext, args: list) -> list:
    return [len(_one_string(_context_or_arg(ctx, args)))]


@_register("normalize-space", 0, 1)
def _fn_normalize_space(ctx: EvalContext, args: list) -> list:
    return [" ".join(_one_string(_context_or_arg(ctx, args)).split())]


@_register("translate", 3, 3)
def _fn_translate(ctx: EvalContext, args: list) -> list:
    text = _one_string(args[0])
    source = _one_string(args[1])
    target = _one_string(args[2])
    table: dict[int, int | None] = {}
    for index, char in enumerate(source):
        if ord(char) in table:
            continue
        table[ord(char)] = (ord(target[index]) if index < len(target)
                            else None)
    return [text.translate(table)]


@_register("upper-case", 1, 1)
def _fn_upper_case(ctx: EvalContext, args: list) -> list:
    return [_one_string(args[0]).upper()]


@_register("lower-case", 1, 1)
def _fn_lower_case(ctx: EvalContext, args: list) -> list:
    return [_one_string(args[0]).lower()]


@_register("matches", 2, 3)
def _fn_matches(ctx: EvalContext, args: list) -> list:
    flags = _one_string(args[2]) if len(args) > 2 else ""
    regex = _compile(_one_string(args[1]), flags)
    return [regex.search(_one_string(args[0])) is not None]


@_register("replace", 3, 4)
def _fn_replace(ctx: EvalContext, args: list) -> list:
    flags = _one_string(args[3]) if len(args) > 3 else ""
    regex = _compile(_one_string(args[1]), flags)
    replacement = _one_string(args[2]).replace("$0", r"\g<0>")
    replacement = re.sub(r"\$(\d)", r"\\\1", replacement)
    return [regex.sub(replacement, _one_string(args[0]))]


@_register("tokenize", 2, 3)
def _fn_tokenize(ctx: EvalContext, args: list) -> list:
    flags = _one_string(args[2]) if len(args) > 2 else ""
    regex = _compile(_one_string(args[1]), flags)
    text = _one_string(args[0])
    if not text:
        return []
    return [token for token in regex.split(text)]


# ---------------------------------------------------------------------------
# numbers
# ---------------------------------------------------------------------------


@_register("number", 0, 1)
def _fn_number(ctx: EvalContext, args: list) -> list:
    return [_one_number(_context_or_arg(ctx, args))]


@_register("sum", 1, 2)
def _fn_sum(ctx: EvalContext, args: list) -> list:
    if not args[0]:
        return [args[1][0]] if len(args) > 1 and args[1] else [0]
    return [sum(values.to_number(item) for item in args[0])]


@_register("avg", 1, 1)
def _fn_avg(ctx: EvalContext, args: list) -> list:
    if not args[0]:
        return []
    return [sum(values.to_number(item) for item in args[0]) / len(args[0])]


def _extremum(args: list, pick) -> list:
    if not args[0]:
        return []
    atoms = values.atomize_sequence(args[0])
    if all(isinstance(a, (int, float)) and not isinstance(a, bool)
           for a in atoms):
        return [pick(atoms)]
    numbers = [values.to_number(a) for a in atoms]
    if not any(math.isnan(n) for n in numbers):
        return [pick(numbers)]
    return [pick(str(a) for a in atoms)]


@_register("min", 1, 1)
def _fn_min(ctx: EvalContext, args: list) -> list:
    return _extremum(args, min)


@_register("max", 1, 1)
def _fn_max(ctx: EvalContext, args: list) -> list:
    return _extremum(args, max)


@_register("floor", 1, 1)
def _fn_floor(ctx: EvalContext, args: list) -> list:
    number = _one_number(args[0])
    return [number if math.isnan(number) else math.floor(number)]


@_register("ceiling", 1, 1)
def _fn_ceiling(ctx: EvalContext, args: list) -> list:
    number = _one_number(args[0])
    return [number if math.isnan(number) else math.ceil(number)]


@_register("round", 1, 1)
def _fn_round(ctx: EvalContext, args: list) -> list:
    number = _one_number(args[0])
    if math.isnan(number):
        return [number]
    return [math.floor(number + 0.5)]  # XPath rounds .5 up


@_register("abs", 1, 1)
def _fn_abs(ctx: EvalContext, args: list) -> list:
    return [abs(_one_number(args[0]))]


# ---------------------------------------------------------------------------
# booleans
# ---------------------------------------------------------------------------


@_register("boolean", 1, 1)
def _fn_boolean(ctx: EvalContext, args: list) -> list:
    return [values.effective_boolean_value(args[0])]


@_register("not", 1, 1)
def _fn_not(ctx: EvalContext, args: list) -> list:
    return [not values.effective_boolean_value(args[0])]


@_register("true", 0, 0)
def _fn_true(ctx: EvalContext, args: list) -> list:
    return [True]


@_register("false", 0, 0)
def _fn_false(ctx: EvalContext, args: list) -> list:
    return [False]


# ---------------------------------------------------------------------------
# sequences
# ---------------------------------------------------------------------------


@_register("exists", 1, 1)
def _fn_exists(ctx: EvalContext, args: list) -> list:
    return [bool(args[0])]


@_register("empty", 1, 1)
def _fn_empty(ctx: EvalContext, args: list) -> list:
    return [not args[0]]


@_register("data", 1, 1)
def _fn_data(ctx: EvalContext, args: list) -> list:
    return values.atomize_sequence(args[0])


@_register("distinct-values", 1, 1)
def _fn_distinct_values(ctx: EvalContext, args: list) -> list:
    seen: list = []
    for item in values.atomize_sequence(args[0]):
        if not any(type(item) is type(other) and item == other
                   for other in seen):
            seen.append(item)
    return seen


@_register("reverse", 1, 1)
def _fn_reverse(ctx: EvalContext, args: list) -> list:
    return list(reversed(args[0]))


@_register("subsequence", 2, 3)
def _fn_subsequence(ctx: EvalContext, args: list) -> list:
    sequence = args[0]
    start = round(_one_number(args[1]))
    if len(args) > 2:
        length = round(_one_number(args[2]))
        stop = start + length
    else:
        stop = len(sequence) + 1
    begin = max(start - 1, 0)
    return sequence[begin:max(stop - 1, begin)]


@_register("index-of", 2, 2)
def _fn_index_of(ctx: EvalContext, args: list) -> list:
    needle = values.atomize(args[1][0]) if args[1] else None
    out: list = []
    for position, item in enumerate(values.atomize_sequence(args[0]),
                                    start=1):
        if needle is not None and values.compare_atomic("eq", item, needle):
            out.append(position)
    return out


@_register("insert-before", 3, 3)
def _fn_insert_before(ctx: EvalContext, args: list) -> list:
    sequence, position_seq, inserts = args
    position = max(1, round(_one_number(position_seq)))
    index = min(position - 1, len(sequence))
    return sequence[:index] + inserts + sequence[index:]


@_register("remove", 2, 2)
def _fn_remove(ctx: EvalContext, args: list) -> list:
    position = round(_one_number(args[1]))
    return [item for index, item in enumerate(args[0], start=1)
            if index != position]


@_register("head", 1, 1)
def _fn_head(ctx: EvalContext, args: list) -> list:
    return args[0][:1]


@_register("tail", 1, 1)
def _fn_tail(ctx: EvalContext, args: list) -> list:
    return args[0][1:]


@_register("zero-or-one", 1, 1)
def _fn_zero_or_one(ctx: EvalContext, args: list) -> list:
    if len(args[0]) > 1:
        raise FunctionError("zero-or-one() got more than one item")
    return args[0]


@_register("one-or-more", 1, 1)
def _fn_one_or_more(ctx: EvalContext, args: list) -> list:
    if not args[0]:
        raise FunctionError("one-or-more() got an empty sequence")
    return args[0]


@_register("exactly-one", 1, 1)
def _fn_exactly_one(ctx: EvalContext, args: list) -> list:
    if len(args[0]) != 1:
        raise FunctionError(
            f"exactly-one() got {len(args[0])} items")
    return args[0]
