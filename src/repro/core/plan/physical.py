"""Physical operators — stage 4 of the query pipeline.

``compile_plan`` turns the logical plan into a tree of Python closures
(``fn(frame) -> list``): dispatch happens once at compile time instead
of per AST node per evaluation, and path steps run **set-at-a-time** —
one batched axis call per step over the whole context sequence, merged
and deduplicated by the packed int64 order keys (DESIGN.md §8).

The :class:`Frame` is the pipeline's mutable evaluation state.  It
duck-types the attribute surface the builtin function registry reads
from :class:`~repro.core.runtime.context.EvalContext` (``goddag``,
``position``, ``size``, ``options``, ``temp_manager``,
``context_item()``), so the whole function library runs unchanged.
Focus and variable bindings are mutated in place with save/restore
instead of context cloning — the single biggest constant-factor win
over the tree-walking evaluator.

Semantics contract: every runner reproduces the legacy evaluator's
observable behavior item-for-item, including its ordering rules (a
step's *output* is always document-ordered; only predicate-visible
candidate order is reversed on reverse axes) — enforced by the
differential tests in ``tests/test_plan_pipeline.py``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import QueryEvaluationError
from repro.markup import dom
from repro.core.goddag.axes import (
    axis_candidates,
    axis_exists_named,
    emits_document_order,
    evaluate_axis_batch,
    leaf_candidates,
)
from repro.core.goddag.joins import (
    ColumnarNodeSet,
    exists_axis_batch,
    join_axis_batch,
)
from repro.core.goddag.nodes import (
    GAttr,
    GComment,
    GElement,
    GLeaf,
    GNode,
    GPi,
    GRoot,
    GText,
)
from repro.core.lang import ast
from repro.core.plan import logical as L
from repro.core.runtime import values
from repro.core.runtime.context import QueryOptions, QueryStats
from repro.core.runtime.evaluator import (
    LAST_QUERY_STATS,
    REVERSE_AXES,
    _append_content,
    _predicate_holds,
    _singleton_number,
    _snapshot,
    node_in_hierarchies,
    order_key_value,
)
from repro.core.goddag.temp import TemporaryHierarchyManager

Runner = Callable[["Frame"], list]

_MISSING = object()


class Frame:
    """Mutable pipeline evaluation state (EvalContext duck type)."""

    __slots__ = ("goddag", "functions", "options", "temp_manager",
                 "variables", "item", "position", "size", "stats")

    def __init__(self, goddag, functions, options, temp_manager,
                 variables, stats) -> None:
        self.goddag = goddag
        self.functions = functions
        self.options = options
        self.temp_manager = temp_manager
        self.variables = variables
        self.item = None
        self.position = 0
        self.size = 0
        self.stats = stats

    def context_item(self):
        if self.item is None:
            raise QueryEvaluationError("the context item is undefined here")
        return self.item

    def variable(self, name: str) -> list:
        if name not in self.variables:
            raise QueryEvaluationError(f"undefined variable ${name}")
        return self.variables[name]


def execute_plan(fn: Runner, goddag, variables=None, options=None,
                 functions=None, keep_temporaries: bool = False,
                 stats: QueryStats | None = None) -> list:
    """Run a compiled plan with the same lifecycle as ``evaluate_query``:
    root focus, temporary-hierarchy teardown, snapshot of temp items."""
    from repro.core.runtime.functions import default_registry

    registry = dict(default_registry())
    if functions:
        registry.update(functions)
    manager = TemporaryHierarchyManager(goddag)
    frame = Frame(goddag, registry, options or QueryOptions(), manager,
                  dict(variables or {}),
                  stats if stats is not None else QueryStats())
    frame.item = goddag.root
    frame.position = 1
    frame.size = 1
    try:
        result = fn(frame)
        if not keep_temporaries:
            result = [_snapshot(item, goddag) for item in result]
        return result
    finally:
        # Keep the deprecated module-global alias mirroring the most
        # recent call regardless of which execution path served it.
        LAST_QUERY_STATS.clear()
        LAST_QUERY_STATS.update(frame.stats.as_dict())
        if not keep_temporaries:
            manager.drop_all()


# ---------------------------------------------------------------------------
# compilation dispatch
# ---------------------------------------------------------------------------


def compile_plan(plan: L.Plan) -> Runner:
    compiler = _COMPILERS.get(type(plan))
    if compiler is None:
        raise TypeError(f"no physical compiler for {type(plan).__name__}")
    return compiler(plan)


def _compile_const(op: L.ConstOp) -> Runner:
    constant = list(op.values)
    return lambda frame: list(constant)


def _compile_var(op: L.VarOp) -> Runner:
    name = op.name
    return lambda frame: list(frame.variable(name))


def _compile_context(op: L.ContextOp) -> Runner:
    return lambda frame: [frame.context_item()]


def _compile_seq(op: L.SeqOp) -> Runner:
    parts = [compile_plan(p) for p in op.parts]

    def run(frame: Frame) -> list:
        out: list = []
        for part in parts:
            out.extend(part(frame))
        return out

    return run


def _compile_range(op: L.RangeOp) -> Runner:
    lower_fn = compile_plan(op.lower)
    upper_fn = compile_plan(op.upper)

    def run(frame: Frame) -> list:
        lower = _singleton_number(lower_fn(frame))
        upper = _singleton_number(upper_fn(frame))
        if lower is None or upper is None:
            return []
        return list(range(int(lower), int(upper) + 1))

    return run


def _compile_bool(op: L.BoolOp) -> Runner:
    operands = [_compile_ebv(o) for o in op.operands]
    if op.kind == "or":
        def run(frame: Frame) -> list:
            for operand in operands:
                if operand(frame):
                    return [True]
            return [False]
    else:
        def run(frame: Frame) -> list:
            for operand in operands:
                if not operand(frame):
                    return [False]
            return [True]
    return run


def _is_string_of_context(plan: L.Plan) -> bool:
    """``string(.)`` / ``string()`` — the context item's string value."""
    return (isinstance(plan, L.FuncOp) and plan.name == "string"
            and (not plan.args
                 or (len(plan.args) == 1
                     and isinstance(plan.args[0], L.ContextOp))))


def _const_string(plan: L.Plan) -> str | None:
    if (isinstance(plan, L.ConstOp) and len(plan.values) == 1
            and isinstance(plan.values[0], str)):
        return plan.values[0]
    return None


def _builtin(name: str):
    from repro.core.runtime.functions import default_registry
    return default_registry()[name]


def _compile_compare(op: L.CompareOp) -> Runner:
    specialized = None
    if op.style == "general" and op.op in ("=", "!="):
        # ``string(.) = 'literal'`` — the workload's hottest predicate
        # shape: compare the context string value directly, skipping the
        # function registry and the general-comparison product loop
        # (string/string comparison coerces neither side).
        sides = (op.left, op.right)
        for this, other in (sides, sides[::-1]):
            constant = _const_string(other)
            if constant is not None and _is_string_of_context(this):
                specialized = (constant, op.op == "=", _builtin("string"))
                break
    left_fn = compile_plan(op.left)
    right_fn = compile_plan(op.right)
    operator, style = op.op, op.style
    if specialized is not None:
        constant, equal, builtin_string = specialized
        string_value = values.string_value
        atomize = values.atomize
        general_compare = values.general_compare

        def run_specialized(frame: Frame) -> list:
            if frame.functions.get("string") is builtin_string:
                value = string_value(atomize(frame.context_item()))
                return [(value == constant) is equal]
            return [general_compare(operator, left_fn(frame),
                                    right_fn(frame))]

        return run_specialized
    if style == "general":
        def run(frame: Frame) -> list:
            return [values.general_compare(operator, left_fn(frame),
                                           right_fn(frame))]
    elif style == "value":
        def run(frame: Frame) -> list:
            return values.value_compare(operator, left_fn(frame),
                                        right_fn(frame))
    else:
        def run(frame: Frame) -> list:
            left = left_fn(frame)
            right = right_fn(frame)
            if not left or not right:
                return []
            left_node = values.singleton_node(left, f"'{operator}'")
            right_node = values.singleton_node(right, f"'{operator}'")
            if operator == "is":
                return [left_node is right_node]
            if not isinstance(left_node, GNode) or not isinstance(
                    right_node, GNode):
                raise QueryEvaluationError(
                    "document-order comparison requires KyGODDAG nodes")
            left_key = frame.goddag.order_key(left_node)
            right_key = frame.goddag.order_key(right_node)
            return [left_key < right_key if operator == "<<" else
                    left_key > right_key]
    return run


def _compile_arith(op: L.ArithOp) -> Runner:
    left_fn = compile_plan(op.left)
    right_fn = compile_plan(op.right)
    operator = op.op

    def run(frame: Frame) -> list:
        left = _singleton_number(left_fn(frame))
        right = _singleton_number(right_fn(frame))
        if left is None or right is None:
            return []
        try:
            if operator == "+":
                return [left + right]
            if operator == "-":
                return [left - right]
            if operator == "*":
                return [left * right]
            if operator == "div":
                return [left / right]
            if operator == "idiv":
                return [int(left / right)]
            if operator == "mod":
                result = math.fmod(left, right)
                if isinstance(left, int) and isinstance(right, int):
                    return [int(result)]
                return [result]
        except ZeroDivisionError:
            raise QueryEvaluationError("division by zero") from None
        raise QueryEvaluationError(
            f"unknown arithmetic operator {operator!r}")

    return run


def _compile_neg(op: L.NegOp) -> Runner:
    operand_fn = compile_plan(op.operand)
    negate = op.op == "-"

    def run(frame: Frame) -> list:
        value = _singleton_number(operand_fn(frame))
        if value is None:
            return []
        return [-value if negate else value]

    return run


def _require_gnodes(sequence: list, op: str) -> list:
    for item in sequence:
        if not isinstance(item, GNode):
            raise QueryEvaluationError(
                f"'{op}' operates on KyGODDAG node sequences")
    return sequence


def _compile_union(op: L.UnionOp) -> Runner:
    operands = [compile_plan(o) for o in op.operands]

    def run(frame: Frame) -> list:
        nodes: list = []
        for operand in operands:
            nodes.extend(_require_gnodes(operand(frame), "union"))
        return frame.goddag.sort_nodes(nodes)

    return run


def _compile_intersect(op: L.IntersectOp) -> Runner:
    left_fn = compile_plan(op.left)
    right_fn = compile_plan(op.right)
    keep_common = op.op == "intersect"
    operator = op.op

    def run(frame: Frame) -> list:
        left = _require_gnodes(left_fn(frame), operator)
        right_ids = {id(node)
                     for node in _require_gnodes(right_fn(frame), operator)}
        if keep_common:
            kept = [node for node in left if id(node) in right_ids]
        else:
            kept = [node for node in left if id(node) not in right_ids]
        return frame.goddag.sort_nodes(kept)

    return run


def _compile_if(op: L.IfOp) -> Runner:
    condition_fn = _compile_ebv(op.condition)
    then_fn = compile_plan(op.then)
    else_fn = compile_plan(op.otherwise)

    def run(frame: Frame) -> list:
        return then_fn(frame) if condition_fn(frame) else else_fn(frame)

    return run


def _compile_quant(op: L.QuantOp) -> Runner:
    bindings = [(name, compile_plan(p)) for name, p in op.bindings]
    condition_fn = _compile_ebv(op.condition)
    is_some = op.quantifier == "some"
    count = len(bindings)

    def run(frame: Frame) -> list:
        variables = frame.variables

        def recurse(index: int) -> bool:
            if index == count:
                return condition_fn(frame)
            name, sequence_fn = bindings[index]
            old = variables.get(name, _MISSING)
            try:
                for item in sequence_fn(frame):
                    variables[name] = [item]
                    satisfied = recurse(index + 1)
                    if satisfied and is_some:
                        return True
                    if not satisfied and not is_some:
                        return False
            finally:
                if old is _MISSING:
                    variables.pop(name, None)
                else:
                    variables[name] = old
            return not is_some

        return [recurse(0)]

    return run


def _compile_func(op: L.FuncOp) -> Runner:
    arg_fns = [compile_plan(a) for a in op.args]
    name = op.name

    def run(frame: Frame) -> list:
        function = frame.functions.get(name)
        if function is None:
            raise QueryEvaluationError(f"unknown function {name}()")
        return function(frame, [fn(frame) for fn in arg_fns])

    if (name == "matches" and len(op.args) == 2
            and _is_string_of_context(op.args[0])):
        pattern = _const_string(op.args[1])
        if pattern is not None:
            # ``matches(string(.), 'pattern')`` — compile the regex once
            # (lazily, keeping the legacy call's error timing) and probe
            # the context string value directly.
            cell: list = [None]
            builtin_matches = _builtin("matches")
            builtin_string = _builtin("string")
            string_value = values.string_value
            atomize = values.atomize

            def run_matches(frame: Frame) -> list:
                functions = frame.functions
                if (functions.get("matches") is not builtin_matches
                        or functions.get("string") is not builtin_string):
                    return run(frame)
                regex = cell[0]
                if regex is None:
                    from repro.core.runtime.functions import _compile
                    regex = cell[0] = _compile(pattern, "")
                value = string_value(atomize(frame.context_item()))
                return [regex.search(value) is not None]

            return run_matches
    return run


def _compile_collection(op: L.CollectionOp) -> Runner:
    name = op.name

    def run(frame: Frame) -> list:
        resolver = frame.functions.get("collection")
        if resolver is None:
            raise QueryEvaluationError(
                f"collection({name!r}): no corpus executor bound — "
                "collection() is only available through a DocumentStore "
                "corpus query")
        return resolver(frame, [[name]])

    return run


def _compile_construct(op: L.ConstructOp) -> Runner:
    attributes = [
        (attr_name, [part if isinstance(part, str) else compile_plan(part)
                     for part in parts])
        for attr_name, parts in op.attributes]
    content = [piece if isinstance(piece, str) else compile_plan(piece)
               for piece in op.content]
    name = op.name

    def run(frame: Frame) -> list:
        element = dom.Element(name)
        for attr_name, parts in attributes:
            rendered: list[str] = []
            for part in parts:
                if isinstance(part, str):
                    rendered.append(part)
                else:
                    items = part(frame)
                    rendered.append(" ".join(
                        values.string_value(values.atomize(item))
                        for item in items))
            element.set(attr_name, "".join(rendered))
        for piece in content:
            if isinstance(piece, str):
                element.append(dom.Text(piece))
            else:
                _append_content(element, piece(frame))
        return [element]

    return run


def _compile_update(op: L.UpdatePrimOp) -> Runner:
    """Update primitives: evaluate targets/sources against the pre-state
    and emit :mod:`repro.core.update.pul` records as the result items.

    Snapshot semantics fall out of the architecture: nothing mutates
    during evaluation, so every child plan sees the untouched document.
    """
    from repro.core.runtime.evaluator import copy_dom, copy_gnode
    from repro.core.update import pul

    arg_fns = {name: compile_plan(plan) for name, plan in op.args}
    kind = op.kind
    payload = op.payload

    def target_elements(frame: Frame) -> list[GElement]:
        out: list[GElement] = []
        for item in arg_fns["target"](frame):
            if not isinstance(item, GElement):
                shown = getattr(item, "kind", type(item).__name__)
                raise QueryEvaluationError(
                    f"{kind} target must be element nodes; got {shown}")
            if frame.goddag.is_temporary(item.hierarchy):
                raise QueryEvaluationError(
                    f"{kind} cannot target a node of the temporary "
                    f"hierarchy '{item.hierarchy}'")
            out.append(item)
        return out

    def joined_string(frame: Frame, name: str) -> str:
        return " ".join(values.string_value(values.atomize(item))
                        for item in arg_fns[name](frame))

    if kind == "rename":
        def run(frame: Frame) -> list:
            name = pul.require_xml_name(joined_string(frame, "name"),
                                        "rename target name")
            return [pul.RenamePrim(node, name)
                    for node in target_elements(frame)]
        return run

    if kind == "replace-value":
        def run(frame: Frame) -> list:
            value = joined_string(frame, "value")
            return [pul.ReplaceValuePrim(node, value)
                    for node in target_elements(frame)]
        return run

    if kind == "delete":
        def run(frame: Frame) -> list:
            return [pul.DeletePrim(node)
                    for node in target_elements(frame)]
        return run

    if kind == "remove-markup":
        def run(frame: Frame) -> list:
            return [pul.RemoveMarkupPrim(node)
                    for node in target_elements(frame)]
        return run

    if kind == "insert":
        location = payload["location"]
        if location == "into":
            location = "into-last"

        def run(frame: Frame) -> list:
            targets = target_elements(frame)
            if len(targets) != 1:
                # Mirrors XQuery Update's err:XUDY0027: a vanished or
                # multi-node insert anchor must not silently no-op.
                raise QueryEvaluationError(
                    f"insert target must be exactly one element; got "
                    f"{len(targets)}")
            fragment: list = []
            for item in arg_fns["source"](frame):
                if isinstance(item, GNode):
                    fragment.append(copy_gnode(item))
                elif isinstance(item, dom.Node):
                    fragment.append(copy_dom(item))
                else:
                    fragment.append(dom.Text(
                        values.string_value(values.atomize(item))))
            if not fragment:
                return []
            text = "".join(node.text_content() for node in fragment)
            return [pul.InsertPrim(targets[0], location, fragment, text)]
        return run

    if kind == "add-markup":
        element_name = payload["name"]
        hierarchy = payload["hierarchy"]

        def run(frame: Frame) -> list:
            goddag = frame.goddag
            if not goddag.has_hierarchy(hierarchy) \
                    or goddag.is_temporary(hierarchy):
                raise QueryEvaluationError(
                    f"add markup: no persistent hierarchy named "
                    f"'{hierarchy}'")
            pul.require_xml_name(element_name, "add markup element name")
            spans: list[tuple[int, int]] = []
            for item in arg_fns["target"](frame):
                if not isinstance(item, GNode):
                    raise QueryEvaluationError(
                        "add markup target must be nodes; got "
                        f"{type(item).__name__}")
                if (item.hierarchy is not None
                        and goddag.is_temporary(item.hierarchy)):
                    raise QueryEvaluationError(
                        "add markup cannot cover temporary-hierarchy "
                        "nodes")
                spans.append((item.start, item.end))
            if not spans:
                return []
            start = min(span[0] for span in spans)
            end = max(span[1] for span in spans)
            return [pul.AddMarkupPrim(hierarchy, element_name, start, end)]
        return run

    raise TypeError(  # pragma: no cover - planner kinds are exhaustive
        f"no physical compiler for update kind {kind!r}")


# ---------------------------------------------------------------------------
# predicates, filters
# ---------------------------------------------------------------------------


def _compile_predicate(op: L.PredicateOp):
    """A candidate-list filter ``fn(frame, candidates) -> candidates``."""
    if op.positional_literal is not None:
        position = op.positional_literal

        def run_pick(frame: Frame, candidates: list) -> list:
            if 1 <= position <= len(candidates):
                return [candidates[position - 1]]
            return []

        return run_pick
    if op.boolean_only:
        bool_fn = _compile_ebv(op.plan)

        def run_boolean(frame: Frame, candidates: list) -> list:
            if not candidates:
                return candidates
            old_item = frame.item
            old_position = frame.position
            old_size = frame.size
            size = len(candidates)
            kept: list = []
            try:
                position = 0
                for item in candidates:
                    position += 1
                    frame.item = item
                    frame.position = position
                    frame.size = size
                    if bool_fn(frame):
                        kept.append(item)
            finally:
                frame.item = old_item
                frame.position = old_position
                frame.size = old_size
            return kept

        return run_boolean
    plan_fn = compile_plan(op.plan)

    def run(frame: Frame, candidates: list) -> list:
        if not candidates:
            return candidates
        old_item = frame.item
        old_position = frame.position
        old_size = frame.size
        size = len(candidates)
        kept: list = []
        try:
            position = 0
            for item in candidates:
                position += 1
                frame.item = item
                frame.position = position
                frame.size = size
                if _predicate_holds(plan_fn(frame), position):
                    kept.append(item)
        finally:
            frame.item = old_item
            frame.position = old_position
            frame.size = old_size
        return kept

    return run


def _compile_filter(op: L.FilterOp) -> Runner:
    input_fn = compile_plan(op.input)
    predicate_fns = [_compile_predicate(p) for p in op.predicates]

    def run(frame: Frame) -> list:
        current = input_fn(frame)
        for predicate in predicate_fns:
            current = predicate(frame, current)
        return current

    return run


# ---------------------------------------------------------------------------
# paths
# ---------------------------------------------------------------------------


def _semi_join_probes(predicates: list[L.PredicateOp]
                      ) -> list[tuple[str, str, float | None, int]]:
    """Compile-time probe descriptors: ``(axis, name, est_selectivity,
    source_order)`` per semi-join predicate, in plan order (which the
    cost pass may have reordered)."""
    return [(p.semi_join[0], p.semi_join[1], p.est_selectivity,
             p.source_order) for p in predicates]


def _apply_semi_joins(frame: "Frame",
                      probes: list[tuple[str, str, float | None, int]],
                      candidates: list) -> list:
    """Filter a document-ordered candidate set by batched existence
    probes — one vectorized semi-join per ``[extended-axis::name]``
    predicate instead of one EBV evaluation per candidate.  Valid only
    for boolean, position-free predicates (the planner guarantees it):
    their verdicts cannot depend on candidate grouping or position.

    On a cost-reordered conjunction (every probe carries an estimated
    selectivity and a source position) the survivor count is checked
    against the estimate chain after each probe; a miss beyond
    ``QueryOptions.cost_fallback_factor`` abandons the cost ordering
    and runs the remaining probes in source order — the adaptive
    fallback of DESIGN.md §16.  Verdicts are order-independent, so
    only the work schedule changes, never the result.
    """
    queue = list(probes)
    adaptive = (len(queue) > 1
                and all(sel is not None for _a, _n, sel, _o in queue)
                and any(order >= 0 for _a, _n, _s, order in queue))
    expected = float(len(candidates))
    factor = getattr(frame.options, "cost_fallback_factor", 8.0)
    while queue:
        if not candidates:
            return candidates
        axis, name, selectivity, _order = queue.pop(0)
        frame.stats.join_steps += 1
        mask = exists_axis_batch(frame.goddag, axis, candidates, name)
        if adaptive:
            expected *= selectivity
            actual = int(mask.sum())
            # ratio test against max(count, 1): an estimate may be off
            # by the configured factor in either direction before the
            # schedule is abandoned (zero counts compare as one so the
            # factor stays meaningful on empty survivor sets)
            if (actual > max(expected, 1.0) * factor
                    or expected > max(actual, 1.0) * factor):
                frame.stats.cost_fallbacks += 1
                queue.sort(key=lambda probe: probe[3])
                adaptive = False
            else:
                expected = float(actual)
        if mask.all():
            continue
        kept = [node for node, keep in zip(candidates, mask) if keep]
        if isinstance(candidates, ColumnarNodeSet):
            starts, ends = candidates.span_columns()
            candidates = ColumnarNodeSet(kept, starts[mask], ends[mask])
        else:
            candidates = kept
    return candidates


def _compile_join(op: L.IntervalJoinOp):
    """``fn(frame, inputs) -> outputs`` for one interval-join step.

    The whole step is one set-at-a-time sorted-array join
    (:func:`repro.core.goddag.joins.join_axis_batch`): candidates are
    gathered as positions into the span-index columns and merged into
    global document order by one ``np.unique`` over packed order keys.
    Semi-join predicates filter the joined set with batched existence
    probes; any other predicate shape falls back to the per-node step
    machinery (:func:`_compile_step`), which is also the oracle path.
    """
    if op.predicates and not all(p.semi_join is not None
                                 for p in op.predicates):
        return _compile_step(op)
    axis = op.axis
    semi_joins = _semi_join_probes(op.predicates)
    test_factory = _make_test_factory(op.test, axis)
    skip_leaves = op.skip_leaves
    leaves_only = op.leaves_only
    hint = op.name_hint

    def run(frame: Frame, inputs: list) -> list:
        if not inputs:
            return []
        for item in inputs:
            if not isinstance(item, GNode):
                _require_navigable(item)
        goddag = frame.goddag
        stats = frame.stats
        stats.axis_steps += 1
        stats.batched_steps += 1
        stats.join_steps += 1
        # the node test is built per execution: caching it across runs
        # would pin the last-seen goddag inside a long-lived compiled
        # plan, keeping retired MVCC versions resident
        # batched_extended_steps is bumped inside join_axis_batch,
        # only when a kernel actually runs (single-context steps
        # delegate to the per-node walk and must not count).
        out = join_axis_batch(goddag, axis, inputs, hint,
                              skip_leaves=skip_leaves,
                              leaves_only=leaves_only,
                              test=test_factory(goddag), stats=stats)
        if semi_joins:
            out = _apply_semi_joins(frame, semi_joins, out)
        return out

    return run


def _make_test_factory(test: ast.NodeTest, axis: str):
    """``factory(goddag) -> (fn(node) -> bool) | None`` (None = match all)."""
    principal_attribute = axis == "attribute"
    if isinstance(test, ast.NameTest):
        name = test.name
        if principal_attribute:
            def match(node):
                return isinstance(node, GAttr) and node.name == name
        else:
            def match(node):
                return (isinstance(node, (GElement, GRoot))
                        and node.name == name)
        return lambda goddag: match
    if isinstance(test, ast.WildcardTest):
        hierarchies = test.hierarchies
        if principal_attribute:
            return lambda goddag: lambda node: isinstance(node, GAttr)
        if not hierarchies:
            return lambda goddag: (
                lambda node: isinstance(node, (GElement, GRoot)))

        def factory(goddag):
            def match(node):
                return (isinstance(node, (GElement, GRoot))
                        and node_in_hierarchies(node, hierarchies, goddag))
            return match
        return factory
    kind = test.kind
    hierarchies = test.hierarchies
    if kind == "node":
        if not hierarchies:
            return lambda goddag: None

        def factory(goddag):
            return lambda node: node_in_hierarchies(node, hierarchies, goddag)
        return factory
    if kind == "text":
        if not hierarchies:
            return lambda goddag: lambda node: isinstance(node, GText)

        def factory(goddag):
            def match(node):
                return (isinstance(node, GText)
                        and node_in_hierarchies(node, hierarchies, goddag))
            return match
        return factory
    if kind == "leaf":
        return lambda goddag: lambda node: isinstance(node, GLeaf)
    if kind == "comment":
        return lambda goddag: lambda node: isinstance(node, GComment)
    if kind == "processing-instruction":
        target = test.target

        def match(node):
            if not isinstance(node, GPi):
                return False
            return target is None or node.target == target
        return lambda goddag: match
    raise QueryEvaluationError(f"unknown node test kind {kind!r}")


def _require_navigable(item) -> None:
    if not isinstance(item, GNode):
        raise QueryEvaluationError(
            "path steps navigate KyGODDAG nodes; got "
            f"{type(item).__name__} (constructed nodes are not "
            f"navigable)")


def _compile_step(op: L.StepOp):
    """``fn(frame, inputs) -> outputs`` for one set-at-a-time axis step.

    Output is always document-ordered and duplicate-free (matching the
    legacy evaluator) unless ``emit == "any"``, where no consumer can
    observe the order and sorts are skipped.  Predicates see candidates
    in the legacy per-input order: document order, reversed on reverse
    axes.
    """
    axis = op.axis
    reverse = axis in REVERSE_AXES
    predicate_fns = [_compile_predicate(p) for p in op.predicates]
    #: all predicates are recognized cross-hierarchy existence tests:
    #: filter the step's batched union with vectorized semi-joins
    #: instead of looping candidates per input node (DESIGN.md §11)
    semi_joins = (_semi_join_probes(op.predicates)
                  if op.predicates and all(p.semi_join is not None
                                           for p in op.predicates)
                  else None)
    test_factory = _make_test_factory(op.test, axis)
    skip_leaves = op.skip_leaves
    leaves_only = op.leaves_only
    hint = op.name_hint
    emit_any = op.emit == "any"

    # built per execution — caching across runs would pin retired
    # MVCC goddag versions inside the shared plan cache
    def get_test(goddag):
        return test_factory(goddag)

    def candidates(goddag, node):
        if leaves_only:
            found = leaf_candidates(goddag, axis, node)
            if found is not None:
                return found
        return axis_candidates(goddag, axis, node, hint, skip_leaves)

    def run(frame: Frame, inputs: list) -> list:
        if not inputs:
            return []
        for item in inputs:
            if not isinstance(item, GNode):
                _require_navigable(item)
        goddag = frame.goddag
        stats = frame.stats
        stats.axis_steps += 1
        stats.batched_steps += 1
        test = get_test(goddag)
        if not predicate_fns:
            if emit_any:
                if len(inputs) == 1:
                    node = inputs[0]
                    found = candidates(goddag, node)
                    stats.ordered_steps += 1
                    if test is not None:
                        found = [c for c in found if test(c)]
                    if emits_document_order(axis, node):
                        return found  # ordered emissions are dup-free
                    # e.g. a leaf's sibling groups repeat the same
                    # leaves once per hierarchy: dedup is mandatory
                    # even though the order is free.
                    seen: set[int] = set()
                    out: list = []
                    for candidate in found:
                        key = id(candidate)
                        if key not in seen:
                            seen.add(key)
                            out.append(candidate)
                    return out
                seen: set[int] = set()
                out: list = []
                for node in inputs:
                    for candidate in candidates(goddag, node):
                        if test is not None and not test(candidate):
                            continue
                        key = id(candidate)
                        if key not in seen:
                            seen.add(key)
                            out.append(candidate)
                stats.ordered_steps += 1
                return out
            if len(inputs) == 1 and emits_document_order(axis, inputs[0]):
                stats.ordered_steps += 1
            return evaluate_axis_batch(
                goddag, axis, inputs, hint, skip_leaves=skip_leaves,
                leaves_only=leaves_only, test=test)
        if semi_joins is not None:
            # Boolean, position-free existence predicates filter the
            # same set regardless of per-input grouping: take the
            # batched union once, then one vectorized probe per
            # predicate over the whole candidate set.
            found = evaluate_axis_batch(
                goddag, axis, inputs, hint, skip_leaves=skip_leaves,
                leaves_only=leaves_only, test=test)
            if len(inputs) == 1 and emits_document_order(axis, inputs[0]):
                stats.ordered_steps += 1
            return _apply_semi_joins(frame, semi_joins, found)
        # Predicated: candidates per input in legacy predicate order
        # (reverse axes count positions away from the context node),
        # then one merge across inputs.
        if len(inputs) == 1:
            node = inputs[0]
            found = candidates(goddag, node)
            if test is not None:
                found = [c for c in found if test(c)]
            if emits_document_order(axis, node):
                stats.ordered_steps += 1
                for predicate in predicate_fns:
                    found = predicate(frame, found)
                return found
            found = goddag.sort_nodes(found)
            if reverse:
                found.reverse()
            for predicate in predicate_fns:
                found = predicate(frame, found)
            if reverse:
                found.reverse()  # outputs are always document-ordered
            return found
        out = []
        seen = set()
        for node in inputs:
            found = candidates(goddag, node)
            if test is not None:
                found = [c for c in found if test(c)]
            if emits_document_order(axis, node):
                stats.ordered_steps += 1
            else:
                found = goddag.sort_nodes(found)
                if reverse:
                    found.reverse()
            for predicate in predicate_fns:
                found = predicate(frame, found)
            for candidate in found:
                key = id(candidate)
                if key not in seen:
                    seen.add(key)
                    out.append(candidate)
        if emit_any:
            return out
        return goddag.sort_nodes(out)

    return run


# ---------------------------------------------------------------------------
# effective-boolean-value compilation (existence mode)
# ---------------------------------------------------------------------------
#
# Predicates, conditions and and/or operands only consume a plan's
# effective boolean value.  ``_compile_ebv`` produces ``fn(frame) ->
# bool`` closures that skip sequence materialization where possible:
# a single-axis-step relative path becomes an *existence probe* — for
# named ancestor/xancestor tests one bisect into the span index's
# per-name containment arrays instead of a chain walk per call.


def _compile_ebv(plan: L.Plan):
    if isinstance(plan, L.BoolOp):
        operands = [_compile_ebv(o) for o in plan.operands]
        if plan.kind == "or":
            def run_or(frame: Frame) -> bool:
                for operand in operands:
                    if operand(frame):
                        return True
                return False
            return run_or

        def run_and(frame: Frame) -> bool:
            for operand in operands:
                if not operand(frame):
                    return False
            return True
        return run_and
    if (isinstance(plan, L.PathOp) and plan.input is None
            and plan.anchor == "relative" and len(plan.steps) == 1
            and isinstance(plan.steps[0], L.StepOp)):
        step = plan.steps[0]
        if not step.predicates:
            return _compile_step_exists(step)
        if all(p.boolean_only and p.position_free
               for p in step.predicates):
            return _compile_step_exists_predicated(step)
    fn = compile_plan(plan)
    ebv = values.effective_boolean_value
    return lambda frame: ebv(fn(frame))


def _compile_step_exists(op: L.StepOp):
    """``fn(frame) -> bool``: does one axis step from the context item
    yield any test-passing candidate?"""
    axis = op.axis
    named = (isinstance(op.test, ast.NameTest) and axis != "attribute")
    name = op.test.name if named else None
    if named and axis == "ancestor":
        def exists_ancestor(frame: Frame) -> bool:
            node = frame.context_item()
            if not isinstance(node, GNode):
                _require_navigable(node)
            frame.stats.axis_steps += 1
            frame.stats.ordered_steps += 1
            goddag = frame.goddag
            if isinstance(node, GLeaf):
                # Containment == ancestry for a leaf: each hierarchy's
                # covering chain is exactly its span containers.
                if goddag.span_index().has_containing_named(
                        name, node.start, node.end):
                    return True
                root = goddag.root
                return bool(root.name == name and goddag.hierarchy_names)
            found = axis_candidates(goddag, axis, node, name, True)
            return any(isinstance(c, (GElement, GRoot)) and c.name == name
                       for c in found)
        return exists_ancestor
    if named and axis in ("xancestor", "xdescendant", "xfollowing",
                          "xpreceding", "overlapping",
                          "preceding-overlapping",
                          "following-overlapping"):
        # axis_exists_named covers every extended axis in this branch,
        # so there is no per-candidate fallback to mask a gap.
        def exists_masked(frame: Frame) -> bool:
            node = frame.context_item()
            if not isinstance(node, GNode):
                _require_navigable(node)
            frame.stats.axis_steps += 1
            frame.stats.ordered_steps += 1
            return bool(axis_exists_named(frame.goddag, axis, node, name))
        return exists_masked
    # Generic probe: materialize the (pushdown-trimmed) candidates and
    # stop at the first test hit — no sort, no dedup, no predicate pass.
    test_factory = _make_test_factory(op.test, axis)
    skip_leaves = op.skip_leaves
    leaves_only = op.leaves_only
    hint = op.name_hint

    def exists_generic(frame: Frame) -> bool:
        node = frame.context_item()
        if not isinstance(node, GNode):
            _require_navigable(node)
        frame.stats.axis_steps += 1
        frame.stats.ordered_steps += 1
        goddag = frame.goddag
        if leaves_only:
            found = leaf_candidates(goddag, axis, node)
            if found is None:
                found = axis_candidates(goddag, axis, node, hint,
                                        skip_leaves)
        else:
            found = axis_candidates(goddag, axis, node, hint, skip_leaves)
        # no cross-call test cache: it would pin retired MVCC versions
        test = test_factory(goddag)
        if test is None:
            return bool(found)
        return any(test(c) for c in found)

    return exists_generic


def _compile_step_exists_predicated(op: L.StepOp):
    """Existence probe for one step whose predicates are all boolean and
    position-free: probe candidates in emission order, stop at the
    first one that passes the test and every predicate (their verdicts
    cannot depend on candidate order or focus position)."""
    axis = op.axis
    predicate_fns = [_compile_ebv(p.plan) for p in op.predicates]
    test_factory = _make_test_factory(op.test, axis)
    skip_leaves = op.skip_leaves
    leaves_only = op.leaves_only
    hint = op.name_hint

    def exists_predicated(frame: Frame) -> bool:
        node = frame.context_item()
        if not isinstance(node, GNode):
            _require_navigable(node)
        frame.stats.axis_steps += 1
        frame.stats.ordered_steps += 1
        goddag = frame.goddag
        if leaves_only:
            found = leaf_candidates(goddag, axis, node)
            if found is None:
                found = axis_candidates(goddag, axis, node, hint,
                                        skip_leaves)
        else:
            found = axis_candidates(goddag, axis, node, hint, skip_leaves)
        # no cross-call test cache: it would pin retired MVCC versions
        test = test_factory(goddag)
        old_item = frame.item
        old_position = frame.position
        old_size = frame.size
        size = len(found)
        try:
            position = 0
            for candidate in found:
                position += 1
                if test is not None and not test(candidate):
                    continue
                frame.item = candidate
                frame.position = position
                frame.size = size
                if all(predicate(frame) for predicate in predicate_fns):
                    return True
        finally:
            frame.item = old_item
            frame.position = old_position
            frame.size = old_size
        return False

    return exists_predicated


def _compile_expr_step(op: L.ExprStepOp):
    plan_fn = compile_plan(op.plan)

    def run(frame: Frame, inputs: list) -> list:
        out: list = []
        size = len(inputs)
        old_item = frame.item
        old_position = frame.position
        old_size = frame.size
        try:
            position = 0
            for item in inputs:
                position += 1
                if not isinstance(item, GNode):
                    raise QueryEvaluationError(
                        "path steps navigate KyGODDAG nodes; got "
                        f"{type(item).__name__}")
                frame.item = item
                frame.position = position
                frame.size = size
                out.extend(plan_fn(frame))
        finally:
            frame.item = old_item
            frame.position = old_position
            frame.size = old_size
        node_flags = [isinstance(value, GNode) for value in out]
        if all(node_flags):
            return frame.goddag.sort_nodes(out)
        if any(node_flags):
            raise QueryEvaluationError(
                "a path step may not mix nodes and atomic values")
        return out

    return run


def _record_actuals(step_fn, op_id: int):
    """Wrap one step closure to record its actual output cardinality
    under the cost pass's operator id (summed across executions —
    nested relative paths run per candidate).  Mechanical plans carry
    ``op_id == -1`` and are never wrapped: zero overhead."""
    def run(frame: Frame, inputs: list) -> list:
        out = step_fn(frame, inputs)
        actuals = frame.stats.op_actuals
        actuals[op_id] = actuals.get(op_id, 0) + len(out)
        return out
    return run


def _compile_path(op: L.PathOp) -> Runner:
    step_fns = []
    for step in op.steps:
        if isinstance(step, L.IntervalJoinOp):
            step_fn = _compile_join(step)
        elif isinstance(step, L.StepOp):
            step_fn = _compile_step(step)
        else:
            step_fn = _compile_expr_step(step)
        if isinstance(step, L.StepOp) and step.op_id >= 0:
            step_fn = _record_actuals(step_fn, step.op_id)
        step_fns.append(step_fn)
    anchor = op.anchor
    input_fn = compile_plan(op.input) if op.input is not None else None

    def run(frame: Frame) -> list:
        if anchor == "root":
            current: list = [frame.goddag.root]
        elif input_fn is not None:
            current = input_fn(frame)
        else:
            current = [frame.context_item()]
        for step_fn in step_fns:
            current = step_fn(frame, current)
        return current

    return run


# ---------------------------------------------------------------------------
# FLWOR
# ---------------------------------------------------------------------------


def _compile_flwor(op: L.FLWOROp) -> Runner:
    if not op.streaming:
        return _compile_flwor_materialized(op)
    return _compile_flwor_streaming(op)


def _compile_flwor_streaming(op: L.FLWOROp) -> Runner:
    """Continuation-compiled tuple stream over the mutable frame.

    Invariant ``let``/``where`` clauses evaluate on the first tuple of
    each FLWOR execution and reuse the value — lazy loop-invariant
    hoisting that keeps error timing and the empty-stream case exactly
    as the legacy per-tuple evaluation.
    """
    return_fn = compile_plan(op.return_plan)
    cells: list[list] = []

    def tail(frame: Frame, out: list) -> None:
        out.extend(return_fn(frame))

    step = tail
    for clause in reversed(op.clauses):
        step = _make_streaming_clause(clause, step, cells)

    def run(frame: Frame) -> list:
        out: list = []
        for cell in cells:
            cell[0] = _MISSING
        step(frame, out)
        return out

    return run


def _make_streaming_clause(clause: L.Plan, nxt, cells: list):
    if isinstance(clause, L.ForOp):
        sequence_fn = compile_plan(clause.sequence)
        variable = clause.variable
        position_variable = clause.position_variable

        def run_for(frame: Frame, out: list) -> None:
            variables = frame.variables
            sequence = sequence_fn(frame)
            old = variables.get(variable, _MISSING)
            old_position = (variables.get(position_variable, _MISSING)
                            if position_variable else None)
            try:
                if position_variable:
                    position = 0
                    for item in sequence:
                        position += 1
                        variables[variable] = [item]
                        variables[position_variable] = [position]
                        nxt(frame, out)
                else:
                    for item in sequence:
                        variables[variable] = [item]
                        nxt(frame, out)
            finally:
                if old is _MISSING:
                    variables.pop(variable, None)
                else:
                    variables[variable] = old
                if position_variable:
                    if old_position is _MISSING:
                        variables.pop(position_variable, None)
                    else:
                        variables[position_variable] = old_position

        return run_for
    if isinstance(clause, L.LetOp):
        value_fn = compile_plan(clause.plan)
        variable = clause.variable
        if clause.invariant:
            cell: list = [_MISSING]
            cells.append(cell)

            def run_let(frame: Frame, out: list) -> None:
                value = cell[0]
                if value is _MISSING:
                    value = cell[0] = value_fn(frame)
                variables = frame.variables
                old = variables.get(variable, _MISSING)
                variables[variable] = value
                try:
                    nxt(frame, out)
                finally:
                    if old is _MISSING:
                        variables.pop(variable, None)
                    else:
                        variables[variable] = old

            return run_let

        def run_let(frame: Frame, out: list) -> None:
            value = value_fn(frame)
            variables = frame.variables
            old = variables.get(variable, _MISSING)
            variables[variable] = value
            try:
                nxt(frame, out)
            finally:
                if old is _MISSING:
                    variables.pop(variable, None)
                else:
                    variables[variable] = old

        return run_let
    if isinstance(clause, L.WhereOp):
        condition_fn = _compile_ebv(clause.plan)
        if clause.invariant:
            cell = [_MISSING]
            cells.append(cell)

            def run_where(frame: Frame, out: list) -> None:
                verdict = cell[0]
                if verdict is _MISSING:
                    verdict = cell[0] = condition_fn(frame)
                if verdict:
                    nxt(frame, out)

            return run_where

        def run_where(frame: Frame, out: list) -> None:
            if condition_fn(frame):
                nxt(frame, out)

        return run_where
    raise TypeError(  # pragma: no cover - planner guarantees clause types
        f"unknown streaming clause {type(clause).__name__}")


def _compile_flwor_materialized(op: L.FLWOROp) -> Runner:
    """Tuple-list FLWOR (order-by present), mirroring the legacy
    evaluator's materialized tuple stream via variable snapshots."""
    compiled: list[tuple] = []
    for clause in op.clauses:
        if isinstance(clause, L.ForOp):
            compiled.append(("for", clause.variable,
                             clause.position_variable,
                             compile_plan(clause.sequence)))
        elif isinstance(clause, L.LetOp):
            compiled.append(("let", clause.variable,
                             compile_plan(clause.plan)))
        elif isinstance(clause, L.WhereOp):
            compiled.append(("where", _compile_ebv(clause.plan)))
        elif isinstance(clause, L.OrderOp):
            compiled.append(("order", [
                (compile_plan(key), descending, empty_least)
                for key, descending, empty_least in clause.specs]))
    return_fn = compile_plan(op.return_plan)

    def run(frame: Frame) -> list:
        saved = frame.variables
        tuples: list[dict] = [dict(saved)]
        try:
            for entry in compiled:
                kind = entry[0]
                if kind == "for":
                    _kind, variable, position_variable, sequence_fn = entry
                    expanded: list[dict] = []
                    for bindings in tuples:
                        frame.variables = bindings
                        sequence = sequence_fn(frame)
                        for position, item in enumerate(sequence, start=1):
                            bound = dict(bindings)
                            bound[variable] = [item]
                            if position_variable:
                                bound[position_variable] = [position]
                            expanded.append(bound)
                    tuples = expanded
                elif kind == "let":
                    _kind, variable, value_fn = entry
                    rebound: list[dict] = []
                    for bindings in tuples:
                        frame.variables = bindings
                        value = value_fn(frame)
                        bound = dict(bindings)
                        bound[variable] = value
                        rebound.append(bound)
                    tuples = rebound
                elif kind == "where":
                    _kind, condition_fn = entry
                    kept: list[dict] = []
                    for bindings in tuples:
                        frame.variables = bindings
                        if condition_fn(frame):
                            kept.append(bindings)
                    tuples = kept
                else:  # order
                    _kind, specs = entry
                    decorated = list(tuples)
                    for key_fn, descending, empty_least in reversed(specs):
                        keyed = []
                        for bindings in decorated:
                            frame.variables = bindings
                            keyed.append((order_key_value(
                                key_fn(frame), empty_least), bindings))
                        keyed.sort(key=lambda pair: pair[0],
                                   reverse=descending)
                        decorated = [b for _key, b in keyed]
                    tuples = decorated
            out: list = []
            for bindings in tuples:
                frame.variables = bindings
                out.extend(return_fn(frame))
            return out
        finally:
            frame.variables = saved

    return run


_COMPILERS = {
    L.ConstOp: _compile_const,
    L.VarOp: _compile_var,
    L.ContextOp: _compile_context,
    L.SeqOp: _compile_seq,
    L.RangeOp: _compile_range,
    L.BoolOp: _compile_bool,
    L.CompareOp: _compile_compare,
    L.ArithOp: _compile_arith,
    L.NegOp: _compile_neg,
    L.UnionOp: _compile_union,
    L.IntersectOp: _compile_intersect,
    L.IfOp: _compile_if,
    L.QuantOp: _compile_quant,
    L.FuncOp: _compile_func,
    L.CollectionOp: _compile_collection,
    L.ConstructOp: _compile_construct,
    L.UpdatePrimOp: _compile_update,
    L.FilterOp: _compile_filter,
    L.PathOp: _compile_path,
    L.FLWOROp: _compile_flwor,
}
