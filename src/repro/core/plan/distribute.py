"""Static classification of plans for scatter-gather corpus execution.

Given a compiled logical plan that references ``collection("name")``,
the corpus executor must decide *where* the plan can run (DESIGN.md
§13):

``scatter``
    The whole plan evaluates independently per shard and the gather
    side merges node results by packed okey
    (:func:`repro.core.goddag.okeys.corpus_sort_order`).  Requires the
    top level to be a collection-anchored path whose every step is
    *shard-local*: the step's candidate set for any in-shard context
    node is fully contained in that shard.
``aggregate``
    ``count()``/``sum()``/``exists()``/``empty()`` over a scatterable
    path: workers return one scalar each, the gather side folds them
    (sum / sum / any / all).  Pruned shards contribute the fold
    identity, so pruning stays exact.
``concat``
    A FLWOR whose outer ``for`` binds a scatterable collection path
    confined to a **single hierarchy** (per the corpus
    ``name_hierarchies`` statistics): within one hierarchy the corpus
    order is (shard, preorder), so concatenating per-shard outputs in
    shard order reproduces the unsharded tuple stream.
``fused``
    Everything else — the executor falls back to one engine over the
    reassembled corpus (:func:`repro.store.sharding.fuse_documents`).
    Always correct, never parallel.

Shard-locality reasoning: shard cuts are element boundaries in every
hierarchy, so an element's ancestors, descendants, attributes, and
*overlapping* nodes (spans intersect ⇒ same shard) are co-resident;
``following``/``preceding``(-sibling) and the boundary-kernel extended
axes reach across cuts and force the fused path, as do node tests
that can observe split text nodes (``text()``/``leaf()``) or the shard
root (the corpus root name, wildcards on self-or-upward axes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lang import ast
from repro.core.plan import logical as L

#: Axes whose candidate set for an in-shard element context is fully
#: contained in the same shard.
DOWNWARD_AXES = frozenset({"child", "descendant", "attribute"})
SELF_OR_UPWARD_AXES = frozenset({
    "self", "parent", "ancestor", "ancestor-or-self",
    "descendant-or-self"})
OVERLAP_AXES = frozenset({
    "overlapping", "preceding-overlapping", "following-overlapping",
    "xancestor", "xdescendant"})
LOCAL_AXES = DOWNWARD_AXES | SELF_OR_UPWARD_AXES | OVERLAP_AXES

#: Functions whose value depends only on shard-local input sequences.
#: Notably absent: ``position``/``last`` (handled separately — safe
#: except against the corpus-root context), ``root``/``leaves``/
#: ``hierarchies``/``hierarchy`` (whole-document views), ``span``
#: (global character offsets), ``collection`` (no nesting).
LOCAL_FUNCTIONS = frozenset({
    "abs", "avg", "boolean", "ceiling", "concat", "contains", "count",
    "data", "distinct-values", "empty", "ends-with", "exists", "false",
    "floor", "index-of", "insert-before", "local-name", "lower-case",
    "matches", "max", "min", "name", "normalize-space", "not", "number",
    "remove", "replace", "reverse", "round", "starts-with", "string",
    "string-join", "string-length", "subsequence", "substring",
    "substring-after", "substring-before", "sum", "tokenize",
    "translate", "true", "upper-case",
})

#: Aggregates with a per-shard/fold decomposition (fold identity in
#: the comment — what a pruned shard contributes).
AGGREGATE_FOLDS = {
    "count": "sum",    # identity 0
    "sum": "sum",      # identity 0
    "exists": "any",   # identity False
    "empty": "all",    # identity True
}


@dataclass
class Distribution:
    """The executor's routing verdict for one compiled plan."""

    mode: str  # "scatter" | "aggregate" | "concat" | "fused"
    collection: str | None = None
    #: the fold for ``aggregate`` mode (a key of AGGREGATE_FOLDS)
    aggregate: str | None = None
    #: element names every non-empty shard result requires — shards
    #: whose cardinality for any of them is zero are pruned
    required_names: list[str] = field(default_factory=list)
    #: why the plan fell back to fused (explain/debugging)
    reason: str = ""


def find_collections(plan: L.Plan) -> list[str]:
    """Names of every ``collection()`` reference in the plan tree."""
    names: list[str] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, L.CollectionOp):
            names.append(node.name)
        stack.extend(L._children(node))
    return names


def classify(plan: L.Plan, *, root_name: str,
             name_hierarchies: dict[str, list[str]]) -> Distribution:
    """Route ``plan`` to scatter / aggregate / concat / fused.

    ``root_name`` is the corpus root element name (shard roots must
    never surface in distributed results — a GRoot serializes the
    whole shard); ``name_hierarchies`` maps element names to the
    hierarchies they appear in, from the corpus statistics.
    """
    names = find_collections(plan)
    if len(names) != 1:
        return Distribution(
            "fused", collection=names[0] if names else None,
            reason=f"{len(names)} collection() references")
    name = names[0]

    if (isinstance(plan, L.FuncOp) and plan.name in AGGREGATE_FOLDS
            and len(plan.args) == 1):
        inner = classify(plan.args[0], root_name=root_name,
                         name_hierarchies=name_hierarchies)
        if inner.mode == "scatter":
            return Distribution("aggregate", collection=name,
                                aggregate=plan.name,
                                required_names=inner.required_names)
        return Distribution("fused", collection=name, reason=inner.reason)

    if isinstance(plan, L.PathOp) and isinstance(plan.input, L.CollectionOp):
        verdict = _scatterable_steps(plan.steps, root_name)
        if verdict is not None:
            return Distribution("fused", collection=name, reason=verdict)
        return Distribution(
            "scatter", collection=name,
            required_names=_required_names(plan.steps))

    if isinstance(plan, L.FLWOROp):
        verdict = _concatenable_flwor(plan, name, root_name,
                                      name_hierarchies)
        if verdict is None:
            outer = plan.clauses[0]
            assert isinstance(outer, L.ForOp)
            assert isinstance(outer.sequence, L.PathOp)
            return Distribution(
                "concat", collection=name,
                required_names=_required_names(outer.sequence.steps))
        return Distribution("fused", collection=name, reason=verdict)

    return Distribution("fused", collection=name,
                        reason=f"top-level {plan._label()}")


# ---------------------------------------------------------------------------
# step-chain analysis
# ---------------------------------------------------------------------------


def _scatterable_steps(steps: list, root_name: str) -> str | None:
    """None when every step is shard-local, else the blocking reason."""
    if not steps:
        return "bare collection() yields shard roots"
    for index, step in enumerate(steps):
        if not isinstance(step, L.StepOp):
            return f"non-axis step {step._label()}"
        if step.axis not in LOCAL_AXES:
            return f"axis {step.axis} reaches across shard cuts"
        is_final = index == len(steps) - 1
        verdict = _local_test(step, steps[index + 1:], root_name,
                              final=is_final)
        if verdict is not None:
            return verdict
        for predicate in step.predicates:
            verdict = _local_predicate(predicate, root_name,
                                       first_step=index == 0)
            if verdict is not None:
                return verdict
    return None


def _local_test(step: L.StepOp, rest: list, root_name: str,
                *, final: bool) -> str | None:
    test = step.test
    if isinstance(test, ast.NameTest):
        if test.name == root_name:
            return f"name test matches the corpus root <{root_name}>"
        return None
    if isinstance(test, ast.WildcardTest):
        if step.axis in SELF_OR_UPWARD_AXES:
            return f"wildcard on {step.axis} can match the shard root"
        return None
    # KindTest: text()/leaf() observe cut-split text nodes; node() is
    # tolerated mid-chain when a later downward element step screens
    # out roots and split nodes (the ``//`` expansion).
    if test.kind == "node" and not final:
        for later in rest:
            if (isinstance(later, L.StepOp)
                    and later.axis in DOWNWARD_AXES
                    and isinstance(later.test,
                                   (ast.NameTest, ast.WildcardTest))):
                return None
        return "node() not followed by a downward element step"
    return f"{test.kind}() test can observe shard-split nodes"


def _local_predicate(predicate: L.PredicateOp, root_name: str,
                     *, first_step: bool) -> str | None:
    if predicate.semi_join is not None:
        axis, name = predicate.semi_join
        if axis not in LOCAL_AXES:
            return f"semi-join axis {axis} reaches across shard cuts"
        if name == root_name:
            return "semi-join against the corpus root"
        return None
    if first_step and predicate.positional_literal is not None:
        return "positional predicate against the corpus-root context"
    if first_step and not predicate.position_free:
        return "position()-reading predicate against the corpus root"
    if predicate.positional_literal is not None:
        return None
    return _local_plan(predicate.plan, root_name,
                       allow_focus=not first_step)


def _local_plan(plan: L.Plan, root_name: str, *,
                allow_focus: bool) -> str | None:
    """None when ``plan`` only reads shard-local state."""
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, L.CollectionOp):
            return "nested collection() reference"
        if isinstance(node, L.PathOp) and node.anchor == "root":
            return "root-anchored path inside a shard-local context"
        if isinstance(node, L.StepOp):
            if node.axis not in LOCAL_AXES:
                return f"axis {node.axis} reaches across shard cuts"
            verdict = _local_test(node, [], root_name, final=True)
            if verdict is not None:
                return verdict
        if isinstance(node, L.FuncOp):
            if node.name in ("position", "last"):
                if not allow_focus:
                    return f"{node.name}() against the corpus-root context"
            elif node.name not in LOCAL_FUNCTIONS:
                return f"function {node.name}() is not shard-local"
        if isinstance(node, L.PredicateOp):
            if node.semi_join is not None:
                verdict = _local_predicate(node, root_name,
                                           first_step=False)
                if verdict is not None:
                    return verdict
                continue
        stack.extend(L._children(node))
    return None


def _required_names(steps: list) -> list[str]:
    """Element names a shard must contain to produce any result.

    Every axis step with a NameTest emits only nodes of that name, so
    each spine name (and each semi-join probe name) must have non-zero
    cardinality in a shard for the shard to contribute — the pruning
    precondition the manifest statistics answer.
    """
    names: list[str] = []
    for step in steps:
        if not isinstance(step, L.StepOp):
            continue
        if step.axis == "attribute":
            # attribute names are not in the element cardinality map
            continue
        if isinstance(step.test, ast.NameTest):
            names.append(step.test.name)
        for predicate in step.predicates:
            if predicate.semi_join is not None:
                names.append(predicate.semi_join[1])
    seen: set[str] = set()
    ordered = []
    for name in names:
        if name not in seen:
            seen.add(name)
            ordered.append(name)
    return ordered


# ---------------------------------------------------------------------------
# FLWOR concat analysis
# ---------------------------------------------------------------------------


def _concatenable_flwor(plan: L.FLWOROp, collection: str, root_name: str,
                        name_hierarchies: dict[str, list[str]],
                        ) -> str | None:
    if not plan.streaming:
        return "order-by FLWOR needs a global sort"
    if not plan.clauses or not isinstance(plan.clauses[0], L.ForOp):
        return "FLWOR does not open with a for clause"
    outer = plan.clauses[0]
    if outer.position_variable is not None:
        return "positional for-binding counts across shards"
    sequence = outer.sequence
    if not (isinstance(sequence, L.PathOp)
            and isinstance(sequence.input, L.CollectionOp)):
        return "outer for does not iterate the collection"
    verdict = _scatterable_steps(sequence.steps, root_name)
    if verdict is not None:
        return verdict
    last = sequence.steps[-1]
    if not (isinstance(last, L.StepOp)
            and isinstance(last.test, ast.NameTest)):
        return "outer for-sequence must end in a single-name step"
    hierarchies = name_hierarchies.get(last.test.name, [])
    if len(hierarchies) != 1:
        return (f"<{last.test.name}> spans {len(hierarchies)} hierarchies;"
                " corpus order would interleave shards")
    for clause in plan.clauses[1:]:
        verdict = _local_clause(clause, root_name)
        if verdict is not None:
            return verdict
    return _local_plan(plan.return_plan, root_name, allow_focus=True)


def _local_clause(clause: L.Plan, root_name: str) -> str | None:
    if isinstance(clause, L.ForOp):
        return _local_plan(clause.sequence, root_name, allow_focus=True)
    if isinstance(clause, (L.LetOp, L.WhereOp)):
        return _local_plan(clause.plan, root_name, allow_focus=True)
    return f"clause {clause._label()} blocks shard concatenation"
