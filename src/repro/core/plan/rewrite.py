"""Rule-based AST rewrites — stage 2 of the query pipeline.

``rewrite(expr)`` returns ``(expr', notes)`` where ``expr'`` is an
equivalent AST and ``notes`` names every rule application (surfaced by
``CompiledQuery.explain()``).  Rules are deliberately conservative:
each one must preserve the *legacy evaluator's* observable behavior —
item-for-item results, including its documented ordering quirks — which
the differential tests enforce.

Rule catalog (DESIGN.md §8):

* **constant folding** — arithmetic, comparisons, boolean connectives,
  ``if`` and small integer ranges over literal operands collapse at
  compile time.  Anything that *could* raise at runtime (division by
  zero, incomparable types) is left alone so errors keep their timing.
* **anchor normalization** — ``//x`` (anchor ``descendant``) becomes an
  explicit ``descendant-or-self::node()`` first step so the fusion rule
  below can see it.
* **step fusion** — ``descendant-or-self::node()/child::T`` fuses to
  ``descendant::T``, and ``axis::*/self::x`` to ``axis::x``, whenever
  no predicate could observe the changed candidate grouping.

This module also hosts the static analyses the planner uses for the
remaining two rule families, which annotate the *plan* rather than the
AST: reverse-axis (order-insensitivity) normalization and
loop-invariant hoisting out of FLWOR bodies.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.lang import ast
from repro.core.runtime import values

#: Builtins whose first argument defaults to the context item, or that
#: read the focus directly — calling one with too few arguments makes
#: the expression focus-dependent.
_FOCUS_READING = frozenset({"position", "last"})

#: Builtins that are referentially transparent: same arguments, same
#: result, no observable effect on the document.  ``analyze-string`` is
#: excluded (it creates a temporary hierarchy per call), as is any
#: user-registered function the planner cannot see.
PURE_FUNCTIONS = frozenset({
    "position", "last", "count", "name", "local-name", "root",
    "hierarchy", "hierarchies", "leaves", "span", "string", "concat",
    "string-join", "contains", "starts-with", "ends-with", "substring",
    "substring-before", "substring-after", "string-length",
    "normalize-space", "translate", "upper-case", "lower-case",
    "matches", "replace", "tokenize", "number", "sum", "avg", "min",
    "max", "floor", "ceiling", "round", "abs", "boolean", "not",
    "true", "false", "exists", "empty", "data", "distinct-values",
    "reverse", "subsequence", "index-of", "insert-before", "remove",
})

#: Builtins whose result is always a boolean singleton, so a predicate
#: built from them can never act positionally.
BOOLEAN_FUNCTIONS = frozenset({
    "boolean", "not", "true", "false", "exists", "empty", "contains",
    "starts-with", "ends-with", "matches",
})


# ---------------------------------------------------------------------------
# generic bottom-up traversal
# ---------------------------------------------------------------------------


def _map_children(expr: ast.Expr, fn) -> ast.Expr:
    """One level of reconstruction with ``fn`` applied to child exprs."""
    if isinstance(expr, ast.SequenceExpr):
        return replace(expr, items=tuple(fn(e) for e in expr.items))
    if isinstance(expr, ast.RangeExpr):
        return replace(expr, lower=fn(expr.lower), upper=fn(expr.upper))
    if isinstance(expr, (ast.OrExpr, ast.AndExpr, ast.UnionExpr)):
        return replace(expr, operands=tuple(fn(e) for e in expr.operands))
    if isinstance(expr, (ast.ComparisonExpr, ast.ArithmeticExpr,
                         ast.IntersectExceptExpr)):
        return replace(expr, left=fn(expr.left), right=fn(expr.right))
    if isinstance(expr, ast.UnaryExpr):
        return replace(expr, operand=fn(expr.operand))
    if isinstance(expr, ast.PathExpr):
        steps = []
        for step in expr.steps:
            if isinstance(step, ast.ExprStep):
                steps.append(replace(step, expression=fn(step.expression)))
            else:
                steps.append(replace(step, predicates=tuple(
                    fn(p) for p in step.predicates)))
        primary = fn(expr.primary) if expr.primary is not None else None
        return replace(expr, steps=tuple(steps), primary=primary)
    if isinstance(expr, ast.FilterExpr):
        return replace(expr, primary=fn(expr.primary),
                       predicates=tuple(fn(p) for p in expr.predicates))
    if isinstance(expr, ast.FunctionCall):
        return replace(expr, args=tuple(fn(a) for a in expr.args))
    if isinstance(expr, ast.IfExpr):
        return replace(expr, condition=fn(expr.condition),
                       then=fn(expr.then), otherwise=fn(expr.otherwise))
    if isinstance(expr, ast.FLWORExpr):
        clauses = []
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                clauses.append(replace(clause, sequence=fn(clause.sequence)))
            elif isinstance(clause, ast.LetClause):
                clauses.append(replace(clause,
                                       expression=fn(clause.expression)))
            elif isinstance(clause, ast.WhereClause):
                clauses.append(replace(clause,
                                       condition=fn(clause.condition)))
            elif isinstance(clause, ast.OrderByClause):
                clauses.append(replace(clause, specs=tuple(
                    replace(spec, key=fn(spec.key))
                    for spec in clause.specs)))
            else:  # pragma: no cover - parser guarantees clause types
                clauses.append(clause)
        return replace(expr, clauses=tuple(clauses),
                       return_expr=fn(expr.return_expr))
    if isinstance(expr, ast.QuantifiedExpr):
        return replace(expr, bindings=tuple(
            (name, fn(e)) for name, e in expr.bindings),
            condition=fn(expr.condition))
    if isinstance(expr, ast.ElementConstructor):
        attributes = tuple(
            (name, ast.AttributeValue(tuple(
                part if isinstance(part, str) else fn(part)
                for part in value.parts)))
            for name, value in expr.attributes)
        content = tuple(piece if isinstance(piece, str) else fn(piece)
                        for piece in expr.content)
        return replace(expr, attributes=attributes, content=content)
    if isinstance(expr, ast.InsertExpr):
        return replace(expr, source=fn(expr.source), target=fn(expr.target))
    if isinstance(expr, (ast.DeleteExpr, ast.RemoveMarkupExpr,
                         ast.AddMarkupExpr)):
        return replace(expr, target=fn(expr.target))
    if isinstance(expr, ast.ReplaceValueExpr):
        return replace(expr, target=fn(expr.target), value=fn(expr.value))
    if isinstance(expr, ast.RenameExpr):
        return replace(expr, target=fn(expr.target), name=fn(expr.name))
    return expr  # leaf: Literal, VarRef, ContextItem


def bottom_up(expr: ast.Expr, fn) -> ast.Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` at every node."""
    return fn(_map_children(expr, lambda child: bottom_up(child, fn)))


# ---------------------------------------------------------------------------
# rule: constant folding
# ---------------------------------------------------------------------------


def _literal_number(expr: ast.Expr) -> int | float | None:
    if isinstance(expr, ast.Literal) and isinstance(
            expr.value, (int, float)) and not isinstance(expr.value, bool):
        return expr.value
    return None


def _fold_one(expr: ast.Expr, notes: list[str]) -> ast.Expr:
    """Fold one node whose children are already folded."""
    if isinstance(expr, ast.ArithmeticExpr):
        left = _literal_number(expr.left)
        right = _literal_number(expr.right)
        if left is None or right is None:
            return expr
        try:
            from repro.core.runtime.evaluator import _eval_arithmetic
            folded = _eval_arithmetic(expr, None)
        except Exception:
            return expr  # keep runtime errors at runtime
        notes.append(f"constant-folding: {left} {expr.op} {right}"
                     f" -> {folded[0]}")
        return ast.Literal(folded[0], expr.offset)
    if isinstance(expr, ast.UnaryExpr):
        value = _literal_number(expr.operand)
        if value is None:
            return expr
        result = -value if expr.op == "-" else value
        notes.append(f"constant-folding: {expr.op}{value} -> {result}")
        return ast.Literal(result, expr.offset)
    if isinstance(expr, ast.ComparisonExpr) and expr.style in (
            "general", "value"):
        if not (isinstance(expr.left, ast.Literal)
                and isinstance(expr.right, ast.Literal)):
            return expr
        try:
            if expr.style == "general":
                result = values.general_compare(
                    expr.op, [expr.left.value], [expr.right.value])
            else:
                result = values.value_compare(
                    expr.op, [expr.left.value], [expr.right.value])[0]
        except Exception:
            return expr
        notes.append(f"constant-folding: comparison -> {result}")
        return ast.Literal(result, expr.offset)
    if isinstance(expr, (ast.AndExpr, ast.OrExpr)):
        return _fold_connective(expr, notes)
    if isinstance(expr, ast.IfExpr) and isinstance(
            expr.condition, ast.Literal):
        taken = values.effective_boolean_value([expr.condition.value])
        notes.append(f"constant-folding: if({expr.condition.value!r}) -> "
                     f"{'then' if taken else 'else'} branch")
        return expr.then if taken else expr.otherwise
    if isinstance(expr, ast.RangeExpr):
        lower = _literal_number(expr.lower)
        upper = _literal_number(expr.upper)
        if (isinstance(lower, int) and isinstance(upper, int)
                and upper - lower < 1024):
            notes.append(f"constant-folding: {lower} to {upper}")
            return ast.SequenceExpr(tuple(
                ast.Literal(i, expr.offset)
                for i in range(lower, upper + 1)), expr.offset)
    return expr


def _fold_connective(expr: ast.AndExpr | ast.OrExpr,
                     notes: list[str]) -> ast.Expr:
    """Short-circuit and/or over literal operands.

    Literal operands that cannot decide the result are dropped; a
    literal operand that decides it truncates the operand list there
    (operands *before* it must still run — they may raise).
    """
    is_or = isinstance(expr, ast.OrExpr)
    kept: list[ast.Expr] = []
    decided = False
    for operand in expr.operands:
        if isinstance(operand, ast.Literal):
            truthy = values.effective_boolean_value([operand.value])
            if truthy == is_or:   # decides the connective
                decided = True
                break
            continue              # neutral literal: drop it
        kept.append(operand)
    if not kept:
        result = decided if is_or else not decided
        notes.append(f"constant-folding: {'or' if is_or else 'and'} -> "
                     f"{result}")
        return ast.Literal(result, expr.offset)
    if decided:
        kept.append(ast.Literal(is_or, expr.offset))
    if len(kept) == len(expr.operands):
        return expr
    notes.append(f"constant-folding: simplified "
                 f"{'or' if is_or else 'and'} operands")
    return replace(expr, operands=tuple(kept))


# ---------------------------------------------------------------------------
# rule: anchor normalization + step fusion
# ---------------------------------------------------------------------------

_DOS_NODE = ast.Step("descendant-or-self", ast.KindTest("node"))


def _normalize_anchor(expr: ast.Expr, notes: list[str]) -> ast.Expr:
    """``//x`` → explicit root + ``descendant-or-self::node()`` step."""
    if isinstance(expr, ast.PathExpr) and expr.anchor == "descendant":
        notes.append("anchor-normalization: // -> "
                     "/descendant-or-self::node()/")
        return replace(expr, anchor="root",
                       steps=(_DOS_NODE,) + expr.steps)
    return expr


def _is_dos_node(step) -> bool:
    return (isinstance(step, ast.Step)
            and step.axis == "descendant-or-self"
            and isinstance(step.test, ast.KindTest)
            and step.test.kind == "node"
            and not step.test.hierarchies
            and not step.predicates)


def _position_free_boolean(predicates: tuple[ast.Expr, ...]) -> bool:
    """True when every predicate filters identically regardless of the
    candidate grouping: statically boolean-valued and never reading
    ``position()``/``last()``."""
    return all(is_statically_boolean(p) and not uses_position(p)
               for p in predicates)


def _fuse_steps(expr: ast.Expr, notes: list[str]) -> ast.Expr:
    if not isinstance(expr, ast.PathExpr) or len(expr.steps) < 2:
        return expr
    steps = list(expr.steps)
    changed = True
    while changed:
        changed = False
        for i in range(len(steps) - 1):
            first, second = steps[i], steps[i + 1]
            if not isinstance(first, ast.Step) or not isinstance(
                    second, ast.Step):
                continue
            if (_is_dos_node(first) and second.axis == "child"
                    and _position_free_boolean(second.predicates)):
                steps[i:i + 2] = [replace(second, axis="descendant")]
                notes.append("step-fusion: descendant-or-self::node()/"
                             "child::T -> descendant::T")
                changed = True
                break
            if (second.axis == "self"
                    and isinstance(second.test, ast.NameTest)
                    and isinstance(first.test, ast.WildcardTest)
                    and not first.test.hierarchies
                    and first.axis != "attribute"
                    and not first.predicates
                    and _position_free_boolean(second.predicates)):
                steps[i:i + 2] = [replace(second, axis=first.axis)]
                notes.append(f"step-fusion: {first.axis}::*/self::"
                             f"{second.test.name} -> {first.axis}::"
                             f"{second.test.name}")
                changed = True
                break
    if len(steps) == len(expr.steps):
        return expr
    return replace(expr, steps=tuple(steps))


# ---------------------------------------------------------------------------
# static analyses (used by the planner for the plan-level rules)
# ---------------------------------------------------------------------------


def uses_focus(expr: ast.Expr) -> bool:
    """True when evaluating ``expr`` reads the *incoming* focus.

    Sub-expressions that establish their own focus (step and filter
    predicates, expression steps) do not count; a relative path or a
    context-defaulting zero-argument function call does.
    """
    if isinstance(expr, ast.ContextItem):
        return True
    if isinstance(expr, ast.PathExpr):
        if expr.primary is not None:
            return uses_focus(expr.primary)
        return expr.anchor == "relative"
    if isinstance(expr, ast.FilterExpr):
        return uses_focus(expr.primary)
    if isinstance(expr, ast.FunctionCall):
        if expr.name in _FOCUS_READING or not expr.args:
            return True
        return any(uses_focus(a) for a in expr.args)
    if isinstance(expr, ast.SequenceExpr):
        return any(uses_focus(e) for e in expr.items)
    if isinstance(expr, ast.RangeExpr):
        return uses_focus(expr.lower) or uses_focus(expr.upper)
    if isinstance(expr, (ast.OrExpr, ast.AndExpr, ast.UnionExpr)):
        return any(uses_focus(e) for e in expr.operands)
    if isinstance(expr, (ast.ComparisonExpr, ast.ArithmeticExpr,
                         ast.IntersectExceptExpr)):
        return uses_focus(expr.left) or uses_focus(expr.right)
    if isinstance(expr, ast.UnaryExpr):
        return uses_focus(expr.operand)
    if isinstance(expr, ast.IfExpr):
        return (uses_focus(expr.condition) or uses_focus(expr.then)
                or uses_focus(expr.otherwise))
    if isinstance(expr, ast.FLWORExpr):
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                if uses_focus(clause.sequence):
                    return True
            elif isinstance(clause, ast.LetClause):
                if uses_focus(clause.expression):
                    return True
            elif isinstance(clause, ast.WhereClause):
                if uses_focus(clause.condition):
                    return True
            elif isinstance(clause, ast.OrderByClause):
                if any(uses_focus(spec.key) for spec in clause.specs):
                    return True
        return uses_focus(expr.return_expr)
    if isinstance(expr, ast.QuantifiedExpr):
        return (any(uses_focus(e) for _name, e in expr.bindings)
                or uses_focus(expr.condition))
    if isinstance(expr, ast.ElementConstructor):
        for _name, value in expr.attributes:
            if any(uses_focus(p) for p in value.parts
                   if not isinstance(p, str)):
                return True
        return any(uses_focus(p) for p in expr.content
                   if not isinstance(p, str))
    return False


def uses_position(expr: ast.Expr) -> bool:
    """True when any sub-expression calls ``position()`` or ``last()``.

    Conservative: a nested predicate's own focus also counts, so a
    ``True`` result may overestimate — never underestimate.
    """
    return any(isinstance(sub, ast.FunctionCall)
               and sub.name in _FOCUS_READING
               for sub in ast.walk(expr))


def is_pure(expr: ast.Expr) -> bool:
    """True when re-evaluating ``expr`` can neither produce a different
    value nor observably touch the document (function whitelist)."""
    return all(not isinstance(sub, ast.FunctionCall)
               or sub.name in PURE_FUNCTIONS
               for sub in ast.walk(expr))


def free_variables(expr: ast.Expr) -> frozenset[str]:
    """Variable names ``expr`` reads from its environment."""
    free: set[str] = set()
    _free_vars(expr, frozenset(), free)
    return frozenset(free)


def _free_vars(expr: ast.Expr, bound: frozenset[str],
               free: set[str]) -> None:
    if isinstance(expr, ast.VarRef):
        if expr.name not in bound:
            free.add(expr.name)
        return
    if isinstance(expr, ast.FLWORExpr):
        inner = bound
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                _free_vars(clause.sequence, inner, free)
                inner = inner | {clause.variable}
                if clause.position_variable:
                    inner = inner | {clause.position_variable}
            elif isinstance(clause, ast.LetClause):
                _free_vars(clause.expression, inner, free)
                inner = inner | {clause.variable}
            elif isinstance(clause, ast.WhereClause):
                _free_vars(clause.condition, inner, free)
            elif isinstance(clause, ast.OrderByClause):
                for spec in clause.specs:
                    _free_vars(spec.key, inner, free)
        _free_vars(expr.return_expr, inner, free)
        return
    if isinstance(expr, ast.QuantifiedExpr):
        inner = bound
        for name, sequence in expr.bindings:
            _free_vars(sequence, inner, free)
            inner = inner | {name}
        _free_vars(expr.condition, inner, free)
        return
    for child in _direct_children(expr):
        _free_vars(child, bound, free)


def _direct_children(expr: ast.Expr) -> list[ast.Expr]:
    children: list[ast.Expr] = []
    _map_children(expr, lambda c: children.append(c) or c)
    return children


def is_statically_boolean(expr: ast.Expr) -> bool:
    """True when ``expr`` can never evaluate to a bare number — so a
    predicate built from it always filters by effective boolean value,
    never positionally."""
    if isinstance(expr, (ast.ComparisonExpr, ast.AndExpr, ast.OrExpr,
                         ast.QuantifiedExpr)):
        return True
    if isinstance(expr, ast.Literal):
        return isinstance(expr.value, str)
    if isinstance(expr, ast.FunctionCall):
        return expr.name in BOOLEAN_FUNCTIONS
    if isinstance(expr, ast.PathExpr):
        # A path ending in an axis step yields nodes (EBV), but an
        # expression-step tail may yield numbers.
        return bool(expr.steps) and all(
            isinstance(step, ast.Step) for step in expr.steps)
    if isinstance(expr, (ast.UnionExpr, ast.IntersectExceptExpr)):
        return True  # node sequences
    if isinstance(expr, ast.IfExpr):
        return (is_statically_boolean(expr.then)
                and is_statically_boolean(expr.otherwise))
    return False


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def rewrite(expr: ast.Expr) -> tuple[ast.Expr, list[str]]:
    """Apply every AST-level rewrite rule; return the new AST + notes."""
    notes: list[str] = []

    def visit(node: ast.Expr) -> ast.Expr:
        node = _fold_one(node, notes)
        node = _normalize_anchor(node, notes)
        node = _fuse_steps(node, notes)
        return node

    return bottom_up(expr, visit), notes
