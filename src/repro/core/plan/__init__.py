"""The query compilation pipeline: parse → rewrite → plan → execute.

This package is the compile step between the language front end and
the array-backed navigation engine (DESIGN.md §8):

1. :mod:`~repro.core.plan.rewrite` — rule-based AST rewrites (constant
   folding, anchor normalization, step fusion) plus the static
   analyses behind the plan-level rules;
2. :mod:`~repro.core.plan.planner` — AST → logical plan, annotating
   order-insensitive steps (reverse-axis normalization) and
   loop-invariant FLWOR clauses (hoisting);
3. :mod:`~repro.core.plan.logical` — the typed operator IR and the
   ``explain()`` rendering;
4. :mod:`~repro.core.plan.physical` — closure compilation and
   set-at-a-time step execution over the batched axis entry point.

:func:`compile_query` produces a :class:`CompiledQuery`; the engine
caches these in an LRU keyed by query text + options.  The legacy
tree-walking evaluator (:func:`repro.core.runtime.evaluate_query`)
stays as the differential-testing oracle.
"""

from __future__ import annotations

from repro.core.lang import ast
from repro.core.lang.parser import parse_query, parse_xpath
from repro.core.plan.logical import Plan, render_plan
from repro.core.plan.physical import compile_plan, execute_plan
from repro.core.plan.planner import build_plan
from repro.core.plan.rewrite import rewrite
from repro.core.runtime.context import QueryOptions, QueryStats

__all__ = [
    "CompiledQuery",
    "PLAN_VERSION",
    "compile_query",
    "build_plan",
    "rewrite",
    "render_plan",
]

#: Version of the plan pipeline's lowering rules.  Compilation is a
#: pure function of (query text, grammar, *these rules*); caches that
#: may outlive one pipeline revision — the store's cross-document
#: :class:`~repro.store.plancache.SharedPlanCache` — key on it next to
#: :data:`repro.core.lang.GRAMMAR_VERSION` so a rule change orphans
#: stale plans instead of serving them.  Bumped by PR 5 (extended-axis
#: steps and cross-hierarchy predicates lower to interval joins);
#: bumped by PR 7 (``collection()`` lowers to a CollectionOp leaf);
#: bumped by PR 10 (the cost pass: statistics-driven join reversal and
#: predicate reordering — costed plans additionally key on the
#: statistics fingerprint, see ``SharedPlanCache``).
PLAN_VERSION = 4


class CompiledQuery:
    """One query compiled through the full pipeline, ready to run."""

    __slots__ = ("text", "source_ast", "rewritten_ast", "plan",
                 "rewrites", "costed", "_runner")

    def __init__(self, text: str, source_ast: ast.Expr,
                 rewritten_ast: ast.Expr, plan: Plan,
                 rewrites: list[str], runner,
                 costed: bool = False) -> None:
        self.text = text
        self.source_ast = source_ast
        self.rewritten_ast = rewritten_ast
        self.plan = plan
        #: every rewrite/annotation rule application, in order
        self.rewrites = rewrites
        #: True when the statistics-driven cost pass ran (DESIGN.md §16)
        self.costed = costed
        self._runner = runner

    def execute(self, goddag, variables=None, options=None,
                functions=None, keep_temporaries: bool = False,
                stats: QueryStats | None = None) -> list:
        """Run against a KyGODDAG; same lifecycle as ``evaluate_query``."""
        return execute_plan(self._runner, goddag, variables=variables,
                            options=options, functions=functions,
                            keep_temporaries=keep_temporaries,
                            stats=stats)

    def explain(self, actuals: dict[int, int] | None = None,
                miss_factor: float = 8.0) -> str:
        """The human-readable pipeline report: query, rewrites, plan.

        On costed plans each step line carries its estimate; pass the
        executor's recorded ``actuals`` (``QueryStats.op_actuals``) to
        render ``[est=… act=…]`` with ``!`` flagging misestimates.
        """
        lines = [f"query: {' '.join(self.text.split())}"]
        lines.append("rewrites:")
        if self.rewrites:
            lines.extend(f"  - {note}" for note in self.rewrites)
        else:
            lines.append("  (none)")
        lines.append("plan:")
        lines.append(render_plan(self.plan, indent=1, actuals=actuals,
                                 miss_factor=miss_factor))
        return "\n".join(lines)


def compile_query(query: str | ast.Expr, *, xpath: bool = False,
                  stats=None) -> CompiledQuery:
    """Compile a query (or pre-parsed AST) through the pipeline.

    With ``stats`` (a :class:`~repro.core.goddag.stats.PlanStats`) the
    cost pass runs between planning and closure compilation: join-pair
    reversal, predicate reordering, and per-step cardinality estimates
    (DESIGN.md §16).  Without it the lowering is purely mechanical —
    the differential oracle the costed path is tested against.
    """
    if isinstance(query, str):
        text = query
        source = parse_xpath(text) if xpath else parse_query(text)
    else:
        source = query
        text = f"<precompiled {type(query).__name__}>"
    rewritten, notes = rewrite(source)
    plan = build_plan(rewritten, notes)
    costed = False
    if stats is not None:
        from repro.core.plan.cost import apply_cost
        costed = apply_cost(plan, stats, notes) > 0
    runner = compile_plan(plan)
    return CompiledQuery(text, source, rewritten, plan, notes, runner,
                         costed=costed)
