"""The query compilation pipeline: parse → rewrite → plan → execute.

This package is the compile step between the language front end and
the array-backed navigation engine (DESIGN.md §8):

1. :mod:`~repro.core.plan.rewrite` — rule-based AST rewrites (constant
   folding, anchor normalization, step fusion) plus the static
   analyses behind the plan-level rules;
2. :mod:`~repro.core.plan.planner` — AST → logical plan, annotating
   order-insensitive steps (reverse-axis normalization) and
   loop-invariant FLWOR clauses (hoisting);
3. :mod:`~repro.core.plan.logical` — the typed operator IR and the
   ``explain()`` rendering;
4. :mod:`~repro.core.plan.physical` — closure compilation and
   set-at-a-time step execution over the batched axis entry point.

:func:`compile_query` produces a :class:`CompiledQuery`; the engine
caches these in an LRU keyed by query text + options.  The legacy
tree-walking evaluator (:func:`repro.core.runtime.evaluate_query`)
stays as the differential-testing oracle.
"""

from __future__ import annotations

from repro.core.lang import ast
from repro.core.lang.parser import parse_query, parse_xpath
from repro.core.plan.logical import Plan, render_plan
from repro.core.plan.physical import compile_plan, execute_plan
from repro.core.plan.planner import build_plan
from repro.core.plan.rewrite import rewrite
from repro.core.runtime.context import QueryOptions, QueryStats

__all__ = [
    "CompiledQuery",
    "PLAN_VERSION",
    "compile_query",
    "build_plan",
    "rewrite",
    "render_plan",
]

#: Version of the plan pipeline's lowering rules.  Compilation is a
#: pure function of (query text, grammar, *these rules*); caches that
#: may outlive one pipeline revision — the store's cross-document
#: :class:`~repro.store.plancache.SharedPlanCache` — key on it next to
#: :data:`repro.core.lang.GRAMMAR_VERSION` so a rule change orphans
#: stale plans instead of serving them.  Bumped by PR 5 (extended-axis
#: steps and cross-hierarchy predicates lower to interval joins);
#: bumped by PR 7 (``collection()`` lowers to a CollectionOp leaf).
PLAN_VERSION = 3


class CompiledQuery:
    """One query compiled through the full pipeline, ready to run."""

    __slots__ = ("text", "source_ast", "rewritten_ast", "plan",
                 "rewrites", "_runner")

    def __init__(self, text: str, source_ast: ast.Expr,
                 rewritten_ast: ast.Expr, plan: Plan,
                 rewrites: list[str], runner) -> None:
        self.text = text
        self.source_ast = source_ast
        self.rewritten_ast = rewritten_ast
        self.plan = plan
        #: every rewrite/annotation rule application, in order
        self.rewrites = rewrites
        self._runner = runner

    def execute(self, goddag, variables=None, options=None,
                functions=None, keep_temporaries: bool = False,
                stats: QueryStats | None = None) -> list:
        """Run against a KyGODDAG; same lifecycle as ``evaluate_query``."""
        return execute_plan(self._runner, goddag, variables=variables,
                            options=options, functions=functions,
                            keep_temporaries=keep_temporaries,
                            stats=stats)

    def explain(self) -> str:
        """The human-readable pipeline report: query, rewrites, plan."""
        lines = [f"query: {' '.join(self.text.split())}"]
        lines.append("rewrites:")
        if self.rewrites:
            lines.extend(f"  - {note}" for note in self.rewrites)
        else:
            lines.append("  (none)")
        lines.append("plan:")
        lines.append(render_plan(self.plan, indent=1))
        return "\n".join(lines)


def compile_query(query: str | ast.Expr, *,
                  xpath: bool = False) -> CompiledQuery:
    """Compile a query (or pre-parsed AST) through the pipeline."""
    if isinstance(query, str):
        text = query
        source = parse_xpath(text) if xpath else parse_query(text)
    else:
        source = query
        text = f"<precompiled {type(query).__name__}>"
    rewritten, notes = rewrite(source)
    plan = build_plan(rewritten, notes)
    runner = compile_plan(plan)
    return CompiledQuery(text, source, rewritten, plan, notes, runner)
