"""Cost-based plan transforms and cardinality estimation (DESIGN.md §16).

The mechanical lowering in :mod:`repro.core.plan.planner` translates
the AST in source order.  ``BENCH_joins.json`` shows per-step spreads
of 8.5×–736× between the interval-join kernels at n=6400, so on
multi-step chains and multi-predicate filters *order* is the headline
win.  This module is the optional pass behind ``use_cost=True``:
given :class:`~repro.core.goddag.stats.PlanStats` it

* reorders commutative semi-join predicate conjunctions by estimated
  selectivity-per-cost (cheap, selective probes first),
* reverses a ``/descendant::A/axis::B`` join pair into
  ``/descendant::B[axis⁻¹::A]`` when the B side is estimated much
  smaller (the extended axes of Definition 1 are symmetric:
  ``b ∈ axis(a) ⟺ a ∈ axis⁻¹(b)``), and
* annotates every step with an estimated output cardinality
  (``op_id``/``est_rows``) so the physical layer can record actuals,
  ``explain()`` can render ``est=…/act=…``, and the executor can fall
  back to source order when an estimate misses
  (:mod:`repro.core.plan.physical`).

Every transform preserves item-for-item results — the mechanical
lowering stays on as the differential oracle
(``tests/test_plan_cost.py``).  Estimates only ever change *order*
and *direction*, never the answer.
"""

from __future__ import annotations

import itertools

from repro.core.goddag.joins import JOIN_KERNELS
from repro.core.goddag.stats import PlanStats
from repro.core.lang import ast
from repro.core.plan import logical as L
from repro.core.plan.planner import test_pushdowns

#: Definition 1 axis duality: ``b ∈ axis(a) ⟺ a ∈ REVERSE_AXIS[axis](b)``
#: for nonempty spans (empty spans are excluded by every kernel on both
#: sides, so the symmetric form sees the same pairs).
REVERSE_AXIS = {
    "xdescendant": "xancestor",
    "xancestor": "xdescendant",
    "xfollowing": "xpreceding",
    "xpreceding": "xfollowing",
    "overlapping": "overlapping",
    "preceding-overlapping": "following-overlapping",
    "following-overlapping": "preceding-overlapping",
}

#: Relative per-candidate probe cost by kernel, calibrated against the
#: BENCH_joins.json shapes (boundary ≪ containment < stab: two bisects
#: vs. a bisect plus prefix-max scan vs. pair-materializing stabs).
KERNEL_COST = {
    "boundary": 1.0,
    "containment": 3.0,
    "containment-reverse": 3.0,
    "stab": 5.0,
}

#: Per-element cost of a name-indexed descendant scan relative to one
#: boundary probe (a slice off the per-name interval columns).
SCAN_COST = 0.5

#: Selectivity assumed for predicates the estimator cannot model.
DEFAULT_SEL = 0.5

#: Reversing a join pair must look at least this much cheaper before
#: the pass rewrites it (hysteresis against estimate noise).
REVERSAL_MARGIN = 2.0


# ---------------------------------------------------------------------------
# estimation primitives
# ---------------------------------------------------------------------------


def _test_card(stats: PlanStats, test: ast.NodeTest) -> float:
    """Upper-bound cardinality of one node test over the document."""
    if isinstance(test, ast.NameTest):
        return float(stats.card(test.name))
    elements = sum(per_name for per in stats.cards.values()
                   for per_name in per.values())
    if isinstance(test, ast.WildcardTest):
        return float(elements)
    if test.kind == "leaf":
        return float(stats.leaf_count)
    if test.kind == "text":
        return float(max(0, stats.span_count - elements))
    if test.kind in ("comment", "processing-instruction"):
        return 0.0  # not span-index members; rare and uncounted
    return float(stats.span_count)  # node()


def _ctx_len(stats: PlanStats, ctx_name: str | None) -> float:
    """Mean span length of the context nodes feeding a join."""
    if ctx_name is None:
        return stats.avg_span_len()
    if ctx_name == stats.root_name:
        return float(stats.text_length)
    return stats.avg_len(ctx_name)


def join_fanout(stats: PlanStats, axis: str, ctx_name: str | None,
                name: str) -> float:
    """Expected ``axis::name`` partners per context node (pre-dedup)."""
    count = stats.nonempty(name)
    if not count:
        return 0.0
    text = float(max(1, stats.text_length))
    ctx_len = _ctx_len(stats, ctx_name)
    if axis == "xdescendant":
        return count * ctx_len / text
    if axis == "xancestor":
        # probability one name-span covers a fixed point, times count
        return count * stats.avg_len(name) / text
    if axis in ("overlapping", "preceding-overlapping",
                "following-overlapping"):
        fanout = count * (ctx_len + stats.avg_len(name)) / text
        if axis != "overlapping":
            fanout /= 2.0
        return fanout
    # boundary axes: on average half the name-spans lie to one side
    return count / 2.0


def join_selectivity(stats: PlanStats, axis: str, ctx_name: str | None,
                     name: str) -> float:
    """Estimated fraction of context nodes with ≥1 ``axis::name``
    partner — the selectivity of a semi-join existence probe."""
    count = stats.nonempty(name)
    if not count:
        return 0.0
    if axis in ("xfollowing", "xpreceding"):
        # an element to one side almost always exists; refine via the
        # start histogram against the name's extent
        entry = stats.names.get(name)
        if entry is None:
            return 1.0
        if axis == "xfollowing":
            return max(0.05, 1.0 - stats.start_fraction_below(
                entry["max_end"]))
        return max(0.05, stats.start_fraction_below(entry["min_start"]))
    if axis == "xancestor":
        return max(0.0, min(1.0, stats.coverage(name)))
    return max(0.0, min(1.0, join_fanout(stats, axis, ctx_name, name)))


def predicate_selectivity(stats: PlanStats, predicate: L.PredicateOp,
                          ctx_name: str | None) -> float:
    """Estimated surviving fraction for one step predicate."""
    if predicate.semi_join is not None:
        axis, name = predicate.semi_join
        return join_selectivity(stats, axis, ctx_name, name)
    if predicate.positional_literal is not None:
        return DEFAULT_SEL  # one item per context; context count unknown
    return DEFAULT_SEL


def probe_cost(axis: str) -> float:
    """Relative per-candidate cost of one semi-join probe."""
    return KERNEL_COST.get(JOIN_KERNELS.get(axis, ""), 3.0)


# ---------------------------------------------------------------------------
# transforms
# ---------------------------------------------------------------------------


def _reorder_predicates(step: L.StepOp, stats: PlanStats,
                        notes: list[str]) -> None:
    """Sort an all-semi-join predicate conjunction by benefit.

    Semi-join probes are boolean and position-free by construction, so
    the conjunction commutes; the classic filter-ordering rank —
    ``(1 - selectivity) / cost`` descending — runs the probes that
    discard the most candidates per unit of work first.  The original
    position survives in ``source_order`` so the adaptive executor can
    restore it mid-plan (DESIGN.md §16).
    """
    predicates = step.predicates
    if len(predicates) < 2:
        return
    if not all(p.semi_join is not None for p in predicates):
        return
    ctx_name = (step.test.name
                if isinstance(step.test, ast.NameTest) else None)
    for position, predicate in enumerate(predicates):
        predicate.source_order = position
        predicate.est_selectivity = predicate_selectivity(
            stats, predicate, ctx_name)

    def rank(predicate: L.PredicateOp) -> float:
        cost = probe_cost(predicate.semi_join[0])
        return -(1.0 - predicate.est_selectivity) / cost

    reordered = sorted(predicates, key=rank)
    if reordered != predicates:
        step.predicates = reordered
        order = ", ".join(
            f"{p.semi_join[0]}::{p.semi_join[1]}"
            f"(sel={p.est_selectivity:.2f})" for p in reordered)
        notes.append("cost: reordered semi-join conjunction on "
                     f"{step.axis}::{L.render_test(step.test)} → {order}")


def _reversible_pair(path: L.PathOp) -> tuple[L.StepOp,
                                              L.IntervalJoinOp] | None:
    """Recognize the ``/descendant::A/axis::B`` shape.

    The narrow gate keeps the rewrite provably result-preserving: a
    root-anchored two-step path whose first step is a bare named
    descendant scan and whose second is an extended-axis join with at
    most semi-join predicates (commutative, so they transfer onto the
    reversed scan unchanged).
    """
    if path.anchor != "root" or path.input is not None:
        return None
    if len(path.steps) != 2:
        return None
    first, second = path.steps
    if type(first) is not L.StepOp or first.axis != "descendant":
        return None
    if not isinstance(first.test, ast.NameTest) or first.predicates:
        return None
    if not isinstance(second, L.IntervalJoinOp):
        return None
    if second.axis not in REVERSE_AXIS:
        return None
    if not isinstance(second.test, ast.NameTest):
        return None
    if not all(p.semi_join is not None and p.position_free
               for p in second.predicates):
        return None
    return first, second


def _reverse_join_pair(path: L.PathOp, stats: PlanStats,
                       notes: list[str]) -> bool:
    """Rewrite ``/descendant::A/axis::B`` → ``/descendant::B[axis⁻¹::A]``
    when the B side is estimated ≥``REVERSAL_MARGIN``× cheaper.

    Correctness: by Definition 1 symmetry the B nodes with an A
    partner under ``axis`` are exactly the B nodes whose ``axis⁻¹``
    contains an A node; both forms produce that node set deduplicated
    in document order.  Skipped when the document root carries either
    name — the root sits outside ``/descendant::`` scans but inside
    per-node axis results, the one asymmetry of the duality.
    """
    pair = _reversible_pair(path)
    if pair is None:
        return False
    first, second = pair
    name_a = first.test.name
    name_b = second.test.name
    if stats.root_name in (name_a, name_b):
        return False
    card_a = float(stats.card(name_a))
    card_b = float(stats.card(name_b))
    if not card_a or not card_b:
        return False
    kernel_cost = KERNEL_COST.get(second.kernel, 3.0)
    forward_cost = card_a * (
        kernel_cost + join_fanout(stats, second.axis, name_a, name_b))
    reverse_axis = REVERSE_AXIS[second.axis]
    reversed_cost = card_b * (SCAN_COST + probe_cost(reverse_axis))
    if reversed_cost * REVERSAL_MARGIN >= forward_cost:
        return False
    skip_leaves, leaves_only, name_hint = test_pushdowns(first.test)
    inner = L.IntervalJoinOp(
        axis=reverse_axis, test=first.test, predicates=[],
        emit="any", skip_leaves=skip_leaves, leaves_only=leaves_only,
        name_hint=name_hint, kernel=JOIN_KERNELS[reverse_axis])
    probe = L.PredicateOp(
        L.PathOp("relative", None, [inner], ordered_result=False),
        boolean_only=True, position_free=True,
        semi_join=(reverse_axis, name_a))
    skip_leaves, leaves_only, name_hint = test_pushdowns(second.test)
    scan = L.StepOp(
        axis="descendant", test=second.test,
        predicates=[probe] + list(second.predicates),
        emit="legacy" if path.ordered_result else "any",
        skip_leaves=skip_leaves, leaves_only=leaves_only,
        name_hint=name_hint)
    path.steps = [scan]
    notes.append(
        f"cost: reversed join pair descendant::{name_a}/"
        f"{second.axis}::{name_b} → descendant::{name_b}"
        f"[{reverse_axis}::{name_a}] "
        f"(est {forward_cost:.0f} vs {reversed_cost:.0f})")
    return True


# ---------------------------------------------------------------------------
# annotation
# ---------------------------------------------------------------------------


def _estimate_step(stats: PlanStats, step: L.StepOp,
                   ctx_rows: float | None,
                   ctx_name: str | None) -> float:
    """Estimated output cardinality of one step (post-dedup)."""
    card = _test_card(stats, step.test)
    if isinstance(step, L.IntervalJoinOp) and isinstance(
            step.test, ast.NameTest):
        if ctx_rows is None:
            estimate = card
        else:
            fanout = join_fanout(stats, step.axis, ctx_name,
                                 step.test.name)
            estimate = min(card, ctx_rows * fanout)
    else:
        # standard axes: the name's total population is the honest
        # upper bound; root-anchored descendant scans hit it exactly
        estimate = card
    for predicate in step.predicates:
        ctx = (step.test.name
               if isinstance(step.test, ast.NameTest) else None)
        selectivity = predicate_selectivity(stats, predicate, ctx)
        if predicate.est_selectivity is None:
            predicate.est_selectivity = selectivity
        estimate *= selectivity
    return max(0.0, estimate)


def _annotate_path(path: L.PathOp, stats: PlanStats,
                   counter) -> None:
    if path.anchor == "root":
        ctx_rows: float | None = 1.0
        ctx_name: str | None = stats.root_name
    else:
        ctx_rows = None
        ctx_name = None
    for step in path.steps:
        if not isinstance(step, L.StepOp):
            ctx_rows = None
            ctx_name = None
            continue
        step.op_id = next(counter)
        step.est_rows = _estimate_step(stats, step, ctx_rows, ctx_name)
        ctx_rows = step.est_rows
        ctx_name = (step.test.name
                    if isinstance(step.test, ast.NameTest) else None)


def _subplans(plan: L.Plan) -> list[L.Plan]:
    """All child plans, including those the explain tree elides —
    except the inner paths of batched semi-join / positional
    predicates, which the physical layer never runs as plans."""
    if isinstance(plan, L.PredicateOp):
        if (plan.semi_join is not None
                or plan.positional_literal is not None):
            return []
        return [plan.plan]
    if isinstance(plan, L.StepOp):
        return list(plan.predicates)
    if isinstance(plan, L.PathOp):
        head = [plan.input] if plan.input is not None else []
        return head + list(plan.steps)
    return L._children(plan)


def apply_cost(plan: L.Plan, stats: PlanStats,
               notes: list[str]) -> int:
    """Run the cost pass over a freshly-built logical plan, in place.

    Transforms first (join-pair reversal, then predicate reordering —
    reversal synthesizes probes the reorder pass then ranks), then the
    estimate annotation walk.  Returns the number of operators
    annotated with ``op_id``/``est_rows``.
    """
    paths: list[L.PathOp] = []
    steps: list[L.StepOp] = []

    def visit(node: L.Plan) -> None:
        if isinstance(node, L.PathOp):
            paths.append(node)
        if isinstance(node, L.StepOp):
            steps.append(node)
        for child in _subplans(node):
            visit(child)

    visit(plan)
    for path in paths:
        _reverse_join_pair(path, stats, notes)
    # re-collect: reversal replaced steps
    paths = []
    steps = []
    visit(plan)
    for step in steps:
        _reorder_predicates(step, stats, notes)
    counter = itertools.count()
    for path in paths:
        _annotate_path(path, stats, counter)
    return next(counter)


def final_estimate(plan: L.Plan) -> tuple[int, float] | None:
    """The last annotated operator's ``(op_id, est_rows)`` — the
    plan's bottom-line cardinality estimate for observability
    (``/statz``, access logs)."""
    best: tuple[int, float] | None = None

    def visit(node: L.Plan) -> None:
        nonlocal best
        if (isinstance(node, L.StepOp) and node.op_id >= 0
                and node.est_rows is not None):
            if best is None or node.op_id > best[0]:
                best = (node.op_id, node.est_rows)
        for child in _subplans(node):
            visit(child)

    visit(plan)
    return best
