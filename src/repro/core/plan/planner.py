"""AST → logical plan — stage 3 of the query pipeline.

Besides a structural translation, the planner applies the two rule
families that annotate the *plan* rather than the AST:

* **reverse-axis / order normalization** — a step whose emission order
  no later consumer can observe is marked ``emit="any"``: the physical
  layer then skips the per-step sort and the reverse-axis reversal
  (document order allows it because every later axis step re-merges by
  order key anyway).  The same analysis marks whole paths consumed only
  through their effective boolean value (predicates, conditions,
  ``exists``/``count`` arguments) as ``ordered_result=False``.
* **loop-invariant hoisting** — a pure ``let``/``where`` whose free
  variables are untouched by the enclosing ``for`` clauses is marked
  invariant; the physical FLWOR evaluates it on the first tuple only
  and reuses the value, which preserves the legacy evaluator's error
  timing and empty-stream behavior exactly (lazy hoisting).
"""

from __future__ import annotations

from repro.core.goddag.joins import JOIN_KERNELS
from repro.core.lang import ast
from repro.core.plan import logical as L
from repro.core.plan.rewrite import (
    free_variables,
    is_pure,
    is_statically_boolean,
    uses_position,
)

#: Builtins whose value is insensitive to the order of an argument
#: sequence (the multiset is preserved by construction).  ``sum``/
#: ``avg``/``min``/``max`` are deliberately excluded: float addition
#: and NaN comparisons are order-sensitive, and the oracle contract is
#: item-for-item equality.
_ORDER_INSENSITIVE_FUNCTIONS = frozenset({
    "count", "exists", "empty", "boolean", "not",
})


def build_plan(expr: ast.Expr,
               notes: list[str] | None = None) -> L.Plan:
    """Translate a rewritten AST into the logical plan."""
    if notes is None:
        notes = []
    return _plan(expr, True, notes)


def _plan(expr: ast.Expr, ordered: bool, notes: list[str]) -> L.Plan:
    if isinstance(expr, ast.Literal):
        return L.ConstOp([expr.value])
    if isinstance(expr, ast.VarRef):
        return L.VarOp(expr.name)
    if isinstance(expr, ast.ContextItem):
        return L.ContextOp()
    if isinstance(expr, ast.SequenceExpr):
        return L.SeqOp([_plan(e, ordered, notes) for e in expr.items])
    if isinstance(expr, ast.RangeExpr):
        return L.RangeOp(_plan(expr.lower, True, notes),
                         _plan(expr.upper, True, notes))
    if isinstance(expr, ast.OrExpr):
        return L.BoolOp("or", [_plan(e, False, notes)
                               for e in expr.operands])
    if isinstance(expr, ast.AndExpr):
        return L.BoolOp("and", [_plan(e, False, notes)
                                for e in expr.operands])
    if isinstance(expr, ast.ComparisonExpr):
        return L.CompareOp(expr.op, expr.style,
                           _plan(expr.left, True, notes),
                           _plan(expr.right, True, notes))
    if isinstance(expr, ast.ArithmeticExpr):
        return L.ArithOp(expr.op, _plan(expr.left, True, notes),
                         _plan(expr.right, True, notes))
    if isinstance(expr, ast.UnaryExpr):
        return L.NegOp(expr.op, _plan(expr.operand, True, notes))
    if isinstance(expr, ast.UnionExpr):
        return L.UnionOp([_plan(e, True, notes) for e in expr.operands])
    if isinstance(expr, ast.IntersectExceptExpr):
        return L.IntersectOp(expr.op, _plan(expr.left, True, notes),
                             _plan(expr.right, True, notes))
    if isinstance(expr, ast.IfExpr):
        return L.IfOp(_plan(expr.condition, False, notes),
                      _plan(expr.then, ordered, notes),
                      _plan(expr.otherwise, ordered, notes))
    if isinstance(expr, ast.QuantifiedExpr):
        return L.QuantOp(expr.quantifier,
                         [(name, _plan(e, True, notes))
                          for name, e in expr.bindings],
                         _plan(expr.condition, False, notes))
    if isinstance(expr, ast.FLWORExpr):
        return _plan_flwor(expr, notes)
    if isinstance(expr, ast.PathExpr):
        return _plan_path(expr, ordered, notes)
    if isinstance(expr, ast.FilterExpr):
        return L.FilterOp(_plan(expr.primary, True, notes),
                          [_plan_predicate(p, notes)
                           for p in expr.predicates])
    if isinstance(expr, ast.FunctionCall):
        if (expr.name == "collection" and len(expr.args) == 1
                and isinstance(expr.args[0], ast.Literal)
                and isinstance(expr.args[0].value, str)):
            return L.CollectionOp(expr.args[0].value)
        args_ordered = expr.name not in _ORDER_INSENSITIVE_FUNCTIONS
        return L.FuncOp(expr.name, [_plan(a, args_ordered, notes)
                                    for a in expr.args])
    if isinstance(expr, ast.UPDATE_NODES):
        return _plan_update(expr, notes)
    if isinstance(expr, ast.ElementConstructor):
        attributes = [
            (name, [part if isinstance(part, str)
                    else _plan(part, True, notes)
                    for part in value.parts])
            for name, value in expr.attributes]
        content = [piece if isinstance(piece, str)
                   else _plan(piece, True, notes)
                   for piece in expr.content]
        return L.ConstructOp(expr.name, attributes, content)
    raise TypeError(f"no planner for {type(expr).__name__}")


def _plan_update(expr: ast.Expr, notes: list[str]) -> L.UpdatePrimOp:
    """Updating expressions: targets/sources are ordinary (ordered)
    sub-plans; the operator emits pending-update primitives."""
    if isinstance(expr, ast.InsertExpr):
        return L.UpdatePrimOp("insert", [
            ("source", _plan(expr.source, True, notes)),
            ("target", _plan(expr.target, True, notes)),
        ], detail=expr.location, payload={"location": expr.location})
    if isinstance(expr, ast.DeleteExpr):
        return L.UpdatePrimOp("delete", [
            ("target", _plan(expr.target, True, notes)),
        ])
    if isinstance(expr, ast.ReplaceValueExpr):
        return L.UpdatePrimOp("replace-value", [
            ("target", _plan(expr.target, True, notes)),
            ("value", _plan(expr.value, True, notes)),
        ])
    if isinstance(expr, ast.RenameExpr):
        return L.UpdatePrimOp("rename", [
            ("target", _plan(expr.target, True, notes)),
            ("name", _plan(expr.name, True, notes)),
        ])
    if isinstance(expr, ast.AddMarkupExpr):
        return L.UpdatePrimOp("add-markup", [
            ("target", _plan(expr.target, True, notes)),
        ], detail=f"{expr.name} to '{expr.hierarchy}'",
            payload={"name": expr.name, "hierarchy": expr.hierarchy})
    if isinstance(expr, ast.RemoveMarkupExpr):
        return L.UpdatePrimOp("remove-markup", [
            ("target", _plan(expr.target, True, notes)),
        ])
    raise TypeError(  # pragma: no cover - UPDATE_NODES is exhaustive
        f"no update planner for {type(expr).__name__}")


# ---------------------------------------------------------------------------
# paths
# ---------------------------------------------------------------------------


def _plan_predicate(pred: ast.Expr, notes: list[str]) -> L.PredicateOp:
    if isinstance(pred, ast.Literal) and isinstance(
            pred.value, (int, float)) and not isinstance(pred.value, bool):
        value = pred.value
        if isinstance(value, float):
            position = int(value) if value.is_integer() else -1
        else:
            position = value
        return L.PredicateOp(L.ConstOp([pred.value]),
                             positional_literal=position)
    boolean_only = is_statically_boolean(pred)
    predicate = L.PredicateOp(_plan(pred, not boolean_only, notes),
                              boolean_only=boolean_only,
                              position_free=not uses_position(pred))
    semi_join = _semi_join_probe(predicate)
    if semi_join is not None:
        predicate.semi_join = semi_join
        axis, name = semi_join
        notes.append(f"join-lowering: [{axis}::{name}] predicate "
                     "batched as a semi-join existence probe")
    return predicate


def _semi_join_probe(predicate: L.PredicateOp) -> tuple[str, str] | None:
    """Recognize ``[extended-axis::name]`` cross-hierarchy predicates.

    The shape the batched semi-join probes handle: a bare relative
    single-step path over an extended axis with a plain name test and
    no inner predicates, consumed only through its EBV (boolean,
    position-free).  Anything else keeps the per-candidate evaluation.
    """
    if not predicate.boolean_only or not predicate.position_free:
        return None
    plan = predicate.plan
    if not (isinstance(plan, L.PathOp) and plan.input is None
            and plan.anchor == "relative" and len(plan.steps) == 1):
        return None
    step = plan.steps[0]
    if not isinstance(step, L.StepOp) or step.predicates:
        return None
    if step.axis not in JOIN_KERNELS or not isinstance(
            step.test, ast.NameTest):
        return None
    return step.axis, step.test.name


def test_pushdowns(test: ast.NodeTest) -> tuple[bool, bool, str | None]:
    """``(skip_leaves, leaves_only, name_hint)`` for one node test.

    Public: the cost pass (:mod:`repro.core.plan.cost`) uses it when
    synthesizing the scan step of a reversed join pair."""
    if isinstance(test, ast.NameTest):
        return True, False, test.name
    if isinstance(test, ast.WildcardTest):
        return True, False, None
    if test.kind == "leaf":
        return False, True, None
    if test.kind in ("text", "comment", "processing-instruction"):
        return True, False, None
    return False, False, None  # node(): leaves match


def _plan_path(expr: ast.PathExpr, ordered: bool,
               notes: list[str]) -> L.PathOp:
    steps: list[L.Plan] = []
    anchor = expr.anchor
    if anchor == "descendant":
        # Unrewritten ``//x``: make the legacy implicit step explicit.
        steps.append(L.StepOp(axis="descendant-or-self",
                              test=ast.KindTest("node")))
        anchor = "root"
    for step in expr.steps:
        if isinstance(step, ast.ExprStep):
            steps.append(L.ExprStepOp(_plan(step.expression, True, notes)))
            continue
        skip_leaves, leaves_only, name_hint = test_pushdowns(step.test)
        predicates = [_plan_predicate(p, notes) for p in step.predicates]
        if step.axis in JOIN_KERNELS:
            # Extended-axis steps lower to explicit interval-join
            # operators: the physical layer runs them as one
            # sorted-array join per step instead of per-node span
            # arithmetic (DESIGN.md §11).
            kernel = JOIN_KERNELS[step.axis]
            notes.append(f"join-lowering: {step.axis}:: step lowered "
                         f"to a set-at-a-time {kernel} join")
            steps.append(L.IntervalJoinOp(
                axis=step.axis, test=step.test, predicates=predicates,
                skip_leaves=skip_leaves, leaves_only=leaves_only,
                name_hint=name_hint, kernel=kernel))
        else:
            steps.append(L.StepOp(
                axis=step.axis, test=step.test, predicates=predicates,
                skip_leaves=skip_leaves, leaves_only=leaves_only,
                name_hint=name_hint))
    # Order normalization: an axis step's output order is unobservable
    # when the *next* step is again an axis step (an axis step's own
    # output never depends on its input order — per-input candidate
    # lists are independent and the cross-input merge re-sorts by order
    # key), or when it is the last step of a path no consumer reads in
    # order.  An expression step, by contrast, observes its input order
    # through ``position()``, so the step before one stays "legacy".
    for index, step in enumerate(steps):
        if not isinstance(step, L.StepOp):
            continue
        is_last = index == len(steps) - 1
        next_is_axis = (index + 1 < len(steps)
                        and isinstance(steps[index + 1], L.StepOp))
        if next_is_axis or (is_last and not ordered):
            step.emit = "any"
            if step.axis in _REVERSE_AXES:
                notes.append(
                    f"reverse-axis-normalization: {step.axis}:: step "
                    "treated as forward (order unobservable)")
    if expr.primary is not None:
        return L.PathOp("primary", _plan(expr.primary, True, notes),
                        steps, ordered_result=ordered)
    return L.PathOp(anchor, None, steps, ordered_result=ordered)


_REVERSE_AXES = frozenset({
    "ancestor", "ancestor-or-self", "preceding", "preceding-sibling",
    "parent", "xancestor", "xpreceding",
})


# ---------------------------------------------------------------------------
# FLWOR
# ---------------------------------------------------------------------------


def _plan_flwor(expr: ast.FLWORExpr, notes: list[str]) -> L.FLWOROp:
    streaming = not any(isinstance(c, ast.OrderByClause)
                        for c in expr.clauses)
    clauses: list[L.Plan] = []
    variant: set[str] = set()   # names whose value changes per tuple
    looped = False              # a for-clause has been seen
    for clause in expr.clauses:
        if isinstance(clause, ast.ForClause):
            clauses.append(L.ForOp(clause.variable,
                                   clause.position_variable,
                                   _plan(clause.sequence, True, notes)))
            looped = True
            variant.add(clause.variable)
            if clause.position_variable:
                variant.add(clause.position_variable)
        elif isinstance(clause, ast.LetClause):
            invariant = (streaming and looped
                         and is_pure(clause.expression)
                         and not (free_variables(clause.expression)
                                  & variant))
            if invariant:
                notes.append("hoist-invariant: let "
                             f"${clause.variable} evaluated once per "
                             "FLWOR execution")
                variant.discard(clause.variable)
            else:
                variant.add(clause.variable)
            clauses.append(L.LetOp(
                clause.variable,
                _plan(clause.expression, True, notes),
                invariant=invariant))
        elif isinstance(clause, ast.WhereClause):
            invariant = (streaming and looped
                         and is_pure(clause.condition)
                         and not (free_variables(clause.condition)
                                  & variant))
            if invariant:
                notes.append("hoist-invariant: where condition "
                             "evaluated once per FLWOR execution")
            clauses.append(L.WhereOp(
                _plan(clause.condition, False, notes),
                invariant=invariant))
        elif isinstance(clause, ast.OrderByClause):
            clauses.append(L.OrderOp([
                (_plan(spec.key, True, notes), spec.descending,
                 spec.empty_least)
                for spec in clause.specs]))
        else:  # pragma: no cover - parser guarantees clause types
            raise TypeError(
                f"unknown FLWOR clause {type(clause).__name__}")
    return L.FLWOROp(clauses, _plan(expr.return_expr, True, notes),
                     streaming=streaming)
