"""The logical plan — stage 3 of the query pipeline.

A small IR of typed operators between the rewritten AST and the
physical closures.  Every operator renders one line of the
``explain()`` tree; annotations computed by the planner (order
sensitivity, pushdown hints, invariance, streaming mode) appear in
square brackets so golden snapshot tests pin them down.

Operator glossary (DESIGN.md §8):

``const``        a literal sequence, fully folded at compile time
``var``/``.``    variable reference / context item
``seq``          sequence concatenation (the comma operator)
``path``         a location path: anchor or input plan, then steps
``step``         one set-at-a-time axis step (axis, test, predicates)
``interval-join``  an extended-axis step lowered to a vectorized
                 sorted-array join over the span-index columns (§11)
``expr-step``    a non-axis path step, evaluated once per input node
``filter``       predicates over an arbitrary item sequence
``collection``   the roots of a sharded corpus, resolved at run time
``flwor``        the FLWOR pipeline (streaming unless it orders)
``quantified``   some/every
``union``/``intersect``/``except``  node-set algebra by order key
``construct``    a direct element constructor
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.lang import ast


class Plan:
    """Base class of all logical operators."""

    __slots__ = ()


@dataclass
class ConstOp(Plan):
    values: list

    def _label(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values[:4])
        if len(self.values) > 4:
            rendered += f", … ({len(self.values)} items)"
        return f"const ({rendered})"


@dataclass
class VarOp(Plan):
    name: str

    def _label(self) -> str:
        return f"var ${self.name}"


@dataclass
class ContextOp(Plan):
    def _label(self) -> str:
        return "context-item"


@dataclass
class SeqOp(Plan):
    parts: list[Plan]

    def _label(self) -> str:
        return "seq"


@dataclass
class RangeOp(Plan):
    lower: Plan
    upper: Plan

    def _label(self) -> str:
        return "range"


@dataclass
class BoolOp(Plan):
    kind: str  # "and" | "or"
    operands: list[Plan]

    def _label(self) -> str:
        return self.kind


@dataclass
class CompareOp(Plan):
    op: str
    style: str
    left: Plan
    right: Plan

    def _label(self) -> str:
        return f"compare {self.style} '{self.op}'"


@dataclass
class ArithOp(Plan):
    op: str
    left: Plan
    right: Plan

    def _label(self) -> str:
        return f"arith '{self.op}'"


@dataclass
class NegOp(Plan):
    op: str
    operand: Plan

    def _label(self) -> str:
        return f"unary '{self.op}'"


@dataclass
class UnionOp(Plan):
    operands: list[Plan]

    def _label(self) -> str:
        return "union"


@dataclass
class IntersectOp(Plan):
    op: str  # "intersect" | "except"
    left: Plan
    right: Plan

    def _label(self) -> str:
        return self.op


@dataclass
class IfOp(Plan):
    condition: Plan
    then: Plan
    otherwise: Plan

    def _label(self) -> str:
        return "if"


@dataclass
class QuantOp(Plan):
    quantifier: str
    bindings: list[tuple[str, Plan]]
    condition: Plan

    def _label(self) -> str:
        names = ", ".join(f"${name}" for name, _ in self.bindings)
        return f"quantified {self.quantifier} {names}"


@dataclass
class PredicateOp(Plan):
    """One step/filter predicate with its static classification."""

    plan: Plan
    #: statically boolean-valued: filter by EBV, skip the numeric check
    boolean_only: bool = False
    #: a literal integer predicate ``[k]``: direct index pick
    positional_literal: int | None = None
    #: never reads ``position()``/``last()``: candidate order and focus
    #: position are irrelevant to the verdict
    position_free: bool = False
    #: a recognized cross-hierarchy existence test (``[overlapping::b]``
    #: and friends): ``(axis, name)``; the physical layer then filters
    #: the whole candidate set with one batched semi-join probe instead
    #: of one per-candidate EBV evaluation (DESIGN.md §11)
    semi_join: tuple[str, str] | None = None
    #: estimated fraction of candidates surviving this predicate, set
    #: by the cost pass (DESIGN.md §16); None on mechanical plans
    est_selectivity: float | None = None
    #: position in the query text's predicate list, recorded when the
    #: cost pass reorders a conjunction so the adaptive executor can
    #: fall back to source order mid-plan
    source_order: int = -1

    def _label(self) -> str:
        if self.positional_literal is not None:
            return f"predicate [position={self.positional_literal}]"
        if self.semi_join is not None:
            axis, name = self.semi_join
            label = f"predicate [semi-join {axis}::{name}]"
        elif self.boolean_only:
            label = "predicate [boolean]"
        else:
            label = "predicate"
        if self.est_selectivity is not None:
            label += f" [sel={self.est_selectivity:.2f}]"
        return label


@dataclass
class StepOp(Plan):
    """One location step, evaluated set-at-a-time over the context."""

    axis: str
    test: ast.NodeTest
    predicates: list[PredicateOp] = field(default_factory=list)
    #: "legacy" reproduces the evaluator's emission order exactly;
    #: "any" means no later consumer can observe this step's order, so
    #: sorts/reversals are skipped (reverse-axis normalization).
    emit: str = "legacy"
    #: the step's node test can never match a leaf: the batch axis call
    #: skips materializing partition ranges entirely
    skip_leaves: bool = False
    #: the node test is ``leaf()``: the step is a partition slice
    leaves_only: bool = False
    #: name pushed into the extended axes' per-name index masks
    name_hint: str | None = None
    #: stable operator id assigned by the cost pass; the physical layer
    #: records actual cardinalities under it (DESIGN.md §16)
    op_id: int = -1
    #: estimated output cardinality from the cost pass; None on
    #: mechanical plans (keeps the explain goldens byte-identical)
    est_rows: float | None = None

    def _label(self) -> str:
        flags = []
        if self.skip_leaves:
            flags.append("skip-leaves")
        if self.leaves_only:
            flags.append("leaves-only")
        if self.emit == "any":
            flags.append("unordered")
        rendered = f" [{', '.join(flags)}]" if flags else ""
        return f"step {self.axis}::{render_test(self.test)}{rendered}"


@dataclass
class IntervalJoinOp(StepOp):
    """One extended-axis step lowered to a set-at-a-time interval join.

    A :class:`StepOp` specialization (the physical layer and the
    order-normalization rules treat it as a step), carrying the kernel
    family (``containment``, ``containment-reverse``, ``boundary``,
    ``stab``) the join engine will run (DESIGN.md §11).  With
    predicates that are not all batched semi-joins, execution falls
    back to the per-node step machinery — the oracle path.
    """

    kernel: str = ""

    def _label(self) -> str:
        flags = [f"kernel={self.kernel}"] if self.kernel else []
        if self.skip_leaves:
            flags.append("skip-leaves")
        if self.leaves_only:
            flags.append("leaves-only")
        if self.emit == "any":
            flags.append("unordered")
        rendered = f" [{', '.join(flags)}]" if flags else ""
        return (f"interval-join {self.axis}::{render_test(self.test)}"
                f"{rendered}")


@dataclass
class ExprStepOp(Plan):
    plan: Plan

    def _label(self) -> str:
        return "expr-step"


@dataclass
class PathOp(Plan):
    """A location path: ``anchor`` or ``input``, then ``steps``."""

    anchor: str  # "root" | "relative" | "primary"
    input: Plan | None
    steps: list[Union[StepOp, ExprStepOp]]
    #: False when every consumer is order-insensitive (EBV, count):
    #: the final merge may skip sorting
    ordered_result: bool = True

    def _label(self) -> str:
        suffix = "" if self.ordered_result else " [unordered-result]"
        return f"path anchor={self.anchor}{suffix}"


@dataclass
class FilterOp(Plan):
    input: Plan
    predicates: list[PredicateOp]

    def _label(self) -> str:
        return "filter"


@dataclass
class FuncOp(Plan):
    name: str
    args: list[Plan]

    def _label(self) -> str:
        return f"call {self.name}()"


@dataclass
class CollectionOp(Plan):
    """``collection("name")``: the roots of a sharded corpus.

    A leaf operator — the planner cannot know the shard layout, so the
    executor resolves it at run time through the ``collection``
    function slot in the frame registry.  Single-document engines have
    no such slot and report the familiar unknown-function error; the
    store's corpus executor injects a resolver that either fans the
    enclosing plan out across shards (scatter-gather) or evaluates it
    against a fused whole-corpus engine (DESIGN.md §13).
    """

    name: str

    def _label(self) -> str:
        return f"collection({self.name!r})"


@dataclass
class ForOp(Plan):
    variable: str
    position_variable: str | None
    sequence: Plan

    def _label(self) -> str:
        at = f" at ${self.position_variable}" if self.position_variable \
            else ""
        return f"for ${self.variable}{at}"


@dataclass
class LetOp(Plan):
    variable: str
    plan: Plan
    #: evaluated once per FLWOR execution instead of once per tuple
    #: (loop-invariant hoisting, applied lazily so error timing and the
    #: empty-stream case match the legacy evaluator exactly)
    invariant: bool = False

    def _label(self) -> str:
        suffix = " [hoisted-invariant]" if self.invariant else ""
        return f"let ${self.variable}{suffix}"


@dataclass
class WhereOp(Plan):
    plan: Plan
    invariant: bool = False

    def _label(self) -> str:
        suffix = " [hoisted-invariant]" if self.invariant else ""
        return f"where{suffix}"


@dataclass
class OrderOp(Plan):
    specs: list[tuple[Plan, bool, bool]]  # (key, descending, empty_least)

    def _label(self) -> str:
        return f"order-by ({len(self.specs)} keys)"


@dataclass
class FLWOROp(Plan):
    clauses: list[Plan]
    return_plan: Plan
    #: tuple stream processed with a mutable frame; an order-by clause
    #: forces materialized variable snapshots instead
    streaming: bool = True

    def _label(self) -> str:
        return "flwor [{}]".format(
            "streaming" if self.streaming else "materialized")


@dataclass
class ConstructOp(Plan):
    name: str
    attributes: list[tuple[str, list]]  # parts: str | Plan
    content: list  # str | Plan

    def _label(self) -> str:
        return f"construct <{self.name}>"


@dataclass
class UpdatePrimOp(Plan):
    """One update primitive: evaluate child plans against the pre-state
    snapshot, emit pending-update entries (DESIGN.md §9).

    ``kind`` is one of ``insert``, ``delete``, ``replace-value``,
    ``rename``, ``add-markup``, ``remove-markup``; ``args`` are the
    named child plans in evaluation order (targets, sources, values);
    ``detail`` carries static payload (insert location, add-markup
    name/hierarchy) for the explain rendering.
    """

    kind: str
    args: list[tuple[str, Plan]]
    detail: str = ""
    #: static payload consumed by the physical compiler (insert
    #: location, add-markup element name and hierarchy)
    payload: dict = field(default_factory=dict)

    def _label(self) -> str:
        suffix = f" [{self.detail}]" if self.detail else ""
        return f"update {self.kind}{suffix}"


# ---------------------------------------------------------------------------
# explain rendering
# ---------------------------------------------------------------------------


def render_test(test: ast.NodeTest) -> str:
    if isinstance(test, ast.NameTest):
        return test.name
    if isinstance(test, ast.WildcardTest):
        if test.hierarchies:
            return "*('{}')".format(",".join(test.hierarchies))
        return "*"
    inner = ",".join(test.hierarchies)
    if test.kind == "processing-instruction" and test.target:
        inner = test.target
    return f"{test.kind}({inner})"


def _children(plan: Plan) -> list[Plan]:
    if isinstance(plan, SeqOp):
        return list(plan.parts)
    if isinstance(plan, RangeOp):
        return [plan.lower, plan.upper]
    if isinstance(plan, BoolOp):
        return list(plan.operands)
    if isinstance(plan, (CompareOp, ArithOp)):
        return [plan.left, plan.right]
    if isinstance(plan, NegOp):
        return [plan.operand]
    if isinstance(plan, UnionOp):
        return list(plan.operands)
    if isinstance(plan, IntersectOp):
        return [plan.left, plan.right]
    if isinstance(plan, IfOp):
        return [plan.condition, plan.then, plan.otherwise]
    if isinstance(plan, QuantOp):
        return [p for _name, p in plan.bindings] + [plan.condition]
    if isinstance(plan, PredicateOp):
        if plan.positional_literal is not None or plan.semi_join is not None:
            return []  # the label carries the whole story
        return [plan.plan]
    if isinstance(plan, StepOp):
        return list(plan.predicates)
    if isinstance(plan, ExprStepOp):
        return [plan.plan]
    if isinstance(plan, PathOp):
        head = [plan.input] if plan.input is not None else []
        return head + list(plan.steps)
    if isinstance(plan, FilterOp):
        return [plan.input] + list(plan.predicates)
    if isinstance(plan, FuncOp):
        return list(plan.args)
    if isinstance(plan, ForOp):
        return [plan.sequence]
    if isinstance(plan, (LetOp, WhereOp)):
        return [plan.plan]
    if isinstance(plan, OrderOp):
        return [key for key, _d, _e in plan.specs]
    if isinstance(plan, FLWOROp):
        return list(plan.clauses) + [plan.return_plan]
    if isinstance(plan, ConstructOp):
        out: list[Plan] = []
        for _name, parts in plan.attributes:
            out.extend(p for p in parts if isinstance(p, Plan))
        out.extend(p for p in plan.content if isinstance(p, Plan))
        return out
    if isinstance(plan, UpdatePrimOp):
        return [p for _name, p in plan.args]
    return []


def render_plan(plan: Plan, indent: int = 0,
                actuals: dict[int, int] | None = None,
                miss_factor: float = 8.0) -> str:
    """The indented one-operator-per-line explain tree.

    On costed plans each step carries its estimate; with ``actuals``
    (the executor's per-operator cardinality record, keyed by
    ``op_id``) the line becomes ``[est=… act=…]``, with ``!`` flagging
    estimates that missed by more than ``miss_factor``.
    """
    label = plan._label()
    if isinstance(plan, StepOp) and plan.est_rows is not None:
        annotation = f"est={plan.est_rows:.0f}"
        if actuals is not None and plan.op_id in actuals:
            actual = actuals[plan.op_id]
            annotation += f" act={actual}"
            if (actual > plan.est_rows * miss_factor + 4
                    or plan.est_rows > actual * miss_factor + 4):
                annotation += " !"
        label += f" [{annotation}]"
    lines = ["  " * indent + label]
    for child in _children(plan):
        lines.append(render_plan(child, indent + 1, actuals, miss_factor))
    return "\n".join(lines)
