"""Rendering a KyGODDAG: XML per hierarchy, DOT, and a text outline.

``serialize_node`` regenerates the XML of any subtree within one
hierarchy component — this is how Example 1's
``<res><m>un<a>a</a>we</m>ndendne</res>`` is produced and how query
results containing KyGODDAG elements are printed.  ``to_dot`` and
``describe`` reproduce Figure 2 (the KyGODDAG of the Boethius sample)
as GraphViz input and as a human-readable outline.
"""

from __future__ import annotations

from repro.markup.serializer import escape_attribute, escape_text
from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import (
    GComment,
    GElement,
    GLeaf,
    GNode,
    GPi,
    GRoot,
    GText,
)


def serialize_node(node: GNode, hierarchy: str | None = None) -> str:
    """Serialize a node's subtree back to XML within its hierarchy.

    For the root, ``hierarchy`` selects which component to serialize
    (all components share the root's tag).  Text and leaf nodes
    serialize to their escaped character data.
    """
    out: list[str] = []
    _write(node, hierarchy, out)
    return "".join(out)


def _write(node: GNode, hierarchy: str | None, out: list[str]) -> None:
    if isinstance(node, GRoot):
        if hierarchy is None:
            raise ValueError(
                "serializing the shared root requires a hierarchy name")
        attrs = node.attributes_by_hierarchy.get(hierarchy, {})
        out.append(_start_tag(node.root_name, attrs,
                              empty=not node.children_in(hierarchy)))
        for child in node.children_in(hierarchy):
            _write(child, hierarchy, out)
        if node.children_in(hierarchy):
            out.append(f"</{node.root_name}>")
    elif isinstance(node, GElement):
        out.append(_start_tag(node.name, node.attributes,
                              empty=not node.children))
        for child in node.children:
            _write(child, hierarchy, out)
        if node.children:
            out.append(f"</{node.name}>")
    elif isinstance(node, (GText, GLeaf)):
        out.append(escape_text(node.string_value()))
    elif isinstance(node, GComment):
        out.append(f"<!--{node.data}-->")
    elif isinstance(node, GPi):
        separator = " " if node.data else ""
        out.append(f"<?{node.target}{separator}{node.data}?>")
    else:  # pragma: no cover - attributes handled by callers
        raise ValueError(f"cannot serialize node kind {node.kind!r}")


def _start_tag(name: str, attributes: dict[str, str], empty: bool) -> str:
    attrs = "".join(f' {key}="{escape_attribute(value)}"'
                    for key, value in attributes.items())
    return f"<{name}{attrs}/>" if empty else f"<{name}{attrs}>"


def to_dot(goddag: KyGoddag) -> str:
    """GraphViz DOT source for the whole KyGODDAG (Figure 2 style).

    Element nodes are labeled ``name`` followed by their 1-based index
    among same-named elements (``dmg1``, ``dmg2``); text nodes are
    ``t1, t2, …`` in document order; leaves are numbered boxes.
    """
    labels = _node_labels(goddag)
    lines = ["digraph kygoddag {", "  rankdir=TB;",
             '  node [fontname="Helvetica"];']
    lines.append(f'  n{id(goddag.root)} [label="{goddag.root.root_name}" '
                 f"shape=ellipse];")
    for name in goddag.hierarchy_names:
        lines.append(f"  subgraph cluster_{_dot_id(name)} {{")
        lines.append(f'    label="{name}";')
        for node in goddag.nodes_of(name):
            shape = "ellipse" if isinstance(node, GElement) else "plaintext"
            lines.append(f'    n{id(node)} [label="{labels[id(node)]}" '
                         f"shape={shape}];")
        lines.append("  }")
    for leaf in goddag.leaves():
        lines.append(f'  n{id(leaf)} [label="{labels[id(leaf)]}" '
                     f"shape=box];")
    for name in goddag.hierarchy_names:
        for top in goddag.root.children_in(name):
            lines.append(f"  n{id(goddag.root)} -> n{id(top)};")
        for node in goddag.nodes_of(name):
            if isinstance(node, GElement):
                for child in node.children:
                    lines.append(f"  n{id(node)} -> n{id(child)};")
            elif isinstance(node, GText):
                for leaf in goddag.partition.leaves_in(node.start, node.end):
                    lines.append(f"  n{id(node)} -> n{id(leaf)};")
    lines.append("}")
    return "\n".join(lines)


def describe(goddag: KyGoddag) -> str:
    """A text outline of the KyGODDAG: components, spans, and leaves."""
    labels = _node_labels(goddag)
    lines = [f"KyGODDAG over {len(goddag.text)} characters, "
             f"{len(goddag.hierarchy_names)} hierarchies, "
             f"{len(goddag.partition)} leaves"]
    for name in goddag.hierarchy_names:
        flag = " (temporary)" if goddag.is_temporary(name) else ""
        lines.append(f"hierarchy {name}{flag}:")
        for node in goddag.nodes_of(name):
            depth = _depth(node, goddag)
            label = labels[id(node)]
            lines.append(f"{'  ' * depth}{label} "
                         f"[{node.start},{node.end})")
    lines.append("leaves:")
    for index, leaf in enumerate(goddag.leaves(), start=1):
        lines.append(f"  {index}: [{leaf.start},{leaf.end}) {leaf.text!r}")
    return "\n".join(lines)


def _node_labels(goddag: KyGoddag) -> dict[int, str]:
    """Figure 2 style labels: dmg1, dmg2, …, t1, t2, …, leaf numbers."""
    labels: dict[int, str] = {id(goddag.root): goddag.root.root_name}
    name_counters: dict[str, int] = {}
    text_counter = 0
    for name in goddag.hierarchy_names:
        for node in goddag.nodes_of(name):
            if isinstance(node, GElement):
                count = name_counters.get(node.name, 0) + 1
                name_counters[node.name] = count
                labels[id(node)] = f"{node.name}{count}"
            elif isinstance(node, GText):
                text_counter += 1
                labels[id(node)] = f"t{text_counter}"
            else:
                labels[id(node)] = node.kind
    for index, leaf in enumerate(goddag.leaves(), start=1):
        labels[id(leaf)] = str(index)
    return labels


def _depth(node: GNode, goddag: KyGoddag) -> int:
    depth = 1
    current = node.parent
    while current is not None and current is not goddag.root:
        depth += 1
        current = current.parent
    return depth


def _dot_id(name: str) -> str:
    return "".join(char if char.isalnum() else "_" for char in name)
