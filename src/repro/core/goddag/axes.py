"""All navigation axes over a KyGODDAG.

Standard XPath axes follow the paper's §3 rules: applied to a non-root
node they stay within that node's DOM tree component; applied to the
root they cross into all components.  Leaves are shared between
hierarchies, so axes from a leaf climb/scan *all* hierarchies (this is
what makes query I.2's ``$leaf[ancestor::w and ancestor::dmg]`` work).

Extended axes implement Definition 1 via span arithmetic on the
:class:`~repro.core.goddag.index.SpanIndex` (see DESIGN.md §3 for the
leaf-set ⇒ interval reduction, verified by property tests).

Every axis function takes ``(goddag, node)`` and returns a list of
nodes in no particular order; callers sort by document order.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import GoddagError
from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import (
    GAttr,
    GElement,
    GLeaf,
    GNode,
    GRoot,
    GText,
    _HierarchyNode,
)

AxisFunction = Callable[[KyGoddag, GNode], list[GNode]]

# ---------------------------------------------------------------------------
# standard axes
# ---------------------------------------------------------------------------


def axis_self(goddag: KyGoddag, node: GNode) -> list[GNode]:
    return [node]


def axis_child(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Children: component roots under the root, element children,
    and — per the KyGODDAG edge set — leaves under text nodes."""
    if isinstance(node, GRoot):
        return list(node.all_children)
    if isinstance(node, GElement):
        return list(node.children)
    if isinstance(node, GText):
        return list(goddag.partition.leaves_in(node.start, node.end))
    return []


def axis_parent(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Parent(s).  A leaf has one text-node parent per hierarchy."""
    if isinstance(node, GLeaf):
        return list(goddag.text_parents_of_leaf(node))
    if isinstance(node, GAttr):
        return [node.owner]
    parent = node.parent
    return [parent] if parent is not None else []


def axis_descendant(goddag: KyGoddag, node: GNode) -> list[GNode]:
    if isinstance(node, GRoot):
        # Fast path: every non-root node descends from the shared root.
        out: list[GNode] = []
        for name in goddag.hierarchy_names:
            out.extend(goddag.nodes_of(name))
        out.extend(goddag.partition.leaves())
        return out
    out = []
    seen: set[int] = set()
    stack = axis_child(goddag, node)
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        out.append(current)
        stack.extend(axis_child(goddag, current))
    return out


def axis_descendant_or_self(goddag: KyGoddag, node: GNode) -> list[GNode]:
    return [node] + axis_descendant(goddag, node)


def axis_ancestor(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Ancestors.  For a leaf: the union over all hierarchies."""
    out: list[GNode] = []
    seen: set[int] = set()
    stack = axis_parent(goddag, node)
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        out.append(current)
        stack.extend(axis_parent(goddag, current))
    return out


def axis_ancestor_or_self(goddag: KyGoddag, node: GNode) -> list[GNode]:
    return [node] + axis_ancestor(goddag, node)


def axis_attribute(goddag: KyGoddag, node: GNode) -> list[GNode]:
    if isinstance(node, GElement):
        return list(node.attribute_nodes)
    return []


def _siblings(goddag: KyGoddag, node: GNode) -> list[list[GNode]]:
    """Sibling lists this node participates in (one per parent)."""
    if isinstance(node, GLeaf):
        return [axis_child(goddag, parent)
                for parent in goddag.text_parents_of_leaf(node)]
    parent = node.parent
    if parent is None or isinstance(node, GAttr):
        return []
    if isinstance(parent, GRoot):
        # Siblings stay within the node's own component (paper §3).
        hierarchy = node.hierarchy
        assert hierarchy is not None
        return [parent.children_in(hierarchy)]
    return [axis_child(goddag, parent)]


def axis_following_sibling(goddag: KyGoddag, node: GNode) -> list[GNode]:
    out: list[GNode] = []
    for siblings in _siblings(goddag, node):
        index = _identity_index(siblings, node)
        out.extend(siblings[index + 1:])
    return out


def axis_preceding_sibling(goddag: KyGoddag, node: GNode) -> list[GNode]:
    out: list[GNode] = []
    for siblings in _siblings(goddag, node):
        index = _identity_index(siblings, node)
        out.extend(siblings[:index])
    return out


def axis_following(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Nodes after ``node`` in its component, plus leaves after its span.

    For the shared root nothing follows; for a leaf this coincides with
    ``xfollowing`` (leaves belong to every hierarchy).  Documented in
    DESIGN.md.
    """
    if isinstance(node, GRoot):
        return []
    if isinstance(node, GLeaf):
        return axis_xfollowing(goddag, node)
    if isinstance(node, GAttr):
        return axis_following(goddag, node.owner)
    assert isinstance(node, _HierarchyNode)
    out: list[GNode] = [
        other for other in goddag.nodes_of(node.hierarchy)
        if other.preorder > node.subtree_end
    ]
    if node.end <= len(goddag.text):
        out.extend(leaf for leaf in goddag.partition.leaves()
                   if leaf.start >= node.end)
    return out


def axis_preceding(goddag: KyGoddag, node: GNode) -> list[GNode]:
    if isinstance(node, GRoot):
        return []
    if isinstance(node, GLeaf):
        return axis_xpreceding(goddag, node)
    if isinstance(node, GAttr):
        return axis_preceding(goddag, node.owner)
    assert isinstance(node, _HierarchyNode)
    out: list[GNode] = [
        other for other in goddag.nodes_of(node.hierarchy)
        if other.subtree_end < node.preorder
    ]
    out.extend(leaf for leaf in goddag.partition.leaves()
               if leaf.end <= node.start)
    return out


# ---------------------------------------------------------------------------
# extended axes (Definition 1)
# ---------------------------------------------------------------------------
#
# All implementations are slice-based: a binary search finds the
# contiguous candidate range in the start- or end-sorted index, and the
# remaining conditions are vectorized over that slice only — O(log n +
# candidates) per evaluation.  ``name`` is an optional pushdown hint
# (node-test name); it never changes results, only skips candidates the
# caller would discard.


def axis_xancestor(goddag: KyGoddag, node: GNode,
                   name: str | None = None) -> list[GNode]:
    """``{m ∉ descendant(n) ∪ {n} : leaves(n) ⊆ leaves(m)}``.

    Within one hierarchy, every node whose span contains ``n.start``
    lies on the ancestor chain of the text node covering ``n.start``
    (element boundaries cannot fall inside a text node), so containment
    candidates are the union of one chain per hierarchy plus the root.
    """
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    out: list[GNode] = []
    root = goddag.root
    if root is not node and not index.is_descendant_or_self(node, root):
        if name is None or root.name == name:
            out.append(root)
    from bisect import bisect_right

    for hierarchy in goddag.hierarchy_names:
        component = goddag._components[hierarchy]
        position = bisect_right(component.text_starts, node.start) - 1
        if position < 0:
            continue
        current: GNode | None = component.text_nodes[position]
        while current is not None and current is not root:
            if (current.start <= node.start and current.end >= node.end
                    and current is not node
                    and not index.is_descendant_or_self(node, current)
                    and (name is None or current.name == name)):
                out.append(current)
            current = current.parent
    return out


def axis_xdescendant(goddag: KyGoddag, node: GNode,
                     name: str | None = None) -> list[GNode]:
    """``{m ∉ ancestor(n) ∪ {n} : leaves(m) ⊆ leaves(n)}``.

    Includes leaves inside the node's span: they are never ancestors.
    """
    if not node.has_leaves:
        return []
    if isinstance(node, GLeaf):
        return []  # any span-equal node is on the leaf's parent chain
    index = goddag.span_index()
    left, right = index.start_slice(node.start, node.end)
    mask = (index.ends[left:right] <= node.end) &         index.nonempty[left:right]
    if name is not None:
        mask &= index.name_mask(name)[left:right]
    mask &= ~index.ancestor_or_self_exclusion(node, left, right)
    out = index.select_slice(left, right, mask)
    if name is None:  # leaves carry no name; skip them under a hint
        out.extend(goddag.partition.leaves_in(node.start, node.end))
    return out


def axis_xfollowing(goddag: KyGoddag, node: GNode,
                    name: str | None = None) -> list[GNode]:
    """``{m : max(leaves(n)) < min(leaves(m))}`` — span entirely after."""
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    left, right = index.start_slice(node.end, len(goddag.text) + 1)
    mask = index.nonempty[left:right]
    if name is not None:
        mask = mask & index.name_mask(name)[left:right]
    out = index.select_slice(left, right, mask)
    if name is None:
        out.extend(leaf for leaf in goddag.partition.leaves()
                   if leaf.start >= node.end)
    return out


def axis_xpreceding(goddag: KyGoddag, node: GNode,
                    name: str | None = None) -> list[GNode]:
    """``{m : min(leaves(n)) > max(leaves(m))}`` — span entirely before."""
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    left, right = index.end_slice(1, node.start + 1)
    positions = index.by_end[left:right]
    mask = index.nonempty[positions]
    if name is not None:
        mask = mask & index.name_mask(name)[positions]
    out = [index.nodes[i] for i in positions[mask]]
    if name is None:
        out.extend(leaf for leaf in goddag.partition.leaves()
                   if leaf.end <= node.start)
    return out


def axis_preceding_overlapping(goddag: KyGoddag, node: GNode,
                               name: str | None = None) -> list[GNode]:
    """Nodes that start before ``node`` and end inside it.

    Definition 1: ``leaves(n) ∩ leaves(m) ≠ ∅``,
    ``min(leaves(n)) ∈ (min(leaves(m)), max(leaves(m))]``, and
    ``max(leaves(n)) > max(leaves(m))`` — in span form
    ``m.start < n.start < m.end < n.end``.
    """
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    left, right = index.end_slice(node.start + 1, node.end)
    positions = index.by_end[left:right]
    mask = index.starts[positions] < node.start
    if name is not None:
        mask &= index.name_mask(name)[positions]
    return [index.nodes[i] for i in positions[mask]]


def axis_following_overlapping(goddag: KyGoddag, node: GNode,
                               name: str | None = None) -> list[GNode]:
    """Nodes that start inside ``node`` and end after it
    (``n.start < m.start < n.end < m.end``)."""
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    left, right = index.start_slice(node.start + 1, node.end)
    mask = index.ends[left:right] > node.end
    if name is not None:
        mask &= index.name_mask(name)[left:right]
    return index.select_slice(left, right, mask)


def axis_overlapping(goddag: KyGoddag, node: GNode,
                     name: str | None = None) -> list[GNode]:
    """The union of the two overlap directions (Definition 1)."""
    return (axis_preceding_overlapping(goddag, node, name)
            + axis_following_overlapping(goddag, node, name))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

AXES: dict[str, AxisFunction] = {
    "self": axis_self,
    "child": axis_child,
    "parent": axis_parent,
    "descendant": axis_descendant,
    "descendant-or-self": axis_descendant_or_self,
    "ancestor": axis_ancestor,
    "ancestor-or-self": axis_ancestor_or_self,
    "attribute": axis_attribute,
    "following-sibling": axis_following_sibling,
    "preceding-sibling": axis_preceding_sibling,
    "following": axis_following,
    "preceding": axis_preceding,
    "xancestor": axis_xancestor,
    "xdescendant": axis_xdescendant,
    "xfollowing": axis_xfollowing,
    "xpreceding": axis_xpreceding,
    "preceding-overlapping": axis_preceding_overlapping,
    "following-overlapping": axis_following_overlapping,
    "overlapping": axis_overlapping,
}

EXTENDED_AXES = frozenset({
    "xancestor", "xdescendant", "xfollowing", "xpreceding",
    "preceding-overlapping", "following-overlapping", "overlapping",
})


def evaluate_axis(goddag: KyGoddag, axis: str, node: GNode,
                  name: str | None = None) -> list[GNode]:
    """Evaluate ``axis`` from ``node``.

    ``name`` is an optional *pushdown hint*: when given, extended axes
    intersect a precomputed per-name mask instead of materializing all
    candidates (callers still apply the node test — the hint is purely
    an optimization and must never change results).
    """
    function = AXES.get(axis)
    if function is None:
        raise GoddagError(f"unknown axis '{axis}'")
    if name is not None and axis in EXTENDED_AXES:
        return function(goddag, node, name)
    return function(goddag, node)


def _identity_index(nodes: list[GNode], node: GNode) -> int:
    for position, candidate in enumerate(nodes):
        if candidate is node:
            return position
    raise GoddagError("node is not among its parent's children")
