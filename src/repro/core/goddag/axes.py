"""All navigation axes over a KyGODDAG, as contiguous-array operations.

Standard XPath axes follow the paper's §3 rules: applied to a non-root
node they stay within that node's DOM tree component; applied to the
root they cross into all components.  Leaves are shared between
hierarchies, so axes from a leaf climb/scan *all* hierarchies (this is
what makes query I.2's ``$leaf[ancestor::w and ancestor::dmg]`` work).

Because a component stores its nodes in preorder with
``nodes[i].preorder == i`` and records each subtree's last preorder,
the standard axes are slices (DESIGN.md §5):

* ``descendant``  — ``nodes[preorder+1 : subtree_end+1]`` plus the leaf
  range covered by the node's span;
* ``following``   — ``nodes[subtree_end+1 :]`` plus a bisect into the
  partition's boundary array for the trailing leaves;
* ``preceding``   — the ``nodes[: preorder]`` prefix minus the ancestor
  chain (a vectorized ``subtree_end < preorder`` mask), plus the
  leading leaves;
* ``ancestor``    — the parent chain (each hierarchy node has exactly
  one within-hierarchy parent).

The seed's stack walkers survive in :mod:`repro.core.goddag.naive` as
the property-test oracle.

Extended axes implement Definition 1 via span arithmetic on the
:class:`~repro.core.goddag.index.SpanIndex` (see DESIGN.md §3 for the
leaf-set ⇒ interval reduction, verified by property tests).

Every axis function takes ``(goddag, node)`` and returns a list of
nodes.  The emission order is unspecified in general — callers sort by
document order — but :func:`emits_document_order` names the axis/context
combinations whose results are *already* document-ordered, letting the
evaluator skip the sort entirely.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import GoddagError
from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import (
    GAttr,
    GElement,
    GLeaf,
    GNode,
    GRoot,
    GText,
    _HierarchyNode,
)

AxisFunction = Callable[[KyGoddag, GNode], list[GNode]]

# ---------------------------------------------------------------------------
# standard axes
# ---------------------------------------------------------------------------


def axis_self(goddag: KyGoddag, node: GNode) -> list[GNode]:
    return [node]


def axis_child(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Children: component roots under the root, element children,
    and — per the KyGODDAG edge set — leaves under text nodes."""
    if isinstance(node, GRoot):
        return list(node.all_children)
    if isinstance(node, GElement):
        return list(node.children)
    if isinstance(node, GText):
        return goddag.partition.leaves_in(node.start, node.end)
    return []


def axis_parent(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Parent(s).  A leaf has one text-node parent per hierarchy."""
    if isinstance(node, GLeaf):
        return list(goddag.text_parents_of_leaf(node))
    if isinstance(node, GAttr):
        return [node.owner]
    parent = node.parent
    return [parent] if parent is not None else []


def axis_descendant(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Descendants, in document order: a preorder slice plus a leaf range.

    Within one hierarchy a node's subtree occupies the contiguous
    preorder interval ``(preorder, subtree_end]``, and — because element
    content is contiguous and markup never crosses leaf boundaries —
    its leaves are exactly the partition cells inside ``[start, end)``.
    """
    if isinstance(node, GRoot):
        # Every non-root node descends from the shared root.
        out: list[GNode] = []
        for name in goddag.hierarchy_names:
            out.extend(goddag.nodes_of(name))
        out.extend(goddag.partition.leaves())
        return out
    if not isinstance(node, _HierarchyNode):
        return []  # leaves and attributes have no children
    out: list[GNode] = goddag.nodes_of(node.hierarchy)[
        node.preorder + 1:node.subtree_end + 1]
    out.extend(goddag.partition.leaves_in(node.start, node.end))
    return out


def axis_descendant_or_self(goddag: KyGoddag, node: GNode) -> list[GNode]:
    return [node] + axis_descendant(goddag, node)


def axis_ancestor(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Ancestors: the parent chain(s).

    A hierarchy node has exactly one within-hierarchy parent, so its
    ancestors are one O(depth) chain walk; a leaf takes the union of
    one chain per hierarchy (sharing only the root).
    """
    if isinstance(node, GRoot):
        return []
    if isinstance(node, GAttr):
        return [node.owner] + axis_ancestor(goddag, node.owner)
    if isinstance(node, GLeaf):
        out: list[GNode] = []
        for text in goddag.text_parents_of_leaf(node):
            current: GNode | None = text
            while isinstance(current, _HierarchyNode):
                out.append(current)
                current = current.parent
        if out:
            out.append(goddag.root)
        return out
    out = []
    current = node.parent
    while current is not None:
        out.append(current)
        current = current.parent
    return out


def axis_ancestor_or_self(goddag: KyGoddag, node: GNode) -> list[GNode]:
    return [node] + axis_ancestor(goddag, node)


def axis_attribute(goddag: KyGoddag, node: GNode) -> list[GNode]:
    if isinstance(node, GElement):
        return list(node.attribute_nodes)
    return []


def _sibling_groups(goddag: KyGoddag,
                    node: GNode) -> list[tuple[list[GNode], int]]:
    """``(siblings, position)`` per parent this node participates in.

    Positions come from cached child→position identity maps
    (:meth:`GElement.child_position`, :meth:`GRoot.child_position`) or,
    for leaves, from boundary-array arithmetic — never a linear scan.
    """
    if isinstance(node, GLeaf):
        partition = goddag.partition
        groups: list[tuple[list[GNode], int]] = []
        for parent in goddag.text_parents_of_leaf(node):
            siblings = partition.leaves_in(parent.start, parent.end)
            position = (partition.leaf_index(node.start)
                        - partition.leaf_index(parent.start))
            groups.append((siblings, position))
        return groups
    parent = node.parent
    if parent is None or isinstance(node, GAttr):
        return []
    try:
        if isinstance(parent, GRoot):
            # Siblings stay within the node's own component (paper §3).
            hierarchy = node.hierarchy
            assert hierarchy is not None
            return [(parent.children_in(hierarchy),
                     parent.child_position(hierarchy, node))]
        assert isinstance(parent, GElement)
        return [(parent.children, parent.child_position(node))]
    except KeyError:
        raise GoddagError(
            "node is not among its parent's children") from None


def axis_following_sibling(goddag: KyGoddag, node: GNode) -> list[GNode]:
    out: list[GNode] = []
    for siblings, position in _sibling_groups(goddag, node):
        out.extend(siblings[position + 1:])
    return out


def axis_preceding_sibling(goddag: KyGoddag, node: GNode) -> list[GNode]:
    out: list[GNode] = []
    for siblings, position in _sibling_groups(goddag, node):
        out.extend(siblings[:position])
    return out


def axis_following(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Nodes after ``node`` in its component, plus leaves after its span.

    ``other.preorder > node.subtree_end`` is exactly the preorder slice
    past the node's subtree, and the trailing leaves are one bisect into
    the partition (DESIGN.md §5).  For the shared root nothing follows;
    for a leaf this coincides with ``xfollowing`` (leaves belong to
    every hierarchy).
    """
    if isinstance(node, GRoot):
        return []
    if isinstance(node, GLeaf):
        return axis_xfollowing(goddag, node)
    if isinstance(node, GAttr):
        return axis_following(goddag, node.owner)
    assert isinstance(node, _HierarchyNode)
    out: list[GNode] = goddag.nodes_of(node.hierarchy)[
        node.subtree_end + 1:]
    out.extend(goddag.partition.leaves_from(node.end))
    return out


def axis_preceding(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Nodes before ``node`` in its component, plus leaves before it.

    The candidates are the preorder prefix ``nodes[:preorder]``; the
    ancestors interleaved in it are masked out with one vectorized
    ``subtree_end < preorder`` comparison.
    """
    if isinstance(node, GRoot):
        return []
    if isinstance(node, GLeaf):
        return axis_xpreceding(goddag, node)
    if isinstance(node, GAttr):
        return axis_preceding(goddag, node.owner)
    assert isinstance(node, _HierarchyNode)
    component = goddag._components[node.hierarchy]
    nodes_arr, subtree_ends = component.node_arrays()
    prefix = nodes_arr[:node.preorder]
    out: list[GNode] = prefix[
        subtree_ends[:node.preorder] < node.preorder].tolist()
    out.extend(goddag.partition.leaves_until(node.start))
    return out


# ---------------------------------------------------------------------------
# extended axes (Definition 1)
# ---------------------------------------------------------------------------
#
# All implementations are slice-based: a binary search finds the
# contiguous candidate range in the start- or end-sorted index, and the
# remaining conditions are vectorized over that slice only — O(log n +
# candidates) per evaluation.  ``name`` is an optional pushdown hint
# (node-test name); it never changes results, only skips candidates the
# caller would discard.


def axis_xancestor(goddag: KyGoddag, node: GNode,
                   name: str | None = None) -> list[GNode]:
    """``{m ∉ descendant(n) ∪ {n} : leaves(n) ⊆ leaves(m)}``.

    Within one hierarchy, every node whose span contains ``n.start``
    lies on the ancestor chain of the text node covering ``n.start``
    (element boundaries cannot fall inside a text node), so containment
    candidates are the union of one chain per hierarchy plus the root.
    """
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    out: list[GNode] = []
    root = goddag.root
    if root is not node and not index.is_descendant_or_self(node, root):
        if name is None or root.name == name:
            out.append(root)
    from bisect import bisect_right

    for hierarchy in goddag.hierarchy_names:
        component = goddag._components[hierarchy]
        position = bisect_right(component.text_starts, node.start) - 1
        if position < 0:
            continue
        current: GNode | None = component.text_nodes[position]
        while current is not None and current is not root:
            if (current.start <= node.start and current.end >= node.end
                    and current is not node
                    and not index.is_descendant_or_self(node, current)
                    and (name is None or current.name == name)):
                out.append(current)
            current = current.parent
    return out


def axis_xdescendant(goddag: KyGoddag, node: GNode,
                     name: str | None = None,
                     include_leaves: bool = True) -> list[GNode]:
    """``{m ∉ ancestor(n) ∪ {n} : leaves(m) ⊆ leaves(n)}``.

    Includes leaves inside the node's span: they are never ancestors.
    """
    if not node.has_leaves:
        return []
    if isinstance(node, GLeaf):
        return []  # any span-equal node is on the leaf's parent chain
    index = goddag.span_index()
    left, right = index.start_slice(node.start, node.end)
    if name is not None:
        # Name-first: the per-name mask is precomputed and usually
        # empties the slice, skipping the span/exclusion arithmetic.
        mask = index.name_mask(name)[left:right] & \
            index.nonempty[left:right]
        if not mask.any():
            return []
        mask = mask & (index.ends[left:right] <= node.end)
    else:
        mask = (index.ends[left:right] <= node.end) & \
            index.nonempty[left:right]
    mask &= ~index.ancestor_or_self_exclusion(node, left, right)
    out = index.select_slice(left, right, mask)
    if name is None and include_leaves:  # leaves carry no name
        out.extend(goddag.partition.leaves_in(node.start, node.end))
    return out


def axis_xfollowing(goddag: KyGoddag, node: GNode,
                    name: str | None = None,
                    include_leaves: bool = True) -> list[GNode]:
    """``{m : max(leaves(n)) < min(leaves(m))}`` — span entirely after."""
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    left, right = index.start_slice(node.end, len(goddag.text) + 1)
    mask = index.nonempty[left:right]
    if name is not None:
        mask = index.name_mask(name)[left:right] & mask
        if not mask.any():
            return []
    out = index.select_slice(left, right, mask)
    if name is None and include_leaves:
        out.extend(goddag.partition.leaves_from(node.end))
    return out


def axis_xpreceding(goddag: KyGoddag, node: GNode,
                    name: str | None = None,
                    include_leaves: bool = True) -> list[GNode]:
    """``{m : min(leaves(n)) > max(leaves(m))}`` — span entirely before."""
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    left, right = index.end_slice(1, node.start + 1)
    mask = index.e_nonempty[left:right]
    if name is not None:
        mask = index.e_name_mask(name)[left:right] & mask
        if not mask.any():
            return []
    out = index.select_end_slice(left, right, mask)
    if name is None and include_leaves:
        out.extend(goddag.partition.leaves_until(node.start))
    return out


def axis_preceding_overlapping(goddag: KyGoddag, node: GNode,
                               name: str | None = None) -> list[GNode]:
    """Nodes that start before ``node`` and end inside it.

    Definition 1: ``leaves(n) ∩ leaves(m) ≠ ∅``,
    ``min(leaves(n)) ∈ (min(leaves(m)), max(leaves(m))]``, and
    ``max(leaves(n)) > max(leaves(m))`` — in span form
    ``m.start < n.start < m.end < n.end``.
    """
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    left, right = index.end_slice(node.start + 1, node.end)
    if name is not None:
        mask = index.e_name_mask(name)[left:right]
        if not mask.any():
            return []
        mask = mask & (index.e_starts[left:right] < node.start)
    else:
        mask = index.e_starts[left:right] < node.start
    return index.select_end_slice(left, right, mask)


def axis_following_overlapping(goddag: KyGoddag, node: GNode,
                               name: str | None = None) -> list[GNode]:
    """Nodes that start inside ``node`` and end after it
    (``n.start < m.start < n.end < m.end``)."""
    if not node.has_leaves:
        return []
    index = goddag.span_index()
    left, right = index.start_slice(node.start + 1, node.end)
    if name is not None:
        mask = index.name_mask(name)[left:right]
        if not mask.any():
            return []
        mask = mask & (index.ends[left:right] > node.end)
    else:
        mask = index.ends[left:right] > node.end
    return index.select_slice(left, right, mask)


def axis_overlapping(goddag: KyGoddag, node: GNode,
                     name: str | None = None) -> list[GNode]:
    """The union of the two overlap directions (Definition 1).

    Emission-order audit (PR 5): the concatenation is *not* globally
    document-ordered — each sublist comes out span-sorted (end order,
    then start order), and Definition 3 orders nodes by hierarchy rank
    before position, so a preceding-overlapping node of a later
    hierarchy can trail a following-overlapping node it precedes.  The
    two sublists are disjoint for one context (``m.end < n.end`` vs
    ``m.end > n.end``), so the list is duplicate-free, and every
    consumer sorts: ``overlapping`` is not in :data:`ORDERED_AXES`, so
    the evaluator, the batch entry point and the existence probes all
    merge by order key.  Locked by
    ``tests/test_extended_axis_joins.py::TestOverlappingEmissionOrder``.
    """
    return (axis_preceding_overlapping(goddag, node, name)
            + axis_following_overlapping(goddag, node, name))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

AXES: dict[str, AxisFunction] = {
    "self": axis_self,
    "child": axis_child,
    "parent": axis_parent,
    "descendant": axis_descendant,
    "descendant-or-self": axis_descendant_or_self,
    "ancestor": axis_ancestor,
    "ancestor-or-self": axis_ancestor_or_self,
    "attribute": axis_attribute,
    "following-sibling": axis_following_sibling,
    "preceding-sibling": axis_preceding_sibling,
    "following": axis_following,
    "preceding": axis_preceding,
    "xancestor": axis_xancestor,
    "xdescendant": axis_xdescendant,
    "xfollowing": axis_xfollowing,
    "xpreceding": axis_xpreceding,
    "preceding-overlapping": axis_preceding_overlapping,
    "following-overlapping": axis_following_overlapping,
    "overlapping": axis_overlapping,
}

EXTENDED_AXES = frozenset({
    "xancestor", "xdescendant", "xfollowing", "xpreceding",
    "preceding-overlapping", "following-overlapping", "overlapping",
})

#: Forward axes whose slice-based implementations above emit results in
#: global document order already (Definition 3): same-hierarchy nodes
#: come out in preorder and all leaves trail all hierarchy nodes.  From
#: a *leaf*, ``following``/``following-sibling`` mix hierarchies and are
#: excluded (see :func:`emits_document_order`).
ORDERED_AXES = frozenset({
    "self", "child", "attribute", "descendant", "descendant-or-self",
    "following", "following-sibling",
})


def emits_document_order(axis: str, node: GNode) -> bool:
    """True when ``AXES[axis](goddag, node)`` is already in document
    order (and duplicate-free), so callers may skip sorting."""
    if axis not in ORDERED_AXES:
        return False
    if isinstance(node, GLeaf):
        # following(leaf) delegates to xfollowing (start-sorted across
        # hierarchies) and a leaf's sibling groups span hierarchies.
        return axis not in ("following", "following-sibling")
    return True


def evaluate_axis(goddag: KyGoddag, axis: str, node: GNode,
                  name: str | None = None) -> list[GNode]:
    """Evaluate ``axis`` from ``node``.

    ``name`` is an optional *pushdown hint*: when given, extended axes
    intersect a precomputed per-name mask instead of materializing all
    candidates (callers still apply the node test — the hint is purely
    an optimization and must never change results).
    """
    function = AXES.get(axis)
    if function is None:
        raise GoddagError(f"unknown axis '{axis}'")
    if name is not None and axis in EXTENDED_AXES:
        return function(goddag, node, name)
    return function(goddag, node)


# ---------------------------------------------------------------------------
# batched (set-at-a-time) entry point — DESIGN.md §8
# ---------------------------------------------------------------------------
#
# The query pipeline evaluates each path step as ONE call over the whole
# context sequence.  Two pushdown hints let it skip materializing whole
# node classes the step's node test could never accept:
#
# * ``skip_leaves``  — the test only matches named/element-ish nodes, so
#   the leaf ranges the slice axes normally append are never built;
# * ``leaves_only``  — the test is ``leaf()``, so for the span-covering
#   axes the result is a single partition slice and the (much larger)
#   hierarchy-node slices are never touched.
#
# Both are pure optimizations: the caller's node test is still applied
# (via ``test``), so a wrong hint could only cost time, never results.

#: Axes whose leaf contribution is one contiguous partition range keyed
#: by the context node's span.
_LEAF_RANGE_AXES = frozenset({
    "descendant", "descendant-or-self", "following", "preceding", "child",
})


def axis_candidates(goddag: KyGoddag, axis: str, node: GNode,
                    name: str | None = None,
                    skip_leaves: bool = False) -> list[GNode]:
    """Candidates of one axis step from one node, honoring pushdowns.

    With ``skip_leaves`` the slice axes return only their hierarchy-node
    slices (no partition range is materialized), and a ``name`` hint
    turns the span-covering axes into bisected slices of the per-name
    element index; other axes fall back to :func:`evaluate_axis` plus a
    leaf filter.
    """
    if not skip_leaves:
        return evaluate_axis(goddag, axis, node, name)
    if axis in ("descendant", "descendant-or-self"):
        prefix: list[GNode] = []
        if axis == "descendant-or-self" and not isinstance(node, GLeaf):
            prefix = [node]
        if isinstance(node, GRoot):
            out = prefix
            for hierarchy in goddag.hierarchy_names:
                if name is not None:
                    entry = goddag._components[hierarchy].name_entry(name)
                    if entry is not None:
                        out.extend(entry.nodes)
                else:
                    out.extend(goddag.nodes_of(hierarchy))
            return out
        if not isinstance(node, _HierarchyNode):
            return prefix
        if name is not None:
            entry = goddag._components[node.hierarchy].name_entry(name)
            if entry is None:
                return prefix
            left = int(np.searchsorted(entry.preorders, node.preorder,
                                       side="right"))
            right = int(np.searchsorted(entry.preorders,
                                        node.subtree_end, side="right"))
            return prefix + entry.nodes[left:right]
        return prefix + goddag.nodes_of(node.hierarchy)[
            node.preorder + 1:node.subtree_end + 1]
    if axis == "following":
        if isinstance(node, GRoot):
            return []
        if isinstance(node, GLeaf):
            return axis_xfollowing(goddag, node, name, include_leaves=False)
        if isinstance(node, GAttr):
            return axis_candidates(goddag, axis, node.owner, name, True)
        if name is not None:
            entry = goddag._components[node.hierarchy].name_entry(name)
            if entry is None:
                return []
            left = int(np.searchsorted(entry.preorders, node.subtree_end,
                                       side="right"))
            return entry.nodes[left:]
        return goddag.nodes_of(node.hierarchy)[node.subtree_end + 1:]
    if axis == "preceding":
        if isinstance(node, GRoot):
            return []
        if isinstance(node, GLeaf):
            return axis_xpreceding(goddag, node, name, include_leaves=False)
        if isinstance(node, GAttr):
            return axis_candidates(goddag, axis, node.owner, name, True)
        if name is not None:
            entry = goddag._components[node.hierarchy].name_entry(name)
            if entry is None:
                return []
            position = int(np.searchsorted(entry.preorders, node.preorder,
                                           side="left"))
            prefix_arr = entry.nodes_arr[:position]
            return prefix_arr[
                entry.subtree_ends[:position] < node.preorder].tolist()
        component = goddag._components[node.hierarchy]
        nodes_arr, subtree_ends = component.node_arrays()
        prefix_arr = nodes_arr[:node.preorder]
        return prefix_arr[
            subtree_ends[:node.preorder] < node.preorder].tolist()
    if axis == "child" and isinstance(node, GText):
        return []  # a text node's children are exactly its leaves
    if axis in ("xdescendant", "xfollowing", "xpreceding"):
        function = AXES[axis]
        return function(goddag, node, name, include_leaves=False)
    out = evaluate_axis(goddag, axis, node, name)
    if any(isinstance(candidate, GLeaf) for candidate in out):
        return [c for c in out if not isinstance(c, GLeaf)]
    return out


def leaf_candidates(goddag: KyGoddag, axis: str,
                    node: GNode) -> list[GNode] | None:
    """The leaf-only candidates of one axis step, as a partition slice.

    Returns ``None`` when ``axis`` has no leaf-range shortcut from this
    node (the caller falls back to the full candidate list).
    """
    if axis not in _LEAF_RANGE_AXES:
        return None
    partition = goddag.partition
    if axis in ("descendant", "descendant-or-self"):
        if isinstance(node, GLeaf):
            return [node] if axis == "descendant-or-self" else []
        if isinstance(node, GRoot):
            return partition.leaves()
        if not isinstance(node, _HierarchyNode):
            return []
        return partition.leaves_in(node.start, node.end)
    if isinstance(node, (GRoot, GAttr)):
        return None  # rare shapes: use the generic path
    if axis == "following":
        return partition.leaves_from(node.end)
    if axis == "preceding":
        return partition.leaves_until(node.start)
    if axis == "child":
        if isinstance(node, GText):
            return partition.leaves_in(node.start, node.end)
        return []  # only text nodes parent leaves
    return None


def axis_exists_named(goddag: KyGoddag, axis: str, node: GNode,
                      name: str) -> bool | None:
    """Existence probe: does ``axis::name`` yield anything from ``node``?

    Returns ``None`` when the axis has no mask-only fast path (the
    caller falls back to materializing candidates).  Valid only for a
    plain name test on a non-attribute axis: the per-name masks match
    elements exactly (text nodes carry no name), and the root never
    falls inside these slices (its span is the whole text).
    """
    if axis == "xdescendant":
        if not node.has_leaves or isinstance(node, GLeaf):
            return False
        index = goddag.span_index()
        left, right = index.start_slice(node.start, node.end)
        mask = index.name_mask(name)[left:right] & \
            index.nonempty[left:right]
        if not mask.any():
            return False
        mask = mask & (index.ends[left:right] <= node.end)
        if not mask.any():
            return False
        mask &= ~index.ancestor_or_self_exclusion(node, left, right)
        return bool(mask.any())
    if axis == "xfollowing":
        if not node.has_leaves:
            return False
        index = goddag.span_index()
        left, right = index.start_slice(node.end, len(goddag.text) + 1)
        mask = index.name_mask(name)[left:right] & \
            index.nonempty[left:right]
        return bool(mask.any())
    if axis == "xpreceding":
        if not node.has_leaves:
            return False
        index = goddag.span_index()
        left, right = index.end_slice(1, node.start + 1)
        mask = index.e_name_mask(name)[left:right] & \
            index.e_nonempty[left:right]
        return bool(mask.any())
    if axis in ("overlapping", "preceding-overlapping",
                "following-overlapping"):
        if not node.has_leaves:
            return False
        index = goddag.span_index()
        if axis != "following-overlapping":
            left, right = index.end_slice(node.start + 1, node.end)
            mask = index.e_name_mask(name)[left:right]
            if mask.any() and bool(
                    (mask & (index.e_starts[left:right]
                             < node.start)).any()):
                return True
            if axis == "preceding-overlapping":
                return False
        left, right = index.start_slice(node.start + 1, node.end)
        mask = index.name_mask(name)[left:right]
        if not mask.any():
            return False
        return bool((mask & (index.ends[left:right] > node.end)).any())
    if axis == "xancestor":
        if not node.has_leaves:
            return False
        index = goddag.span_index()
        root = goddag.root
        if (root.name == name and root is not node
                and not index.is_descendant_or_self(node, root)):
            return True
        # Containment via the per-name prefix-max arrays, minus the
        # Definition 1 descendant-or-self exclusion (rank-masked).
        starts, ends, max_ends, ranks, preorders, _subs = \
            index.name_containment(name)
        position = int(np.searchsorted(starts, node.start, side="right"))
        if position == 0 or int(max_ends[position - 1]) < node.end:
            return False
        if isinstance(node, GRoot):
            return False  # every element descends from the root
        mask = ends[:position] >= node.end
        if isinstance(node, _HierarchyNode):
            rank = goddag.hierarchy_rank(node.hierarchy)
            mask &= ~((ranks[:position] == rank)
                      & (preorders[:position] >= node.preorder)
                      & (preorders[:position] <= node.subtree_end))
        return bool(mask.any())
    return None


def evaluate_axis_batch(goddag: KyGoddag, axis: str, nodes: list[GNode],
                        name: str | None = None, *,
                        skip_leaves: bool = False,
                        leaves_only: bool = False,
                        test=None) -> list[GNode]:
    """One batched axis call over a whole context sequence.

    Returns the union of per-node candidates (filtered by ``test`` when
    given), deduplicated and merged into global document order by the
    packed int64 order keys — one ``sort_nodes`` per *step* instead of
    one per context item.  A single already-ordered emission skips even
    that (:func:`emits_document_order`).
    """
    if not nodes:
        return []

    def candidates(node: GNode) -> list[GNode]:
        if leaves_only:
            leaf_range = leaf_candidates(goddag, axis, node)
            if leaf_range is not None:
                return leaf_range
        return axis_candidates(goddag, axis, node, name, skip_leaves)

    if len(nodes) == 1:
        out = candidates(nodes[0])
        if test is not None:
            out = [c for c in out if test(c)]
        if not emits_document_order(axis, nodes[0]):
            out = goddag.sort_nodes(out)
        return out
    out = []
    for node in nodes:
        found = candidates(node)
        if test is not None:
            out.extend(c for c in found if test(c))
        else:
            out.extend(found)
    return goddag.sort_nodes(out)
