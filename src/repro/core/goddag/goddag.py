"""The KyGODDAG data structure (paper §3).

A :class:`KyGoddag` holds the shared base text, the shared root node,
one component of hierarchy nodes per markup hierarchy, and the leaf
partition.  Hierarchies may be added from an aligned DOM document or
from a :class:`~repro.cmh.spans.SpanSet`, and may be registered as
*temporary* — the mechanism behind ``analyze-string`` (Definition 4),
whose match markup lives in a hierarchy that disappears when query
evaluation finishes.

Node order follows the paper's Definition 3: root first, nodes of one
hierarchy in its DOM document order, hierarchies ordered by (stable)
registration rank.  Leaves are shared; we place them after all
hierarchy components, ordered by text position (documented choice, see
DESIGN.md).  Order keys are packed int64 integers (DESIGN.md §1), so
large node sets sort through ``np.argsort`` instead of Python tuple
comparisons.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import GoddagError
from repro.markup import dom
from repro.cmh.document import MultihierarchicalDocument
from repro.cmh.spans import SpanSet
from repro.core.goddag.nodes import (
    GAttr,
    GComment,
    GElement,
    GLeaf,
    GNode,
    GPi,
    GRoot,
    GText,
    _HierarchyNode,
)
from repro.core.goddag.partition import Partition


class _HierarchyComponent:
    """Bookkeeping for one hierarchy inside the KyGODDAG."""

    def __init__(self, name: str, rank: int, temporary: bool) -> None:
        self.name = name
        self.rank = rank
        self.temporary = temporary
        # All nodes of the component in preorder (excluding the root).
        # ``nodes[i].preorder == i``, so every standard axis over this
        # hierarchy is a contiguous slice of this list (DESIGN.md §5).
        self.nodes: list[_HierarchyNode] = []
        # Text nodes in text order, with parallel start offsets for
        # binary search (leaf -> parent text node lookup).
        self.text_nodes: list[GText] = []
        self.text_starts: list[int] = []
        # Boundary offsets this hierarchy contributed to the partition.
        self.boundaries: list[int] = []
        # Lazy parallel arrays over ``nodes`` (immutable after build).
        self._nodes_arr: np.ndarray | None = None
        self._subtree_ends_arr: np.ndarray | None = None
        self._name_index: dict[str, "_NameEntry"] | None = None

    def node_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(nodes, subtree_ends)`` as parallel arrays, preorder order.

        Reads capture both fields locally so a concurrent
        :meth:`release_arrays` (retired-version hygiene) can never be
        observed half-way; the fill is idempotent, so racing rebuilds
        are wasted work, not wrong answers.
        """
        arr = self._nodes_arr
        ends = self._subtree_ends_arr
        if arr is None or ends is None:
            count = len(self.nodes)
            arr = np.empty(count, dtype=object)
            for position, node in enumerate(self.nodes):
                arr[position] = node
            ends = np.fromiter(
                (node.subtree_end for node in self.nodes),
                dtype=np.int64, count=count)
            self._nodes_arr = arr
            self._subtree_ends_arr = ends
        return arr, ends

    def name_entry(self, name: str) -> "_NameEntry | None":
        """The per-name element index entry (DESIGN.md §8).

        Elements named ``name`` in preorder, with parallel preorder /
        subtree-end arrays: a named ``descendant``/``following``/
        ``preceding`` step over this hierarchy is then one bisect plus
        a slice of the name's own (usually tiny) list instead of a scan
        of the whole component.  Built lazily (and captured locally,
        against a concurrent :meth:`release_arrays`) — components are
        immutable after registration.
        """
        index = self._name_index
        if index is None:
            grouped: dict[str, list] = {}
            for node in self.nodes:
                if isinstance(node, GElement):
                    grouped.setdefault(node.name, []).append(node)
            index = {
                name_: _NameEntry(members) for name_, members in
                grouped.items()
            }
            self._name_index = index
        return index.get(name)

    def release_arrays(self) -> None:
        """Drop the lazy numpy caches so this component can be freed.

        NumPy object arrays take no part in cyclic garbage collection
        (``ndarray`` has no traversal support), so a retired KyGODDAG
        that still carries them is immortal: goddag -> component ->
        object array -> node -> ``node.goddag`` closes a reference
        cycle the collector cannot see through.  Dropping the arrays
        leaves only ordinary Python containers in the cycle, which the
        collector handles.  All three caches are idempotent lazy
        fills, so a still-pinned reader that needs one again simply
        rebuilds it.
        """
        self._nodes_arr = None
        self._subtree_ends_arr = None
        self._name_index = None


class _NameEntry:
    """All elements of one name in one hierarchy, preorder-ordered."""

    __slots__ = ("nodes", "nodes_arr", "preorders", "subtree_ends")

    def __init__(self, members: list) -> None:
        count = len(members)
        self.nodes = members
        arr = np.empty(count, dtype=object)
        for position, node in enumerate(members):
            arr[position] = node
        self.nodes_arr = arr
        self.preorders = np.fromiter(
            (node.preorder for node in members), dtype=np.int64,
            count=count)
        self.subtree_ends = np.fromiter(
            (node.subtree_end for node in members), dtype=np.int64,
            count=count)


class KyGoddag:
    """The united DAG over all markup hierarchies of one document."""

    def __init__(self, text: str, root_name: str = "r") -> None:
        self.text = text
        self.root = GRoot(self, root_name, len(text))
        self.partition = Partition(self, len(text))
        self._components: dict[str, _HierarchyComponent] = {}
        self._next_rank = 0
        self._index = None  # built lazily by repro.core.goddag.index
        # Full SpanIndex constructions (benchmarks assert that the
        # analyze-string lifecycle never triggers one after warm-up).
        self.index_full_builds = 0
        # Bumped by every mutation (hierarchy add/remove/replace,
        # rename, base-text change).  Compiled-plan caches key on it so
        # a stale plan can never serve a mutated document (DESIGN.md §9).
        self.version = 0
        # Frozen structures back published store snapshots: every
        # persistent mutation raises, so concurrent readers can share
        # them lock-free (DESIGN.md §10).  Temporary (analyze-string)
        # hierarchies stay allowed — their add/remove cycle is part of
        # one evaluation and is serialized by ``read_latch``, which
        # every evaluation path of a frozen structure goes through.
        self.frozen = False
        self.read_latch = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, document: MultihierarchicalDocument) -> "KyGoddag":
        """Build a KyGODDAG from an aligned multihierarchical document."""
        goddag = cls(document.text, document.root_name)
        for name, hierarchy in document.hierarchies.items():
            goddag.add_hierarchy_from_dom(name, hierarchy.document)
        return goddag

    def add_hierarchy_from_dom(self, name: str, document: dom.Document,
                               temporary: bool = False) -> None:
        """Register a hierarchy from an aligned DOM document.

        The document's text nodes must carry ``start``/``end`` spans (as
        produced by CMH alignment) or cover the base text contiguously
        (spans are then derived by walking).
        """
        component = self._new_component(name, temporary)
        builder = _ComponentBuilder(self, component)
        builder.build_from_dom(document.root)
        self._finish_component(component)

    def add_hierarchy_from_spans(self, name: str, spans: SpanSet,
                                 temporary: bool = False) -> None:
        """Register a hierarchy given as a properly-nesting span set."""
        if spans.text != self.text:
            raise GoddagError(
                "span set text differs from the KyGODDAG base text")
        document = spans.to_document(self.root.root_name)
        self.add_hierarchy_from_dom(name, document, temporary=temporary)

    def adopt_component(self, component: _HierarchyComponent,
                        top_nodes: list[_HierarchyNode],
                        root_attributes: dict[str, str]) -> None:
        """Attach a fully reconstructed hierarchy component.

        The ``.mhxb`` cold-load path (DESIGN.md §10): the caller built
        the component's node objects straight from persisted arrays —
        preorder numbers, subtree ends, spans, boundaries and text-node
        tables already filled — so nothing is re-derived here.  The
        partition and span index are restored wholesale by the same
        caller; this only wires the component into the catalog and the
        shared root.
        """
        if component.name in self._components:
            raise GoddagError(
                f"duplicate hierarchy name '{component.name}'")
        self._components[component.name] = component
        self._next_rank = max(self._next_rank, component.rank + 1)
        self.root.children_by_hierarchy[component.name] = list(top_nodes)
        self.root.attributes_by_hierarchy[component.name] = dict(
            root_attributes)

    def _new_component(self, name: str,
                       temporary: bool) -> _HierarchyComponent:
        if self.frozen and not temporary:
            self._frozen_violation(f"add hierarchy '{name}'")
        if name in self._components:
            raise GoddagError(f"duplicate hierarchy name '{name}'")
        component = _HierarchyComponent(name, self._next_rank, temporary)
        self._next_rank += 1
        self._components[name] = component
        return component

    def _finish_component(self, component: _HierarchyComponent) -> None:
        self.partition.add_boundaries(component.boundaries)
        if self._index is not None:
            # Merge the new hierarchy into the live index instead of
            # discarding it (DESIGN.md §6) — the analyze-string hot path.
            self._index.add_component(component)
        if not component.temporary:
            # Temporary (query-scoped) hierarchies never invalidate
            # compiled plans: their add/remove cycle is part of one
            # evaluation, not a document mutation.
            self.version += 1

    def remove_hierarchy(self, name: str) -> None:
        """Remove a hierarchy; leaves split only by it coalesce again."""
        component = self._components.get(name)
        if component is None:
            raise GoddagError(f"no hierarchy named '{name}'")
        if self.frozen and not component.temporary:
            self._frozen_violation(f"remove hierarchy '{name}'")
        del self._components[name]
        self.partition.remove_boundaries(component.boundaries)
        self.root.children_by_hierarchy.pop(name, None)
        self.root.attributes_by_hierarchy.pop(name, None)
        self.root.invalidate_child_positions(name)
        if self._index is not None:
            self._index.remove_component(component)
        # Recycle the topmost rank so LIFO add/remove cycles — the
        # analyze-string temporary-hierarchy lifecycle — never exhaust
        # the packed order key's 16-bit rank field.  Safe because no
        # live hierarchy holds a rank >= the recycled one.
        if component.rank == self._next_rank - 1:
            self._next_rank = component.rank
            while self._next_rank > 0 and not any(
                    comp.rank == self._next_rank - 1
                    for comp in self._components.values()):
                self._next_rank -= 1
        if not component.temporary:
            self.version += 1

    # ------------------------------------------------------------------
    # snapshot pinning (the document store, DESIGN.md §10)
    # ------------------------------------------------------------------

    def _frozen_violation(self, what: str) -> None:
        raise GoddagError(
            f"cannot {what}: this KyGODDAG is a frozen snapshot — "
            f"fork the document (DocumentStore.update does) and mutate "
            f"the fork")

    def freeze(self) -> None:
        """Pin the structure so concurrent readers can share it lock-free.

        Materializes every lazily built read structure (span index,
        partition boundary array and leaf list, per-component parallel
        arrays), marks the numeric arrays read-only, and flips
        ``frozen``: persistent mutations raise from then on.  Remaining
        lazy caches (name masks, per-name element indexes, order keys)
        are idempotent fills — safe to race under the GIL.

        ``read_latch`` serializes the one mutating query construct
        (``analyze-string`` temporaries) against plain readers: every
        evaluation path over a frozen KyGODDAG — snapshot queries and
        direct :class:`~repro.api.Engine` calls alike — acquires it.
        """
        from repro.util.concurrency import ReadWriteLatch

        index = self.span_index()
        index.freeze()
        self.partition.freeze()
        for component in self._components.values():
            component.node_arrays()
        if self.read_latch is None:
            self.read_latch = ReadWriteLatch()
        self.frozen = True

    def thaw(self) -> None:
        """Re-allow mutation.

        For callers that want to mutate a frozen (e.g. cold-loaded)
        structure *they exclusively own* in place; the store never
        thaws a published snapshot — it forks instead.  Arrays that
        were marked read-only are replaced wholesale by the mutation
        paths, never written in place, so no unlocking is needed.
        """
        self.frozen = False
        self.read_latch = None

    # ------------------------------------------------------------------
    # mutation (the transactional update engine, DESIGN.md §9)
    # ------------------------------------------------------------------

    def rename_element(self, node: GElement, name: str) -> None:
        """Rename one element in place.

        Structure, spans, preorder numbers and order keys are all
        untouched, so only the name-derived caches need patching: the
        component's per-name element index and the span index's name
        arrays.
        """
        if self.frozen:
            self._frozen_violation(f"rename element <{node.name}>")
        component = self._components.get(node.hierarchy)
        if component is None or node.preorder < 0 \
                or node.preorder >= len(component.nodes) \
                or component.nodes[node.preorder] is not node:
            raise GoddagError(
                "rename target is not a registered node of this KyGODDAG")
        node._name = name
        component._name_index = None
        if self._index is not None:
            self._index.rename_node(node)
        self.version += 1

    def replace_hierarchy(self, name: str, document: dom.Document) -> None:
        """Re-register one hierarchy from a mutated DOM, keeping its rank.

        The incremental mutation path: the old component's boundaries
        are spliced out of the partition and its sub-arrays compressed
        out of the span index, then the fresh component merges back in —
        every *other* hierarchy's nodes, leaves, caches and order keys
        survive untouched.  The base text must be unchanged; use
        :meth:`rebuild_hierarchies` when it is not.
        """
        if self.frozen:
            self._frozen_violation(f"replace hierarchy '{name}'")
        component = self._components.get(name)
        if component is None:
            raise GoddagError(f"no hierarchy named '{name}'")
        self.partition.remove_boundaries(component.boundaries)
        if self._index is not None:
            self._index.remove_component(component)
        self._detach_component_root(name)
        fresh = _HierarchyComponent(name, component.rank,
                                    component.temporary)
        # Assigning to the existing key keeps the dict position, so the
        # Definition 3 iteration order (registration order) is stable.
        self._components[name] = fresh
        builder = _ComponentBuilder(self, fresh)
        builder.build_from_dom(document.root)
        self._finish_component(fresh)

    def rebuild_hierarchies(self, text: str,
                            documents: dict[str, dom.Document]) -> None:
        """Swap the base text and re-register every hierarchy, in order.

        Used when an update changes the text itself (insert/delete/
        replace value): all spans shift, so every component and the leaf
        partition are rebuilt — but ranks are kept, the span index is
        patched by per-component surgery plus a root re-seed, and no XML
        is ever re-parsed.
        """
        if self.frozen:
            self._frozen_violation("rebuild hierarchies over new text")
        if set(documents) != set(self._components):
            raise GoddagError(
                "rebuild_hierarchies needs exactly the registered "
                "hierarchies")
        index = self._index
        if index is not None:
            for component in self._components.values():
                index.remove_component(component)
        self.text = text
        self.root.end = len(text)
        if index is not None:
            index.reset_root()
        self.partition = Partition(self, len(text))
        for name, old in list(self._components.items()):
            self._detach_component_root(name)
            fresh = _HierarchyComponent(name, old.rank, old.temporary)
            self._components[name] = fresh
            builder = _ComponentBuilder(self, fresh)
            builder.build_from_dom(documents[name].root)
            self._finish_component(fresh)
        self.version += 1

    def _detach_component_root(self, name: str) -> None:
        self.root.children_by_hierarchy.pop(name, None)
        self.root.attributes_by_hierarchy.pop(name, None)
        self.root.invalidate_child_positions(name)

    def check_invariants(self) -> None:
        """Verify the full structural contract (DESIGN.md §9).

        Order-key monotonicity over Definition 3, per-hierarchy span
        containment and preorder consistency, text tiling, partition
        boundary bookkeeping, and span-index array coherence.  Raises
        :class:`~repro.errors.GoddagError` on the first violation — the
        post-apply safety net of the update engine.
        """
        from repro.core.goddag.invariants import check_invariants

        check_invariants(self)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    @property
    def hierarchy_names(self) -> list[str]:
        """Hierarchy names in registration (rank) order."""
        return list(self._components)

    @property
    def persistent_hierarchy_names(self) -> list[str]:
        """Names of non-temporary hierarchies."""
        return [name for name, comp in self._components.items()
                if not comp.temporary]

    def is_temporary(self, name: str) -> bool:
        """True when ``name`` is a temporary (query-scoped) hierarchy."""
        return self._components[name].temporary

    def has_hierarchy(self, name: str) -> bool:
        return name in self._components

    def hierarchy_rank(self, name: str) -> int:
        return self._components[name].rank

    def nodes_of(self, hierarchy: str) -> list[_HierarchyNode]:
        """All nodes of one component in document (pre)order."""
        return self._components[hierarchy].nodes

    def iter_nodes(self, include_leaves: bool = True,
                   include_attributes: bool = False) -> Iterator[GNode]:
        """All nodes in global document order (Definition 3)."""
        yield self.root
        for name in self.hierarchy_names:
            for node in self._components[name].nodes:
                yield node
                if include_attributes and isinstance(node, GElement):
                    yield from node.attribute_nodes
        if include_leaves:
            yield from self.partition.leaves()

    def elements(self, name: str | None = None) -> Iterator[GElement]:
        """All element nodes (optionally with a given name), in order."""
        for node in self.iter_nodes(include_leaves=False):
            if isinstance(node, GElement):
                if name is None or node.name == name:
                    yield node

    # -- leaves -------------------------------------------------------------

    def leaves(self) -> list[GLeaf]:
        """All leaves in text order."""
        return self.partition.leaves()

    def leaves_of(self, node: GNode) -> list[GLeaf]:
        """``leaves(n)`` from the paper: leaves within the node's span."""
        if isinstance(node, GLeaf):
            return [node]
        if not node.has_leaves:
            return []
        return self.partition.leaves_in(node.start, node.end)

    def text_parents_of_leaf(self, leaf: GLeaf) -> list[GText]:
        """The text node containing ``leaf`` in each hierarchy.

        Paper §3: "(n, l) in E iff l ⊆ content(n)" — every leaf has one
        containing text node per hierarchy because each hierarchy's text
        nodes tile the base text.
        """
        from bisect import bisect_right

        parents: list[GText] = []
        for name in self.hierarchy_names:
            component = self._components[name]
            index = bisect_right(component.text_starts, leaf.start) - 1
            if index < 0:
                continue
            candidate = component.text_nodes[index]
            if candidate.start <= leaf.start and leaf.end <= candidate.end:
                parents.append(candidate)
        return parents

    # -- ordering ---------------------------------------------------------
    #
    # Definition 3 keys are packed into one int64 (DESIGN.md §1):
    #
    #   bits 61-62  tier    0 root | 1 hierarchy nodes | 2 leaves
    #   bits 45-60  rank    hierarchy registration rank   (< 2^16)
    #   bits 13-44  major   preorder (tier 1)             (< 2^32)
    #   bits  0-12  minor   0 node itself, 1+i its i-th attribute
    #
    # Leaves use the whole sub-tier payload for their start offset.
    # Packed keys compare exactly like the former tuples but fit numpy
    # int64, so ``sort_nodes`` can argsort large sets.

    _RANK_LIMIT = 1 << 16
    _PREORDER_LIMIT = 1 << 32
    _ATTR_LIMIT = (1 << 13) - 1

    def order_key(self, node: GNode) -> int:
        """Packed int64 key implementing the Definition 3 node order."""
        key = node._okey
        if key is None:
            key = node._okey = self._compute_order_key(node)
        return key

    def _compute_order_key(self, node: GNode) -> int:
        if node is self.root:
            return 0
        if isinstance(node, GAttr):
            owner = node.owner
            attr_index = owner.attribute_nodes.index(node)
            return self._pack_hierarchy_key(owner, 1 + attr_index)
        if isinstance(node, _HierarchyNode):
            return self._pack_hierarchy_key(node, 0)
        if isinstance(node, GLeaf):
            return (2 << 61) | node.start
        raise GoddagError(f"cannot order node of kind {node.kind!r}")

    def _pack_hierarchy_key(self, node: _HierarchyNode, minor: int) -> int:
        rank = self._components[node.hierarchy].rank
        if (rank >= self._RANK_LIMIT or node.preorder >= self._PREORDER_LIMIT
                or minor > self._ATTR_LIMIT):
            raise GoddagError(
                "document-order key overflow: rank/preorder/attribute "
                f"position ({rank}, {node.preorder}, {minor}) exceeds the "
                "packed int64 layout (see DESIGN.md §1)")
        return (1 << 61) | (rank << 45) | (node.preorder << 13) | minor

    #: Below this size Timsort with a key function beats the numpy
    #: round-trip; above it vectorized argsort wins (see DESIGN.md §1).
    _ARGSORT_THRESHOLD = 256

    def sort_nodes(self, nodes: list[GNode]) -> list[GNode]:
        """Sort a node list into global document order, dropping dups."""
        unique: dict[int, GNode] = {id(node): node for node in nodes}
        items = list(unique.values())
        if len(items) >= self._ARGSORT_THRESHOLD:
            order_key = self.order_key
            keys = np.fromiter((order_key(node) for node in items),
                               dtype=np.int64, count=len(items))
            return [items[i] for i in np.argsort(keys, kind="stable")]
        items.sort(key=self.order_key)
        return items

    # -- string values ---------------------------------------------------------

    def string_value(self, node: GNode) -> str:
        """The XPath string value of any node."""
        return node.string_value()

    # -- span index (for extended axes) ------------------------------------

    def span_index(self):
        """The lazily built, incrementally maintained span index.

        Built once on first use; hierarchy adds/removes afterwards are
        merged in place (DESIGN.md §6) instead of discarding it.
        """
        from repro.core.goddag.index import SpanIndex

        index = self._index
        if index is None:
            index = SpanIndex(self)
            self._index = index
            self.index_full_builds += 1
        return index

    def release_caches(self) -> None:
        """Shed the caches that would make a retired version immortal.

        The span index and the per-component node arrays hold KyGODDAG
        nodes inside numpy object arrays, which the cyclic garbage
        collector cannot traverse; through ``node.goddag`` they pin
        this whole structure forever once it leaves the catalog (the
        MVCC single-writer path retires one version per update).  The
        store calls this on every version it unpublishes.  Readers
        still pinned to this version stay correct: every released
        cache is a lazily rebuilt idempotent fill.
        """
        self._index = None
        for component in self._components.values():
            component.release_arrays()


class _ComponentBuilder:
    """Translates one aligned DOM tree into a hierarchy component."""

    def __init__(self, goddag: KyGoddag, component: _HierarchyComponent
                 ) -> None:
        self.goddag = goddag
        self.component = component
        self.cursor = 0

    def build_from_dom(self, root_element: dom.Element) -> None:
        goddag, component = self.goddag, self.component
        if root_element.name != goddag.root.root_name:
            raise GoddagError(
                f"hierarchy '{component.name}' has root element "
                f"'{root_element.name}', expected '{goddag.root.root_name}'")
        goddag.root.attributes_by_hierarchy[component.name] = dict(
            root_element.attributes)
        children = [self._convert(child, goddag.root)
                    for child in root_element.children]
        goddag.root.children_by_hierarchy[component.name] = [
            child for child in children if child is not None]
        if self.cursor != len(goddag.text):
            raise GoddagError(
                f"hierarchy '{component.name}' text covers {self.cursor} "
                f"of {len(goddag.text)} characters")
        self._assign_preorder()
        self._collect_boundaries()

    def _convert(self, node: dom.Node, parent: GNode) -> _HierarchyNode | None:
        goddag, component = self.goddag, self.component
        if isinstance(node, dom.Text):
            start = self.cursor
            end = start + len(node.data)
            if goddag.text[start:end] != node.data:
                raise GoddagError(
                    f"hierarchy '{component.name}' text diverges from the "
                    f"base text at offset {start}")
            self.cursor = end
            gtext = GText(goddag, component.name, start, end)
            gtext._parent = parent
            component.text_nodes.append(gtext)
            component.text_starts.append(start)
            return gtext
        if isinstance(node, dom.Element):
            element = GElement(goddag, component.name, node.name,
                               self.cursor, self.cursor, node.attributes)
            element._parent = parent
            converted = [self._convert(child, element)
                         for child in node.children]
            element.children = [c for c in converted if c is not None]
            element.end = self.cursor
            return element
        if isinstance(node, dom.Comment):
            comment = GComment(goddag, component.name, self.cursor, node.data)
            comment._parent = parent
            return comment
        if isinstance(node, dom.ProcessingInstruction):
            pi = GPi(goddag, component.name, self.cursor, node.target,
                     node.data)
            pi._parent = parent
            return pi
        return None  # doctype/etc. — nothing to represent

    def _assign_preorder(self) -> None:
        """Number the component's nodes in preorder; record subtree ends."""
        nodes = self.component.nodes
        counter = 0

        def visit(node: _HierarchyNode) -> None:
            nonlocal counter
            node.preorder = counter
            counter += 1
            nodes.append(node)
            if isinstance(node, GElement):
                for child in node.children:
                    visit(child)  # type: ignore[arg-type]
            node.subtree_end = counter - 1

        for top in self.goddag.root.children_by_hierarchy[
                self.component.name]:
            visit(top)  # type: ignore[arg-type]

    def _collect_boundaries(self) -> None:
        """Every markup boundary of this hierarchy, for the partition."""
        offsets: list[int] = []
        for node in self.component.nodes:
            offsets.append(node.start)
            offsets.append(node.end)
        self.component.boundaries = offsets
