"""Vectorized cross-hierarchy interval joins (DESIGN.md §11).

PR 1 turned the *standard* axes into preorder slices and PR 2 made the
query pipeline evaluate them set-at-a-time; this module gives the
*extended* axes of Definition 1 the same treatment.  An extended-axis
step over a whole context sequence is one sorted-array join against
the :class:`~repro.core.goddag.index.SpanIndex` columns instead of one
span-arithmetic call per context node:

* ``xfollowing`` / ``xpreceding`` — **boundary joins**: the union over
  all contexts is a single sorted-column slice bounded by ``min(end)``
  / ``max(start)`` (one ``np.searchsorted`` for the whole step);
* ``xdescendant`` / ``xancestor`` — **containment joins**: the contexts
  are sorted by start once and reduced to running containment bounds
  (prefix max / suffix min of their end offsets); every candidate then
  answers "is it contained in (does it contain) *some* context?" with
  one vectorized ``np.searchsorted`` probe.  A witness whose span is
  strictly larger (smaller) than the candidate's can never fall on the
  candidate's own ancestor/descendant chain, so the Definition 1
  exclusions only need checking when *every* witness is span-equal —
  a rare case resolved per candidate against the actual node objects;
* the ``overlapping`` family — **stab joins**: per-context slice bounds
  come from two ``np.searchsorted`` calls vectorized over the whole
  context set; the variable-width slices are gathered with one
  ``np.repeat`` expansion and masked in bulk.

Candidates are gathered as *positions* into the sorted columns and
carried with their packed Definition 3 order keys
(:meth:`SpanIndex.okey_columns`); one ``np.unique`` over those keys is
simultaneously the step's cross-context deduplication and its global
document-order merge — no per-node Python key computation, no object
sort.  Results flow onward as a :class:`ColumnarNodeSet` so chained
join steps and batched existence probes never re-extract spans.

The per-node axis functions in :mod:`repro.core.goddag.axes` stay
untouched as the semantic oracle — ``tests/test_extended_axis_joins.py``
asserts element-for-element equality on randomized multi-hierarchy
corpora, mirroring PR 1's treatment of the standard axes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GoddagError
from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import GLeaf, GNode, _HierarchyNode

#: Kernel family per extended axis (rendered by ``explain()``).
JOIN_KERNELS: dict[str, str] = {
    "xdescendant": "containment",
    "xancestor": "containment-reverse",
    "xfollowing": "boundary",
    "xpreceding": "boundary",
    "overlapping": "stab",
    "preceding-overlapping": "stab",
    "following-overlapping": "stab",
}

#: Extended axes whose per-node results include shared leaves (for an
#: unnamed, leaf-admitting node test).
_LEAF_BEARING = frozenset({"xdescendant", "xfollowing", "xpreceding"})


class ColumnarNodeSet(list):
    """A node sequence with struct-of-arrays span columns.

    A plain Python list — every non-join operator consumes it unchanged
    — that additionally carries its members' ``start``/``end`` columns,
    so consecutive join steps and batched existence probes never
    re-extract spans node by node.  Columns are snapshots: the pipeline
    treats step outputs as immutable, and anyone who mutates the list
    must discard the instance.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, nodes=(), starts: np.ndarray | None = None,
                 ends: np.ndarray | None = None) -> None:
        super().__init__(nodes)
        self._starts = starts
        self._ends = ends

    def span_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, ends)`` parallel to the list, built lazily."""
        if self._starts is None:
            count = len(self)
            # Guard attribute assigned last (racing lazy fills on a
            # shared frozen snapshot must never see a half-built pair).
            self._ends = np.fromiter((node.end for node in self),
                                     dtype=np.int64, count=count)
            self._starts = np.fromiter((node.start for node in self),
                                       dtype=np.int64, count=count)
        return self._starts, self._ends


def span_columns_of(nodes: list) -> tuple[np.ndarray, np.ndarray]:
    """``(starts, ends)`` for any node list, reusing carried columns."""
    if isinstance(nodes, ColumnarNodeSet):
        return nodes.span_columns()
    count = len(nodes)
    starts = np.fromiter((node.start for node in nodes), dtype=np.int64,
                         count=count)
    ends = np.fromiter((node.end for node in nodes), dtype=np.int64,
                       count=count)
    return starts, ends


# ---------------------------------------------------------------------------
# shared plumbing
# ---------------------------------------------------------------------------

#: ``(okeys, nodes, starts, ends)`` of zero candidates.
def _empty_part() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    return (np.empty(0, dtype=np.int64), np.empty(0, dtype=object),
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def _contexts(nodes: list, *, exclude_leaves: bool = False):
    """Live context nodes + span columns, or ``None`` when empty.

    Drops contexts the per-node axes reject up front: empty spans
    (``has_leaves`` is false — attributes, comments, PIs, empty
    elements) and, for ``xdescendant``, leaves (every span-equal node
    is on a leaf's parent chain, so its result is empty).
    """
    starts, ends = span_columns_of(nodes)
    keep = starts < ends
    if exclude_leaves:
        keep &= np.fromiter((not isinstance(node, GLeaf)
                             for node in nodes),
                            dtype=bool, count=len(nodes))
    if not keep.any():
        return None
    if keep.all():
        kept = list(nodes)
    else:
        kept = [node for node, live in zip(nodes, keep) if live]
    return kept, starts[keep], ends[keep]


def _multi_slice(lefts: np.ndarray,
                 rights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather the union of per-row slices ``[lefts[i], rights[i])``.

    Returns ``(reps, positions)``: for every element of every slice,
    the row it came from and its position in the sliced array — the
    fully vectorized expansion behind the stab joins (one ``np.repeat``
    instead of a Python loop over contexts).
    """
    widths = np.maximum(rights - lefts, 0)
    total = int(widths.sum())
    if not total:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    reps = np.repeat(np.arange(len(lefts), dtype=np.int64), widths)
    offsets = np.cumsum(widths) - widths
    base = np.arange(total, dtype=np.int64) - np.repeat(offsets, widths)
    positions = np.repeat(lefts, widths) + base
    return reps, positions


def _stab_preceding(e_starts: np.ndarray, e_ends: np.ndarray,
                    ctx_starts: np.ndarray, ctx_ends: np.ndarray):
    """Preceding-overlap hits over end-sorted arrays.

    ``(reps, positions)`` of candidates with end inside
    ``(c.start, c.end)`` and start before ``c.start`` — shared by the
    join kernel and the batched existence probe so the boundary
    arithmetic lives exactly once.
    """
    lefts = np.searchsorted(e_ends, ctx_starts, side="right")
    rights = np.searchsorted(e_ends, ctx_ends, side="left")
    reps, positions = _multi_slice(lefts, rights)
    hit = e_starts[positions] < ctx_starts[reps]
    return reps[hit], positions[hit]


def _stab_following(s_starts: np.ndarray, s_ends: np.ndarray,
                    ctx_starts: np.ndarray, ctx_ends: np.ndarray):
    """Following-overlap hits over start-sorted arrays: start inside
    ``(c.start, c.end)``, end past ``c.end``."""
    lefts = np.searchsorted(s_starts, ctx_starts + 1, side="left")
    rights = np.searchsorted(s_starts, ctx_ends, side="left")
    reps, positions = _multi_slice(lefts, rights)
    hit = s_ends[positions] > ctx_ends[reps]
    return reps[hit], positions[hit]


def _span_equal_witnesses(ctx_nodes: list, ctx_starts: np.ndarray,
                          ctx_ends: np.ndarray) -> dict:
    """Context nodes grouped by exact span (the rare-case resolver)."""
    by_span: dict[tuple[int, int], list] = {}
    for node, start, end in zip(ctx_nodes, ctx_starts, ctx_ends):
        by_span.setdefault((int(start), int(end)), []).append(node)
    return by_span


def _valid_descendant_witness(candidate: GNode, context: GNode,
                              goddag: KyGoddag) -> bool:
    """Is span-equal ``candidate`` in ``xdescendant(context)``?

    Mirrors :meth:`SpanIndex.ancestor_or_self_exclusion`: excluded iff
    the candidate is the root or a same-hierarchy ancestor-or-self of
    the context.
    """
    if candidate is goddag.root:
        return False
    if (isinstance(candidate, _HierarchyNode)
            and isinstance(context, _HierarchyNode)
            and candidate.hierarchy == context.hierarchy):
        return not (candidate.preorder <= context.preorder
                    <= candidate.subtree_end)
    return True


def _valid_ancestor_witness(candidate: GNode, context: GNode,
                            goddag: KyGoddag) -> bool:
    """Is span-equal ``candidate`` in ``xancestor(context)``?

    Definition 1 excludes ``descendant(context) ∪ {context}`` — the
    exact test the per-node axis delegates to the span index.
    """
    return not goddag.span_index().is_descendant_or_self(context,
                                                         candidate)


# ---------------------------------------------------------------------------
# kernels — each returns (okeys, nodes, starts, ends) candidate arrays
# ---------------------------------------------------------------------------


def _join_xfollowing(index, ctx_ends: np.ndarray, name: str | None):
    """Boundary join: starts at or past ``min(context ends)``."""
    bound = int(ctx_ends.min())
    if name is not None:
        interval = index.name_interval(name)
        left = int(np.searchsorted(interval.starts, bound, side="left"))
        return (interval.okeys[left:], interval.nodes[left:],
                interval.starts[left:], interval.ends[left:])
    okeys, _e_okeys = index.okey_columns()
    left = int(np.searchsorted(index.starts, bound, side="left"))
    positions = left + np.flatnonzero(index.nonempty[left:])
    return (okeys[positions], index.nodes[positions],
            index.starts[positions], index.ends[positions])


def _join_xpreceding(index, ctx_starts: np.ndarray, name: str | None):
    """Boundary join: ends at or before ``max(context starts)``."""
    bound = int(ctx_starts.max())
    if name is not None:
        interval = index.name_interval(name)
        right = int(np.searchsorted(interval.e_ends, bound, side="right"))
        return (interval.e_okeys[:right], interval.e_nodes[:right],
                interval.e_starts[:right], interval.e_ends[:right])
    _okeys, e_okeys = index.okey_columns()
    right = int(np.searchsorted(index.ends_sorted, bound, side="right"))
    positions = np.flatnonzero(index.e_nonempty[:right])
    return (e_okeys[positions], index.e_nodes[positions],
            index.e_starts[positions], index.ends_sorted[positions])


def _join_xdescendant(goddag: KyGoddag, index, ctx_nodes: list,
                      ctx_starts: np.ndarray, ctx_ends: np.ndarray,
                      name: str | None):
    """Containment join: candidates whose span some context contains.

    Prefix-max reduction: with contexts sorted by start and ``pmax``
    the running maximum of their ends, a candidate ``d`` is contained
    in some context iff a context starting at or before ``d.start``
    reaches ``d.end`` — one vectorized bisect per candidate set.
    """
    order = np.argsort(ctx_starts, kind="stable")
    sorted_starts = ctx_starts[order]
    prefix_max = np.maximum.accumulate(ctx_ends[order])
    lo_bound = int(sorted_starts[0])
    hi_bound = int(prefix_max[-1])
    if name is not None:
        interval = index.name_interval(name)
        left = int(np.searchsorted(interval.starts, lo_bound, side="left"))
        right = int(np.searchsorted(interval.starts, hi_bound,
                                    side="left"))
        okeys = interval.okeys[left:right]
        cand_nodes = interval.nodes[left:right]
        starts = interval.starts[left:right]
        ends = interval.ends[left:right]
    else:
        all_okeys, _e_okeys = index.okey_columns()
        left = int(np.searchsorted(index.starts, lo_bound, side="left"))
        right = int(np.searchsorted(index.starts, hi_bound, side="left"))
        positions = left + np.flatnonzero(index.nonempty[left:right])
        okeys = all_okeys[positions]
        cand_nodes = index.nodes[positions]
        starts = index.starts[positions]
        ends = index.ends[positions]
    if not len(starts):
        return _empty_part()
    # Contexts with start <= candidate start (weak) / < (strict left).
    pos_right = np.searchsorted(sorted_starts, starts, side="right")
    pos_left = np.searchsorted(sorted_starts, starts, side="left")
    reach_right = np.where(pos_right > 0,
                           prefix_max[np.maximum(pos_right - 1, 0)],
                           np.int64(-1))
    reach_left = np.where(pos_left > 0,
                          prefix_max[np.maximum(pos_left - 1, 0)],
                          np.int64(-1))
    weak = reach_right >= ends
    keep = (reach_right > ends) | (reach_left >= ends)
    pending = np.flatnonzero(weak & ~keep)
    if len(pending):
        # Every witness is span-equal: resolve the Definition 1
        # ancestor-or-self exclusion against the actual nodes.
        witnesses = _span_equal_witnesses(ctx_nodes, ctx_starts, ctx_ends)
        for position in pending:
            candidate = cand_nodes[position]
            group = witnesses.get((int(starts[position]),
                                   int(ends[position])), ())
            if any(_valid_descendant_witness(candidate, context, goddag)
                   for context in group):
                keep[position] = True
    chosen = np.flatnonzero(keep)
    return (okeys[chosen], cand_nodes[chosen], starts[chosen],
            ends[chosen])


def _join_xancestor(goddag: KyGoddag, index, ctx_nodes: list,
                    ctx_starts: np.ndarray, ctx_ends: np.ndarray,
                    name: str | None):
    """Reverse containment join: candidates containing some context.

    Suffix-min reduction, the mirror image of :func:`_join_xdescendant`:
    with contexts sorted by start and ``smin`` the suffix minimum of
    their ends, candidate ``m`` contains some context iff a context
    starting at or after ``m.start`` ends by ``m.end``.
    """
    order = np.argsort(ctx_starts, kind="stable")
    sorted_starts = ctx_starts[order]
    suffix_min = np.minimum.accumulate(ctx_ends[order][::-1])[::-1]
    n_ctx = len(sorted_starts)
    hi_bound = int(sorted_starts[-1])
    root = goddag.root
    extra = None
    if name is not None:
        interval = index.name_interval(name)
        right = int(np.searchsorted(interval.starts, hi_bound,
                                    side="right"))
        okeys = interval.okeys[:right]
        cand_nodes = interval.nodes[:right]
        starts = interval.starts[:right]
        ends = interval.ends[:right]
        # Name intervals exclude the root; the per-node axis appends it
        # when the name matches and the context is not the root itself.
        if root.name == name and any(context is not root
                                     for context in ctx_nodes):
            extra = (np.zeros(1, dtype=np.int64),
                     np.array([root], dtype=object),
                     np.zeros(1, dtype=np.int64),
                     np.full(1, root.end, dtype=np.int64))
    else:
        all_okeys, _e_okeys = index.okey_columns()
        right = int(np.searchsorted(index.starts, hi_bound, side="right"))
        positions = np.flatnonzero(index.nonempty[:right])
        okeys = all_okeys[positions]
        cand_nodes = index.nodes[positions]
        starts = index.starts[positions]
        ends = index.ends[positions]
    if not len(starts):
        return extra if extra is not None else _empty_part()
    pos_left = np.searchsorted(sorted_starts, starts, side="left")
    pos_right = np.searchsorted(sorted_starts, starts, side="right")
    huge = np.int64(np.iinfo(np.int64).max)
    reach_left = np.where(pos_left < n_ctx,
                          suffix_min[np.minimum(pos_left, n_ctx - 1)],
                          huge)
    reach_right = np.where(pos_right < n_ctx,
                           suffix_min[np.minimum(pos_right, n_ctx - 1)],
                           huge)
    weak = reach_left <= ends
    keep = (reach_left < ends) | (reach_right <= ends)
    pending = np.flatnonzero(weak & ~keep)
    if len(pending):
        witnesses = _span_equal_witnesses(ctx_nodes, ctx_starts, ctx_ends)
        for position in pending:
            candidate = cand_nodes[position]
            group = witnesses.get((int(starts[position]),
                                   int(ends[position])), ())
            if any(_valid_ancestor_witness(candidate, context, goddag)
                   for context in group):
                keep[position] = True
    chosen = np.flatnonzero(keep)
    part = (okeys[chosen], cand_nodes[chosen], starts[chosen],
            ends[chosen])
    if extra is None:
        return part
    return tuple(np.concatenate((a, b)) for a, b in zip(part, extra))


def _join_overlapping(index, ctx_starts: np.ndarray, ctx_ends: np.ndarray,
                      name: str | None, *, preceding: bool,
                      following: bool):
    """Stab join for the overlap family.

    Per context ``c``, preceding-overlapping candidates end inside
    ``(c.start, c.end)`` and start before ``c.start``;
    following-overlapping candidates start inside ``(c.start, c.end)``
    and end past ``c.end``.  The per-context slice bounds come from two
    vectorized ``np.searchsorted`` calls; the slices are expanded with
    one ``np.repeat`` and masked in bulk.
    """
    if name is not None:
        interval = index.name_interval(name)
        s_arrays = (interval.starts, interval.ends, interval.okeys,
                    interval.nodes)
        e_arrays = (interval.e_starts, interval.e_ends, interval.e_okeys,
                    interval.e_nodes)
    else:
        okeys, e_okeys = index.okey_columns()
        s_arrays = (index.starts, index.ends, okeys, index.nodes)
        e_arrays = (index.e_starts, index.ends_sorted, e_okeys,
                    index.e_nodes)
    parts = []
    if preceding:
        e_starts, e_ends, e_okeys, e_nodes = e_arrays
        _reps, positions = _stab_preceding(e_starts, e_ends,
                                           ctx_starts, ctx_ends)
        parts.append((e_okeys[positions], e_nodes[positions],
                      e_starts[positions], e_ends[positions]))
    if following:
        s_starts, s_ends, s_okeys, s_nodes = s_arrays
        _reps, positions = _stab_following(s_starts, s_ends,
                                           ctx_starts, ctx_ends)
        parts.append((s_okeys[positions], s_nodes[positions],
                      s_starts[positions], s_ends[positions]))
    if len(parts) == 1:
        return parts[0]
    return tuple(np.concatenate(pair) for pair in zip(*parts))


def _leaf_part(goddag: KyGoddag, axis: str, ctx_starts: np.ndarray,
               ctx_ends: np.ndarray) -> list:
    """The step's shared-leaf contribution, in text order."""
    partition = goddag.partition
    if axis == "xfollowing":
        return partition.leaves_from(int(ctx_ends.min()))
    if axis == "xpreceding":
        return partition.leaves_until(int(ctx_starts.max()))
    # xdescendant: the union of per-context leaf ranges — contexts
    # sorted by start merge into maximal intervals via the running max.
    order = np.argsort(ctx_starts, kind="stable")
    sorted_starts = ctx_starts[order]
    running_max = np.maximum.accumulate(ctx_ends[order])
    out: list = []
    run_start = int(sorted_starts[0])
    run_end = int(running_max[0])
    for start, end in zip(sorted_starts[1:], running_max[1:]):
        if int(start) > run_end:
            out.extend(partition.leaves_in(run_start, run_end))
            run_start = int(start)
        run_end = int(end)
    out.extend(partition.leaves_in(run_start, run_end))
    return out


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def join_axis_batch(goddag: KyGoddag, axis: str, nodes: list,
                    name: str | None = None, *,
                    skip_leaves: bool = False,
                    leaves_only: bool = False,
                    test=None, stats=None) -> ColumnarNodeSet:
    """One extended-axis step over a whole context sequence.

    Returns the union of per-node Definition 1 results — deduplicated
    and merged into global document order by one ``np.unique`` over the
    packed order keys — with ``test`` applied, as a
    :class:`ColumnarNodeSet` carrying span columns for the next step.
    ``name``/``skip_leaves``/``leaves_only`` are the planner's pushdown
    hints, with the same purely-an-optimization contract as
    :func:`repro.core.goddag.axes.evaluate_axis_batch`.

    A single live context delegates to the per-node axis (one slice /
    chain walk, already optimal) — the FLWOR-variable shape
    ``$leaf/xancestor::m`` must not pay column gathering per binding,
    especially under ``analyze-string`` membership churn.  ``stats``
    (a :class:`~repro.core.runtime.context.QueryStats`) gets
    ``batched_extended_steps`` bumped only when a kernel actually
    runs, so the counter never reports a delegated step as joined.
    """
    kernel = JOIN_KERNELS.get(axis)
    if kernel is None:
        raise GoddagError(f"'{axis}' is not an extended axis")
    index = goddag.span_index()
    context = _contexts(nodes, exclude_leaves=axis == "xdescendant")
    if context is None:
        return ColumnarNodeSet()
    ctx_nodes, ctx_starts, ctx_ends = context
    if len(ctx_nodes) == 1:
        from repro.core.goddag.axes import evaluate_axis_batch

        return ColumnarNodeSet(evaluate_axis_batch(
            goddag, axis, ctx_nodes, name, skip_leaves=skip_leaves,
            leaves_only=leaves_only, test=test))
    if stats is not None:
        stats.batched_extended_steps += 1
    want_leaves = (axis in _LEAF_BEARING and not skip_leaves
                   and name is None)
    if leaves_only:
        part = _empty_part()
        want_leaves = axis in _LEAF_BEARING
    elif axis == "xfollowing":
        part = _join_xfollowing(index, ctx_ends, name)
    elif axis == "xpreceding":
        part = _join_xpreceding(index, ctx_starts, name)
    elif axis == "xdescendant":
        part = _join_xdescendant(goddag, index, ctx_nodes, ctx_starts,
                                 ctx_ends, name)
    elif axis == "xancestor":
        part = _join_xancestor(goddag, index, ctx_nodes, ctx_starts,
                               ctx_ends, name)
    else:
        part = _join_overlapping(
            index, ctx_starts, ctx_ends, name,
            preceding=axis != "following-overlapping",
            following=axis != "preceding-overlapping")
    okeys, cand_nodes, starts, ends = part
    if len(okeys):
        # Dedup across contexts + the one global document-order sort.
        _unique, first = np.unique(okeys, return_index=True)
        cand_nodes = cand_nodes[first]
        starts = starts[first]
        ends = ends[first]
    out_nodes = cand_nodes.tolist()
    if test is not None and out_nodes:
        flags = np.fromiter((bool(test(node)) for node in out_nodes),
                            dtype=bool, count=len(out_nodes))
        if not flags.all():
            out_nodes = [node for node, flag in zip(out_nodes, flags)
                         if flag]
            starts = starts[flags]
            ends = ends[flags]
    if not want_leaves:
        return ColumnarNodeSet(out_nodes, starts, ends)
    leaves = _leaf_part(goddag, axis, ctx_starts, ctx_ends)
    if test is not None:
        leaves = [leaf for leaf in leaves if test(leaf)]
    if not leaves:
        return ColumnarNodeSet(out_nodes, starts, ends)
    leaf_starts = np.fromiter((leaf.start for leaf in leaves),
                              dtype=np.int64, count=len(leaves))
    leaf_ends = np.fromiter((leaf.end for leaf in leaves),
                            dtype=np.int64, count=len(leaves))
    # Leaves occupy order-key tier 2: they follow every hierarchy node.
    return ColumnarNodeSet(out_nodes + leaves,
                           np.concatenate((starts, leaf_starts)),
                           np.concatenate((ends, leaf_ends)))


def exists_axis_batch(goddag: KyGoddag, axis: str, nodes: list,
                      name: str) -> np.ndarray:
    """Batched EBV existence probe: per context, does ``axis::name``
    yield anything?

    The vectorized counterpart of
    :func:`repro.core.goddag.axes.axis_exists_named` — one boolean per
    context in one pass over the per-name join columns.  The rare
    all-witnesses-span-equal cases fall back to the per-node probe,
    which is also the differential oracle for this function.
    """
    if axis not in JOIN_KERNELS:
        raise GoddagError(f"'{axis}' is not an extended axis")
    from repro.core.goddag.axes import axis_exists_named

    index = goddag.span_index()
    count = len(nodes)
    out = np.zeros(count, dtype=bool)
    if not count:
        return out
    starts, ends = span_columns_of(nodes)
    live = starts < ends
    if not live.any():
        return out
    if axis in ("overlapping", "preceding-overlapping",
                "following-overlapping"):
        interval = index.name_interval(name)
        if not len(interval):
            return out
        chosen = np.flatnonzero(live)
        ctx_starts = starts[chosen]
        ctx_ends = ends[chosen]
        if axis != "following-overlapping":
            reps, _positions = _stab_preceding(
                interval.e_starts, interval.e_ends, ctx_starts, ctx_ends)
            found = np.bincount(reps, minlength=len(chosen)) > 0
            out[chosen[found]] = True
        if axis != "preceding-overlapping":
            reps, _positions = _stab_following(
                interval.starts, interval.ends, ctx_starts, ctx_ends)
            found = np.bincount(reps, minlength=len(chosen)) > 0
            out[chosen[found]] = True
        return out
    interval = index.name_interval(name)
    if axis == "xfollowing":
        if len(interval):
            out = live & (ends <= int(interval.starts[-1]))
        return out
    if axis == "xpreceding":
        if len(interval):
            out = live & (starts >= int(interval.suffix_min_ends[0]))
        return out
    if axis == "xdescendant":
        leafless = live & np.fromiter(
            (not isinstance(node, GLeaf) for node in nodes),
            dtype=bool, count=count)
        if len(interval):
            n_named = len(interval)
            pos_left = np.searchsorted(interval.starts, starts,
                                       side="left")
            pos_right = np.searchsorted(interval.starts, starts,
                                        side="right")
            huge = np.int64(np.iinfo(np.int64).max)
            smin = interval.suffix_min_ends
            reach_left = np.where(pos_left < n_named,
                                  smin[np.minimum(pos_left, n_named - 1)],
                                  huge)
            reach_right = np.where(pos_right < n_named,
                                   smin[np.minimum(pos_right,
                                                   n_named - 1)],
                                   huge)
            weak = leafless & (reach_left <= ends)
            sure = leafless & ((reach_left < ends) | (reach_right <= ends))
            out |= sure
            for position in np.flatnonzero(weak & ~sure):
                out[position] = bool(axis_exists_named(
                    goddag, axis, nodes[position], name))
        return out
    # xancestor: prefix-max reverse containment + the special root case.
    root = goddag.root
    if root.name == name:
        out |= live
        for position, node in enumerate(nodes):
            if node is root:
                out[position] = False
        if out.all():
            return out
    if len(interval):
        n_named = len(interval)
        pmax = interval.prefix_max_ends
        pos_right = np.searchsorted(interval.starts, starts,
                                    side="right")
        pos_left = np.searchsorted(interval.starts, starts, side="left")
        reach_right = np.where(pos_right > 0,
                               pmax[np.maximum(pos_right - 1, 0)],
                               np.int64(-1))
        reach_left = np.where(pos_left > 0,
                              pmax[np.maximum(pos_left - 1, 0)],
                              np.int64(-1))
        weak = live & (reach_right >= ends)
        sure = live & ((reach_right > ends) | (reach_left >= ends))
        out |= sure
        for position in np.flatnonzero(weak & ~sure & ~out):
            out[position] = bool(axis_exists_named(
                goddag, axis, nodes[position], name))
    return out
