"""Reference implementations: literal Definition 1 axes and the seed's
standard-axis walkers.

The ``naive_x*`` functions transcribe the paper's Definition 1
*verbatim*: explicit leaf sets, ``min``/``max`` over the leaf order,
within-hierarchy ancestor/descendant exclusions — with a full scan over
all nodes and no index.  The ``naive_*`` standard axes preserve the
seed implementation — stack walks with seen-sets and full-corpus
linear scans — that the slice-based rewrite in
:mod:`repro.core.goddag.axes` replaced (DESIGN.md §5).  They exist for
two purposes:

* **correctness oracle** — the production axes (interval arithmetic
  over the sorted span index; preorder slices for the standard axes)
  are asserted equal to these on hand-written and
  hypothesis-generated documents (``tests/test_prop_axes.py``);
* **ablation/baseline** — ``benchmarks/test_ablation_axes.py`` measures
  what the sorted span index buys over the O(n·leaves) evaluation, and
  ``benchmarks/test_scaling_standard_axes.py`` measures the slice
  rewrite against these walkers.
"""

from __future__ import annotations

from repro.errors import GoddagError
from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import (
    GAttr,
    GElement,
    GLeaf,
    GNode,
    GRoot,
    GText,
    _HierarchyNode,
)


def _span_nodes(goddag: KyGoddag) -> list[GNode]:
    """The domain of Definition 1: root + every element/text node."""
    nodes: list[GNode] = [goddag.root]
    for name in goddag.hierarchy_names:
        nodes.extend(n for n in goddag.nodes_of(name)
                     if isinstance(n, (GElement, GText)))
    return nodes


def _leaf_ids(goddag: KyGoddag, node: GNode) -> frozenset[int]:
    """``leaves(n)`` as an identity set."""
    return frozenset(id(leaf) for leaf in goddag.leaves_of(node))


def _leaf_order(goddag: KyGoddag, node: GNode) -> list[int]:
    """Leaf positions of ``leaves(n)`` under the leaf linear order."""
    return sorted(leaf.start for leaf in goddag.leaves_of(node))


def _is_descendant(node: GNode, other: GNode, goddag: KyGoddag) -> bool:
    """``other ∈ descendant(node)`` within node's hierarchy.

    The root is in every hierarchy, so everything descends from it;
    leaves descend from any node whose leaf set contains them.
    """
    if node is goddag.root:
        return other is not node
    if isinstance(other, GLeaf):
        return id(other) in _leaf_ids(goddag, node)
    if isinstance(node, _HierarchyNode) and isinstance(other,
                                                       _HierarchyNode):
        return node.is_ancestor_of(other)
    return False


def naive_xancestor(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Definition 1, first bullet, written as printed."""
    ln = _leaf_ids(goddag, node)
    if not ln:
        return []
    out: list[GNode] = []
    for m in _span_nodes(goddag):
        if m is node or _is_descendant(node, m, goddag):
            continue
        lm = _leaf_ids(goddag, m)
        if lm and ln <= lm:
            out.append(m)
    return out


def naive_xdescendant(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Definition 1, second bullet (leaves included as candidates)."""
    ln = _leaf_ids(goddag, node)
    if not ln:
        return []
    out: list[GNode] = []
    for m in _span_nodes(goddag):
        if m is node or _is_descendant(m, node, goddag):
            continue
        lm = _leaf_ids(goddag, m)
        if lm and lm <= ln:
            out.append(m)
    if not isinstance(node, GLeaf):
        out.extend(leaf for leaf in goddag.leaves()
                   if id(leaf) in ln)
    return out


def naive_xfollowing(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """``max(leaves(n)) < min(leaves(m))``, scanning every node."""
    positions = _leaf_order(goddag, node)
    if not positions:
        return []
    ceiling = max(positions)
    out: list[GNode] = []
    for m in _span_nodes(goddag) + list(goddag.leaves()):
        other = _leaf_order(goddag, m)
        if other and ceiling < min(other):
            out.append(m)
    return out


def naive_xpreceding(goddag: KyGoddag, node: GNode) -> list[GNode]:
    positions = _leaf_order(goddag, node)
    if not positions:
        return []
    floor = min(positions)
    out: list[GNode] = []
    for m in _span_nodes(goddag) + list(goddag.leaves()):
        other = _leaf_order(goddag, m)
        if other and max(other) < floor:
            out.append(m)
    return out


def naive_overlapping(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Both overlap directions, with the printed min/max conditions."""
    ln = _leaf_ids(goddag, node)
    positions = _leaf_order(goddag, node)
    if not positions:
        return []
    lo, hi = min(positions), max(positions)
    out: list[GNode] = []
    for m in _span_nodes(goddag):
        if m is node:
            continue
        lm = _leaf_ids(goddag, m)
        if not lm or not (ln & lm):
            continue
        other = _leaf_order(goddag, m)
        other_lo, other_hi = min(other), max(other)
        preceding = other_lo < lo <= other_hi and hi > other_hi
        following = other_lo <= hi < other_hi and lo < other_lo
        if preceding or following:
            out.append(m)
    return out


NAIVE_AXES = {
    "xancestor": naive_xancestor,
    "xdescendant": naive_xdescendant,
    "xfollowing": naive_xfollowing,
    "xpreceding": naive_xpreceding,
    "overlapping": naive_overlapping,
}


# ---------------------------------------------------------------------------
# the seed's standard-axis walkers (kept verbatim as the oracle)
# ---------------------------------------------------------------------------


def _naive_leaves_in(goddag: KyGoddag, start: int, end: int) -> list[GNode]:
    """The seed's ``leaves_in``: one bisect plus a bounded Python scan.

    Kept independent of the partition's cached-array fast path so the
    oracle cannot inherit a regression in it (leaf objects still come
    from the canonical per-version cache, as in the seed).
    """
    from bisect import bisect_left

    if start >= end:
        return []
    bounds = goddag.partition.boundaries
    first = bisect_left(bounds, start)
    out: list[GNode] = []
    for index in range(first, len(bounds) - 1):
        leaf_start, leaf_end = bounds[index], bounds[index + 1]
        if leaf_end > end:
            break
        out.append(goddag.partition._leaf(leaf_start, leaf_end))
    return out


def _naive_all_leaves(goddag: KyGoddag) -> list[GNode]:
    """The seed's ``leaves()``: rebuilt from the spans on every call,
    bypassing the partition's cached leaf list."""
    return [goddag.partition._leaf(start, end)
            for start, end in goddag.partition.leaf_spans()]


def naive_child(goddag: KyGoddag, node: GNode) -> list[GNode]:
    if isinstance(node, GRoot):
        return list(node.all_children)
    if isinstance(node, GElement):
        return list(node.children)
    if isinstance(node, GText):
        return _naive_leaves_in(goddag, node.start, node.end)
    return []


def naive_parent(goddag: KyGoddag, node: GNode) -> list[GNode]:
    if isinstance(node, GLeaf):
        return list(goddag.text_parents_of_leaf(node))
    if isinstance(node, GAttr):
        return [node.owner]
    parent = node.parent
    return [parent] if parent is not None else []


def naive_descendant(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """The seed's stack walk over child edges, with a seen-set."""
    out: list[GNode] = []
    seen: set[int] = set()
    stack = naive_child(goddag, node)
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        out.append(current)
        stack.extend(naive_child(goddag, current))
    return out


def naive_ancestor(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """The seed's stack walk over parent edges, with a seen-set."""
    out: list[GNode] = []
    seen: set[int] = set()
    stack = naive_parent(goddag, node)
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        out.append(current)
        stack.extend(naive_parent(goddag, current))
    return out


def _naive_sibling_lists(goddag: KyGoddag,
                         node: GNode) -> list[list[GNode]]:
    if isinstance(node, GLeaf):
        return [naive_child(goddag, parent)
                for parent in goddag.text_parents_of_leaf(node)]
    parent = node.parent
    if parent is None or isinstance(node, GAttr):
        return []
    if isinstance(parent, GRoot):
        hierarchy = node.hierarchy
        assert hierarchy is not None
        return [parent.children_in(hierarchy)]
    return [naive_child(goddag, parent)]


def _naive_identity_index(nodes: list[GNode], node: GNode) -> int:
    """The seed's linear child scan."""
    for position, candidate in enumerate(nodes):
        if candidate is node:
            return position
    raise GoddagError("node is not among its parent's children")


def naive_following_sibling(goddag: KyGoddag, node: GNode) -> list[GNode]:
    out: list[GNode] = []
    for siblings in _naive_sibling_lists(goddag, node):
        index = _naive_identity_index(siblings, node)
        out.extend(siblings[index + 1:])
    return out


def naive_preceding_sibling(goddag: KyGoddag, node: GNode) -> list[GNode]:
    out: list[GNode] = []
    for siblings in _naive_sibling_lists(goddag, node):
        index = _naive_identity_index(siblings, node)
        out.extend(siblings[:index])
    return out


def naive_following(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """The seed's full-component and full-leaf-list scans (including
    the redundant ``node.end <= len(goddag.text)`` guard)."""
    if isinstance(node, GRoot):
        return []
    if isinstance(node, GLeaf):
        return naive_xfollowing(goddag, node)
    if isinstance(node, GAttr):
        return naive_following(goddag, node.owner)
    assert isinstance(node, _HierarchyNode)
    out: list[GNode] = [
        other for other in goddag.nodes_of(node.hierarchy)
        if other.preorder > node.subtree_end
    ]
    if node.end <= len(goddag.text):
        out.extend(leaf for leaf in _naive_all_leaves(goddag)
                   if leaf.start >= node.end)
    return out


def naive_preceding(goddag: KyGoddag, node: GNode) -> list[GNode]:
    if isinstance(node, GRoot):
        return []
    if isinstance(node, GLeaf):
        return naive_xpreceding(goddag, node)
    if isinstance(node, GAttr):
        return naive_preceding(goddag, node.owner)
    assert isinstance(node, _HierarchyNode)
    out: list[GNode] = [
        other for other in goddag.nodes_of(node.hierarchy)
        if other.subtree_end < node.preorder
    ]
    out.extend(leaf for leaf in _naive_all_leaves(goddag)
               if leaf.end <= node.start)
    return out


NAIVE_STANDARD_AXES = {
    "child": naive_child,
    "parent": naive_parent,
    "descendant": naive_descendant,
    "ancestor": naive_ancestor,
    "following-sibling": naive_following_sibling,
    "preceding-sibling": naive_preceding_sibling,
    "following": naive_following,
    "preceding": naive_preceding,
}
