"""Reference implementation of the extended axes — literal Definition 1.

These functions transcribe the paper's Definition 1 *verbatim*:
explicit leaf sets, ``min``/``max`` over the leaf order, within-
hierarchy ancestor/descendant exclusions — with a full scan over all
nodes and no index.  They exist for two purposes:

* **correctness oracle** — the production axes
  (:mod:`repro.core.goddag.axes`, interval arithmetic over the sorted
  span index) are asserted equal to these on hand-written and
  hypothesis-generated documents;
* **ablation** — ``benchmarks/test_ablation_axes.py`` measures what the
  sorted span index buys over this O(n·leaves) evaluation, one of the
  design choices DESIGN.md calls out.
"""

from __future__ import annotations

from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import (
    GElement,
    GLeaf,
    GNode,
    GText,
    _HierarchyNode,
)


def _span_nodes(goddag: KyGoddag) -> list[GNode]:
    """The domain of Definition 1: root + every element/text node."""
    nodes: list[GNode] = [goddag.root]
    for name in goddag.hierarchy_names:
        nodes.extend(n for n in goddag.nodes_of(name)
                     if isinstance(n, (GElement, GText)))
    return nodes


def _leaf_ids(goddag: KyGoddag, node: GNode) -> frozenset[int]:
    """``leaves(n)`` as an identity set."""
    return frozenset(id(leaf) for leaf in goddag.leaves_of(node))


def _leaf_order(goddag: KyGoddag, node: GNode) -> list[int]:
    """Leaf positions of ``leaves(n)`` under the leaf linear order."""
    return sorted(leaf.start for leaf in goddag.leaves_of(node))


def _is_descendant(node: GNode, other: GNode, goddag: KyGoddag) -> bool:
    """``other ∈ descendant(node)`` within node's hierarchy.

    The root is in every hierarchy, so everything descends from it;
    leaves descend from any node whose leaf set contains them.
    """
    if node is goddag.root:
        return other is not node
    if isinstance(other, GLeaf):
        return id(other) in _leaf_ids(goddag, node)
    if isinstance(node, _HierarchyNode) and isinstance(other,
                                                       _HierarchyNode):
        return node.is_ancestor_of(other)
    return False


def naive_xancestor(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Definition 1, first bullet, written as printed."""
    ln = _leaf_ids(goddag, node)
    if not ln:
        return []
    out: list[GNode] = []
    for m in _span_nodes(goddag):
        if m is node or _is_descendant(node, m, goddag):
            continue
        lm = _leaf_ids(goddag, m)
        if lm and ln <= lm:
            out.append(m)
    return out


def naive_xdescendant(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Definition 1, second bullet (leaves included as candidates)."""
    ln = _leaf_ids(goddag, node)
    if not ln:
        return []
    out: list[GNode] = []
    for m in _span_nodes(goddag):
        if m is node or _is_descendant(m, node, goddag):
            continue
        lm = _leaf_ids(goddag, m)
        if lm and lm <= ln:
            out.append(m)
    if not isinstance(node, GLeaf):
        out.extend(leaf for leaf in goddag.leaves()
                   if id(leaf) in ln)
    return out


def naive_xfollowing(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """``max(leaves(n)) < min(leaves(m))``, scanning every node."""
    positions = _leaf_order(goddag, node)
    if not positions:
        return []
    ceiling = max(positions)
    out: list[GNode] = []
    for m in _span_nodes(goddag) + list(goddag.leaves()):
        other = _leaf_order(goddag, m)
        if other and ceiling < min(other):
            out.append(m)
    return out


def naive_xpreceding(goddag: KyGoddag, node: GNode) -> list[GNode]:
    positions = _leaf_order(goddag, node)
    if not positions:
        return []
    floor = min(positions)
    out: list[GNode] = []
    for m in _span_nodes(goddag) + list(goddag.leaves()):
        other = _leaf_order(goddag, m)
        if other and max(other) < floor:
            out.append(m)
    return out


def naive_overlapping(goddag: KyGoddag, node: GNode) -> list[GNode]:
    """Both overlap directions, with the printed min/max conditions."""
    ln = _leaf_ids(goddag, node)
    positions = _leaf_order(goddag, node)
    if not positions:
        return []
    lo, hi = min(positions), max(positions)
    out: list[GNode] = []
    for m in _span_nodes(goddag):
        if m is node:
            continue
        lm = _leaf_ids(goddag, m)
        if not lm or not (ln & lm):
            continue
        other = _leaf_order(goddag, m)
        other_lo, other_hi = min(other), max(other)
        preceding = other_lo < lo <= other_hi and hi > other_hi
        following = other_lo <= hi < other_hi and lo < other_lo
        if preceding or following:
            out.append(m)
    return out


NAIVE_AXES = {
    "xancestor": naive_xancestor,
    "xdescendant": naive_xdescendant,
    "xfollowing": naive_xfollowing,
    "xpreceding": naive_xpreceding,
    "overlapping": naive_overlapping,
}
