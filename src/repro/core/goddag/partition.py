"""The leaf partition of the base text.

Paper §3: *"Let S = l1 · l2 · ... · ls be a partition of S into leaves,
longest substrings such that no markup in any of the di breaks any
substring li (that is, markup appears only at the substring
boundaries)."*

The partition is therefore determined by the multiset of markup
boundary offsets contributed by all hierarchies.  Boundaries are
reference-counted so that removing a (temporary) hierarchy restores
exactly the partition that existed before it was added — leaves that
were split coalesce again.  Each mutation bumps ``version``; leaf
objects are canonical per version.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.errors import GoddagError
from repro.core.goddag.nodes import GLeaf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.goddag.goddag import KyGoddag


class Partition:
    """Reference-counted boundary set and the leaves it induces."""

    def __init__(self, goddag: "KyGoddag", length: int) -> None:
        self._goddag = goddag
        self.length = length
        # The document ends are permanent boundaries.
        self._refcounts: Counter[int] = Counter({0: 1, length: 1})
        self._sorted: list[int] | None = None
        self._leaf_cache: dict[int, GLeaf] = {}
        self.version = 0

    # -- mutation -----------------------------------------------------------

    def add_boundaries(self, offsets: Iterable[int]) -> None:
        """Reference the given boundary offsets (duplicates allowed)."""
        changed = False
        for offset in offsets:
            if offset < 0 or offset > self.length:
                raise GoddagError(
                    f"boundary offset {offset} outside the text "
                    f"(length {self.length})")
            if self._refcounts[offset] == 0:
                changed = True
            self._refcounts[offset] += 1
        if changed:
            self._invalidate()

    def remove_boundaries(self, offsets: Iterable[int]) -> None:
        """Drop one reference per given offset; coalesce freed leaves."""
        changed = False
        for offset in offsets:
            count = self._refcounts[offset]
            if count <= 0:
                raise GoddagError(
                    f"boundary offset {offset} removed more times than "
                    f"it was added")
            if count == 1:
                del self._refcounts[offset]
                changed = True
            else:
                self._refcounts[offset] = count - 1
        if changed:
            self._invalidate()

    def _invalidate(self) -> None:
        self._sorted = None
        self._leaf_cache.clear()
        self.version += 1

    # -- access ---------------------------------------------------------------

    @property
    def boundaries(self) -> list[int]:
        """Distinct boundary offsets in increasing order."""
        if self._sorted is None:
            self._sorted = sorted(self._refcounts)
        return self._sorted

    def __len__(self) -> int:
        """The number of leaves."""
        return max(0, len(self.boundaries) - 1)

    def leaf_spans(self) -> list[tuple[int, int]]:
        """All leaf cells as ``(start, end)`` pairs, in text order."""
        bounds = self.boundaries
        return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]

    def _leaf(self, start: int, end: int) -> GLeaf:
        leaf = self._leaf_cache.get(start)
        if leaf is None:
            leaf = GLeaf(self._goddag, start, end)
            self._leaf_cache[start] = leaf
        return leaf

    def leaves(self) -> list[GLeaf]:
        """All leaves in text order (canonical objects)."""
        return [self._leaf(start, end) for start, end in self.leaf_spans()]

    def leaf_at(self, offset: int) -> GLeaf:
        """The leaf containing character ``offset``."""
        if offset < 0 or offset >= self.length:
            raise GoddagError(
                f"offset {offset} outside the text (length {self.length})")
        bounds = self.boundaries
        index = bisect_right(bounds, offset) - 1
        return self._leaf(bounds[index], bounds[index + 1])

    def leaves_in(self, start: int, end: int) -> list[GLeaf]:
        """Leaves lying entirely within ``[start, end)``.

        For span-aligned callers (every markup node) this is exactly
        ``leaves(n)`` from the paper.
        """
        if start >= end:
            return []
        bounds = self.boundaries
        first = bisect_left(bounds, start)
        out: list[GLeaf] = []
        for index in range(first, len(bounds) - 1):
            leaf_start, leaf_end = bounds[index], bounds[index + 1]
            if leaf_end > end:
                break
            out.append(self._leaf(leaf_start, leaf_end))
        return out

    def is_boundary(self, offset: int) -> bool:
        """True when ``offset`` is a current partition boundary."""
        return self._refcounts[offset] > 0
