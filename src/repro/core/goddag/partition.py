"""The leaf partition of the base text.

Paper §3: *"Let S = l1 · l2 · ... · ls be a partition of S into leaves,
longest substrings such that no markup in any of the di breaks any
substring li (that is, markup appears only at the substring
boundaries)."*

The partition is therefore determined by the multiset of markup
boundary offsets contributed by all hierarchies.  Boundaries are
reference-counted so that removing a (temporary) hierarchy restores
exactly the partition that existed before it was added — leaves that
were split coalesce again.  Each mutation bumps ``version``.

The partition caches a numpy boundary array and the full leaf list
(DESIGN.md §5), so every range query — ``leaves_in``, ``leaves_from``,
``leaves_until`` — is two ``searchsorted`` calls plus a contiguous
slice of the cached list instead of a scan.  Both caches are maintained
**incrementally**: adding or removing boundary offsets splices only the
split/coalesced cells (one bisect + one ``np.insert``/``np.delete``
per changed offset), so the ``analyze-string`` temporary-hierarchy
lifecycle never rebuilds the whole leaf list.  Leaf objects are
canonical per cell lifetime — untouched cells keep their objects across
versions.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GoddagError
from repro.core.goddag.nodes import GLeaf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.goddag.goddag import KyGoddag


class Partition:
    """Reference-counted boundary set and the leaves it induces."""

    def __init__(self, goddag: "KyGoddag", length: int) -> None:
        self._goddag = goddag
        self.length = length
        # The document ends are permanent boundaries.
        self._refcounts: Counter[int] = Counter({0: 1, length: 1})
        self._sorted: list[int] | None = None
        self._bounds_array: np.ndarray | None = None
        self._leaf_cache: dict[int, GLeaf] = {}
        self._leaves_list: list[GLeaf] | None = None
        self.version = 0

    # -- mutation -----------------------------------------------------------

    def add_boundaries(self, offsets: Iterable[int]) -> None:
        """Reference the given boundary offsets (duplicates allowed)."""
        fresh: set[int] = set()
        for offset in offsets:
            if offset < 0 or offset > self.length:
                raise GoddagError(
                    f"boundary offset {offset} outside the text "
                    f"(length {self.length})")
            if self._refcounts[offset] == 0:
                fresh.add(offset)
            self._refcounts[offset] += 1
        if fresh:
            self._apply_delta(sorted(fresh), added=True)

    def remove_boundaries(self, offsets: Iterable[int]) -> None:
        """Drop one reference per given offset; coalesce freed leaves."""
        gone: set[int] = set()
        for offset in offsets:
            count = self._refcounts[offset]
            if count <= 0:
                raise GoddagError(
                    f"boundary offset {offset} removed more times than "
                    f"it was added")
            if count == 1:
                del self._refcounts[offset]
                gone.add(offset)
            else:
                self._refcounts[offset] = count - 1
        if gone:
            self._apply_delta(sorted(gone), added=False)

    def _apply_delta(self, offsets: list[int], added: bool) -> None:
        """Splice changed cells into the cached boundary/leaf structures.

        Interior offsets only (0 and the text length are permanent), so
        every changed offset splits — or re-merges — exactly one cell.
        With nothing materialized yet — or when the delta is a large
        fraction of the partition, where per-offset splices (each an
        O(n) copy) would go quadratic — this is a plain invalidation
        and the caches rebuild lazily in one O(n) pass.
        """
        self.version += 1
        if (self._sorted is None or self._leaves_list is None
                or len(offsets) > max(64, len(self._sorted) // 8)):
            self._sorted = None
            self._bounds_array = None
            self._leaf_cache.clear()
            self._leaves_list = None
            return
        bounds = self._sorted
        leaves = self._leaves_list
        cache = self._leaf_cache
        array = self._bounds_array
        goddag = self._goddag
        if added:
            for offset in offsets:
                position = bisect_left(bounds, offset)
                bounds.insert(position, offset)
                if array is not None:
                    array = np.insert(array, position, offset)
                old = leaves[position - 1]
                left = GLeaf(goddag, old.start, offset)
                right = GLeaf(goddag, offset, old.end)
                leaves[position - 1:position] = [left, right]
                cache[old.start] = left
                cache[offset] = right
        else:
            for offset in offsets:
                position = bisect_left(bounds, offset)
                del bounds[position]
                if array is not None:
                    array = np.delete(array, position)
                left = leaves[position - 1]
                right = leaves[position]
                merged = GLeaf(goddag, left.start, right.end)
                leaves[position - 1:position + 1] = [merged]
                cache.pop(offset, None)
                cache[left.start] = merged
        self._bounds_array = array

    # -- persistence (the .mhxb cold-load path, DESIGN.md §10) ---------------

    def export_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(offsets, refcounts)`` — the whole boundary multiset as two
        parallel sorted int64 arrays, ready for binary persistence."""
        offsets = sorted(self._refcounts)
        counts = [self._refcounts[offset] for offset in offsets]
        return (np.array(offsets, dtype=np.int64),
                np.array(counts, dtype=np.int64))

    @classmethod
    def restore(cls, goddag: "KyGoddag", length: int,
                offsets: np.ndarray, counts: np.ndarray) -> "Partition":
        """Rebuild a partition from :meth:`export_arrays` output.

        The offsets arrive sorted, so no re-sorting happens; the
        boundary array may stay memory-mapped (it is only ever replaced
        wholesale, never written in place).
        """
        partition = cls(goddag, length)
        offset_list = np.asarray(offsets).tolist()
        partition._refcounts = Counter(dict(zip(
            offset_list, np.asarray(counts).tolist())))
        partition._sorted = offset_list
        partition._bounds_array = np.asarray(offsets, dtype=np.int64)
        return partition

    def freeze(self) -> None:
        """Materialize the lazy caches for lock-free snapshot readers."""
        self.boundary_array.setflags(write=False)
        self._all_leaves()

    # -- access ---------------------------------------------------------------

    @property
    def boundaries(self) -> list[int]:
        """Distinct boundary offsets in increasing order."""
        if self._sorted is None:
            self._sorted = sorted(self._refcounts)
        return self._sorted

    @property
    def boundary_array(self) -> np.ndarray:
        """The boundary offsets as a sorted int64 array (cached)."""
        if self._bounds_array is None:
            bounds = self.boundaries
            self._bounds_array = np.fromiter(bounds, dtype=np.int64,
                                             count=len(bounds))
        return self._bounds_array

    def __len__(self) -> int:
        """The number of leaves."""
        return max(0, len(self.boundaries) - 1)

    def leaf_spans(self) -> list[tuple[int, int]]:
        """All leaf cells as ``(start, end)`` pairs, in text order."""
        bounds = self.boundaries
        return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]

    def _leaf(self, start: int, end: int) -> GLeaf:
        leaf = self._leaf_cache.get(start)
        if leaf is None:
            leaf = GLeaf(self._goddag, start, end)
            self._leaf_cache[start] = leaf
        return leaf

    def _all_leaves(self) -> list[GLeaf]:
        """The incrementally maintained leaf list (do not mutate)."""
        if self._leaves_list is None:
            self._leaves_list = [self._leaf(start, end)
                                 for start, end in self.leaf_spans()]
        return self._leaves_list

    def leaves(self) -> list[GLeaf]:
        """All leaves in text order (canonical objects)."""
        return list(self._all_leaves())

    def leaf_at(self, offset: int) -> GLeaf:
        """The leaf containing character ``offset``."""
        if offset < 0 or offset >= self.length:
            raise GoddagError(
                f"offset {offset} outside the text (length {self.length})")
        index = int(np.searchsorted(self.boundary_array, offset,
                                    side="right")) - 1
        return self._all_leaves()[index]

    def leaf_index(self, offset: int) -> int:
        """The position of the leaf starting at ``offset``.

        For a non-boundary offset this is the position the leaf covering
        it *follows*, matching ``searchsorted`` semantics; sibling-axis
        callers always pass canonical leaf starts.
        """
        return int(np.searchsorted(self.boundary_array, offset,
                                   side="left"))

    def leaves_in(self, start: int, end: int) -> list[GLeaf]:
        """Leaves lying entirely within ``[start, end)``.

        For span-aligned callers (every markup node) this is exactly
        ``leaves(n)`` from the paper.  Two bisects plus a slice of the
        cached leaf list.
        """
        if start >= end:
            return []
        bounds = self.boundary_array
        first = int(np.searchsorted(bounds, start, side="left"))
        # Largest boundary index j with bounds[j] <= end; leaves
        # [first, j) end at or before ``end``.
        last = int(np.searchsorted(bounds, end, side="right")) - 1
        if last <= first:
            return []
        return self._all_leaves()[first:last]

    def leaves_from(self, offset: int) -> list[GLeaf]:
        """Leaves whose span starts at or after ``offset``."""
        first = int(np.searchsorted(self.boundary_array, offset,
                                    side="left"))
        return self._all_leaves()[first:]

    def leaves_until(self, offset: int) -> list[GLeaf]:
        """Leaves whose span ends at or before ``offset``."""
        last = int(np.searchsorted(self.boundary_array, offset,
                                   side="right")) - 1
        if last <= 0:
            return []
        return self._all_leaves()[:last]

    def is_boundary(self, offset: int) -> bool:
        """True when ``offset`` is a current partition boundary."""
        return self._refcounts[offset] > 0
