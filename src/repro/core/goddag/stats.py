"""KyGODDAG statistics — the quantitative face of Figure 2.

The paper's Figure 2 is a drawing; its checkable content is the node
and edge inventory of the KyGODDAG built from Figure 1's encodings.
:func:`collect` computes that inventory so the FIG2 benchmark (and
EXPERIMENTS.md) can compare counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import GComment, GElement, GPi, GText


@dataclass
class HierarchyStats:
    """Node counts for one hierarchy component."""

    name: str
    temporary: bool
    elements_by_name: dict[str, int] = field(default_factory=dict)
    text_nodes: int = 0
    comments: int = 0
    processing_instructions: int = 0
    tree_edges: int = 0
    text_leaf_edges: int = 0

    @property
    def element_count(self) -> int:
        return sum(self.elements_by_name.values())


@dataclass
class GoddagStats:
    """The full KyGODDAG inventory."""

    text_length: int
    leaf_count: int
    hierarchies: list[HierarchyStats] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        """All nodes: root + hierarchy nodes + leaves."""
        per_hierarchy = sum(
            h.element_count + h.text_nodes + h.comments
            + h.processing_instructions
            for h in self.hierarchies)
        return 1 + per_hierarchy + self.leaf_count

    @property
    def edge_count(self) -> int:
        """All edges: tree edges plus text→leaf edges."""
        return sum(h.tree_edges + h.text_leaf_edges
                   for h in self.hierarchies)

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) rows for tabular printing."""
        out: list[tuple[str, str]] = [
            ("text length", str(self.text_length)),
            ("leaves", str(self.leaf_count)),
            ("total nodes", str(self.node_count)),
            ("total edges", str(self.edge_count)),
        ]
        for hierarchy in self.hierarchies:
            elements = ", ".join(
                f"{name}:{count}" for name, count
                in sorted(hierarchy.elements_by_name.items()))
            out.append((
                f"hierarchy {hierarchy.name}",
                f"elements[{elements}] text:{hierarchy.text_nodes} "
                f"edges:{hierarchy.tree_edges}+{hierarchy.text_leaf_edges}"))
        return out


def collect(goddag: KyGoddag) -> GoddagStats:
    """Compute the node/edge inventory of ``goddag``."""
    stats = GoddagStats(text_length=len(goddag.text),
                        leaf_count=len(goddag.partition))
    for name in goddag.hierarchy_names:
        hierarchy = HierarchyStats(name=name,
                                   temporary=goddag.is_temporary(name))
        hierarchy.tree_edges += len(goddag.root.children_in(name))
        for node in goddag.nodes_of(name):
            if isinstance(node, GElement):
                count = hierarchy.elements_by_name.get(node.name, 0)
                hierarchy.elements_by_name[node.name] = count + 1
                hierarchy.tree_edges += len(node.children)
            elif isinstance(node, GText):
                hierarchy.text_nodes += 1
                hierarchy.text_leaf_edges += len(
                    goddag.partition.leaves_in(node.start, node.end))
            elif isinstance(node, GComment):
                hierarchy.comments += 1
            elif isinstance(node, GPi):
                hierarchy.processing_instructions += 1
        stats.hierarchies.append(hierarchy)
    return stats
