"""KyGODDAG statistics — Figure 2 inventory and plan-time statistics.

The paper's Figure 2 is a drawing; its checkable content is the node
and edge inventory of the KyGODDAG built from Figure 1's encodings.
:func:`collect` computes that inventory so the FIG2 benchmark (and
EXPERIMENTS.md) can compare counts.  It is vectorized over the span
index columns (the per-node walk survives as :func:`_collect_walk`,
the differential oracle) because the same machinery now feeds
:class:`PlanStats` on the plan-compile path (DESIGN.md §16): per
hierarchy per-name cardinalities, per-name span sums and bounds, and
equi-depth histograms over the element start/length columns — enough
for the cost model in :mod:`repro.core.plan.cost` to rank join orders
and semi-join probes.

``PlanStats`` is versioned with :attr:`KyGoddag.version` and travels
with the document: :func:`plan_stats_payload` computes the identical
payload straight from ``.mhxb`` arrays at save time (see
``repro.store.mhxb._pack``), so a cold-loaded engine costs plans
without re-scanning, and :meth:`PlanStats.fingerprint` (which excludes
the version — identical documents share costed plans) keys the shared
plan cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import GComment, GElement, GPi, GText

#: Equi-depth histogram buckets; the boundary lists carry buckets + 1
#: entries (``np.quantile(..., method="lower")`` picks actual data
#: points, so the payloads stay integral and deterministic).
HIST_BUCKETS = 16


@dataclass
class HierarchyStats:
    """Node counts for one hierarchy component."""

    name: str
    temporary: bool
    elements_by_name: dict[str, int] = field(default_factory=dict)
    text_nodes: int = 0
    comments: int = 0
    processing_instructions: int = 0
    tree_edges: int = 0
    text_leaf_edges: int = 0

    @property
    def element_count(self) -> int:
        return sum(self.elements_by_name.values())


@dataclass
class GoddagStats:
    """The full KyGODDAG inventory."""

    text_length: int
    leaf_count: int
    hierarchies: list[HierarchyStats] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        """All nodes: root + hierarchy nodes + leaves."""
        per_hierarchy = sum(
            h.element_count + h.text_nodes + h.comments
            + h.processing_instructions
            for h in self.hierarchies)
        return 1 + per_hierarchy + self.leaf_count

    @property
    def edge_count(self) -> int:
        """All edges: tree edges plus text→leaf edges."""
        return sum(h.tree_edges + h.text_leaf_edges
                   for h in self.hierarchies)

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) rows for tabular printing."""
        out: list[tuple[str, str]] = [
            ("text length", str(self.text_length)),
            ("leaves", str(self.leaf_count)),
            ("total nodes", str(self.node_count)),
            ("total edges", str(self.edge_count)),
        ]
        for hierarchy in self.hierarchies:
            elements = ", ".join(
                f"{name}:{count}" for name, count
                in sorted(hierarchy.elements_by_name.items()))
            out.append((
                f"hierarchy {hierarchy.name}",
                f"elements[{elements}] text:{hierarchy.text_nodes} "
                f"edges:{hierarchy.tree_edges}+{hierarchy.text_leaf_edges}"))
        return out


def _text_leaf_edge_count(bounds: np.ndarray, starts: np.ndarray,
                          ends: np.ndarray) -> int:
    """Vectorized ``sum(len(partition.leaves_in(s, e)))`` over spans.

    Mirrors :meth:`Partition.leaves_in` exactly: leaves lying entirely
    within ``[s, e)`` are the boundary slots between the first boundary
    at or after ``s`` and the last boundary at or before ``e``; empty
    spans contribute nothing.
    """
    if not len(starts):
        return 0
    nonempty = starts < ends
    s = starts[nonempty]
    e = ends[nonempty]
    first = np.searchsorted(bounds, s, side="left")
    last = np.searchsorted(bounds, e, side="right") - 1
    return int(np.maximum(last - first, 0).sum())


def collect(goddag: KyGoddag) -> GoddagStats:
    """Compute the node/edge inventory of ``goddag`` (vectorized).

    Element/text counts come off the span index columns (one boolean
    mask per hierarchy), tree edges are the component node count (every
    component node has exactly one tree parent — the root or an
    element), and text→leaf edges are two ``searchsorted`` passes over
    the partition boundary array.  Comments/PIs are not span-index
    members; the per-node scan for them runs only when the component
    holds any (``len(nodes)`` exceeds the span row count).
    """
    stats = GoddagStats(text_length=len(goddag.text),
                        leaf_count=len(goddag.partition))
    index = goddag.span_index()
    index._flush_pending()
    names_col = index._names
    ranks = index.ranks
    starts = index.starts
    ends = index.ends
    bounds = goddag.partition.boundary_array
    for name in goddag.hierarchy_names:
        hierarchy = HierarchyStats(name=name,
                                   temporary=goddag.is_temporary(name))
        component_nodes = goddag.nodes_of(name)
        hierarchy.tree_edges = len(component_nodes)
        row_mask = ranks == goddag.hierarchy_rank(name)
        h_names = names_col[row_mask]
        elem_mask = np.not_equal(h_names, None)
        values, counts = np.unique(h_names[elem_mask],
                                   return_counts=True)
        hierarchy.elements_by_name = {
            str(value): int(count)
            for value, count in zip(values, counts)}
        hierarchy.text_nodes = int(len(h_names) - elem_mask.sum())
        text_mask = row_mask.copy()
        text_mask[row_mask] = ~elem_mask
        hierarchy.text_leaf_edges = _text_leaf_edge_count(
            bounds, starts[text_mask], ends[text_mask])
        if len(component_nodes) != len(h_names):
            for node in component_nodes:
                if isinstance(node, GComment):
                    hierarchy.comments += 1
                elif isinstance(node, GPi):
                    hierarchy.processing_instructions += 1
        stats.hierarchies.append(hierarchy)
    return stats


def _collect_walk(goddag: KyGoddag) -> GoddagStats:
    """The original per-node walk — kept as the differential oracle
    for :func:`collect` (``tests/test_plan_cost.py``)."""
    stats = GoddagStats(text_length=len(goddag.text),
                        leaf_count=len(goddag.partition))
    for name in goddag.hierarchy_names:
        hierarchy = HierarchyStats(name=name,
                                   temporary=goddag.is_temporary(name))
        hierarchy.tree_edges += len(goddag.root.children_in(name))
        for node in goddag.nodes_of(name):
            if isinstance(node, GElement):
                count = hierarchy.elements_by_name.get(node.name, 0)
                hierarchy.elements_by_name[node.name] = count + 1
                hierarchy.tree_edges += len(node.children)
            elif isinstance(node, GText):
                hierarchy.text_nodes += 1
                hierarchy.text_leaf_edges += len(
                    goddag.partition.leaves_in(node.start, node.end))
            elif isinstance(node, GComment):
                hierarchy.comments += 1
            elif isinstance(node, GPi):
                hierarchy.processing_instructions += 1
        stats.hierarchies.append(hierarchy)
    return stats


# ---------------------------------------------------------------------------
# plan-time statistics (DESIGN.md §16)
# ---------------------------------------------------------------------------


@dataclass
class PlanStats:
    """Plan-usable document statistics (DESIGN.md §16).

    One instance summarizes one document version: per-hierarchy
    per-name element cardinalities (``cards``, every element including
    empty spans — the domain of a name test), per-name span aggregates
    over the *nonempty* elements (``names`` — what the interval
    kernels see), and equi-depth histograms over the nonempty element
    start/length columns.  All payload values are integers, so the
    canonical JSON — and therefore :meth:`fingerprint` — is exactly
    reproducible from either the live span index or a ``.mhxb``
    container's arrays.
    """

    version: int
    root_name: str
    text_length: int
    word_count: int
    leaf_count: int
    span_count: int
    hierarchy_names: list[str] = field(default_factory=list)
    #: hierarchy -> element name -> count (all elements, empty included)
    cards: dict[str, dict[str, int]] = field(default_factory=dict)
    #: element name -> {count, total_len, min_start, max_end} over the
    #: nonempty elements of every hierarchy
    names: dict[str, dict[str, int]] = field(default_factory=dict)
    #: equi-depth boundaries (HIST_BUCKETS + 1 values, or [] when the
    #: document has no nonempty elements)
    start_hist: list[int] = field(default_factory=list)
    len_hist: list[int] = field(default_factory=list)

    # -- estimator accessors ------------------------------------------------

    def card(self, name: str) -> int:
        """All elements named ``name`` across every hierarchy."""
        return sum(per.get(name, 0) for per in self.cards.values())

    def nonempty(self, name: str) -> int:
        entry = self.names.get(name)
        return entry["count"] if entry else 0

    def avg_len(self, name: str) -> float:
        """Mean span length of the nonempty elements named ``name``."""
        entry = self.names.get(name)
        if not entry or not entry["count"]:
            return 0.0
        return entry["total_len"] / entry["count"]

    def coverage(self, name: str) -> float:
        """Fraction of the text covered by ``name`` spans (clamped;
        stacked/nested spans can exceed 1.0 — that excess is exactly
        what the adaptive fallback exists to catch)."""
        entry = self.names.get(name)
        if not entry or not self.text_length:
            return 0.0
        return min(1.0, entry["total_len"] / self.text_length)

    def avg_span_len(self) -> float:
        """Mean nonempty element length across all names (histogram
        midpoint estimate; 0.0 for element-free documents)."""
        total = sum(entry["total_len"] for entry in self.names.values())
        count = sum(entry["count"] for entry in self.names.values())
        return total / count if count else 0.0

    def start_fraction_below(self, offset: int) -> float:
        """Estimated fraction of nonempty elements starting before
        ``offset``, read off the equi-depth start histogram."""
        return _hist_fraction_below(self.start_hist, offset)

    # -- identity -----------------------------------------------------------

    def payload(self) -> dict:
        return {
            "version": self.version,
            "root": self.root_name,
            "text_length": self.text_length,
            "word_count": self.word_count,
            "leaf_count": self.leaf_count,
            "span_count": self.span_count,
            "hierarchies": list(self.hierarchy_names),
            "cards": {h: dict(sorted(per.items()))
                      for h, per in self.cards.items()},
            "names": {name: dict(entry)
                      for name, entry in sorted(self.names.items())},
            "start_hist": list(self.start_hist),
            "len_hist": list(self.len_hist),
        }

    def fingerprint(self) -> str:
        """Content hash of the statistics, *excluding* the version.

        Two identical documents at different store versions produce
        the same fingerprint, so the shared plan cache keeps serving
        one costed plan across them; any update that shifts a
        cardinality shifts the fingerprint and retires stale plans.
        """
        payload = self.payload()
        del payload["version"]
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_payload(cls, payload: dict) -> "PlanStats":
        return cls(
            version=int(payload["version"]),
            root_name=str(payload["root"]),
            text_length=int(payload["text_length"]),
            word_count=int(payload["word_count"]),
            leaf_count=int(payload["leaf_count"]),
            span_count=int(payload["span_count"]),
            hierarchy_names=[str(n) for n in payload["hierarchies"]],
            cards={str(h): {str(n): int(c) for n, c in per.items()}
                   for h, per in payload["cards"].items()},
            names={str(n): {str(k): int(v) for k, v in entry.items()}
                   for n, entry in payload["names"].items()},
            start_hist=[int(v) for v in payload["start_hist"]],
            len_hist=[int(v) for v in payload["len_hist"]])


def _hist_fraction_below(boundaries: list[int], value: int) -> float:
    """Fraction of the histogram's population below ``value``."""
    if len(boundaries) < 2:
        return 0.5
    position = 0
    for boundary in boundaries:
        if boundary < value:
            position += 1
        else:
            break
    return min(1.0, position / (len(boundaries) - 1))


def _equi_depth(values: np.ndarray) -> list[int]:
    """Equi-depth boundary list over an int column (deterministic:
    ``method="lower"`` always picks actual data points)."""
    if not len(values):
        return []
    quantiles = np.quantile(values, np.linspace(0.0, 1.0,
                                                HIST_BUCKETS + 1),
                            method="lower")
    return [int(v) for v in quantiles]


def _name_aggregates(names: np.ndarray, starts: np.ndarray,
                     ends: np.ndarray) -> dict[str, dict[str, int]]:
    """Per-name count/total_len/min_start/max_end over nonempty spans.

    Order-independent (grouped reductions), so the live span-index
    columns and the ``.mhxb`` per-hierarchy concatenation produce the
    identical mapping.
    """
    if not len(names):
        return {}
    values, inverse = np.unique(names, return_inverse=True)
    lengths = ends - starts
    counts = np.bincount(inverse, minlength=len(values))
    totals = np.zeros(len(values), dtype=np.int64)
    np.add.at(totals, inverse, lengths)
    min_starts = np.full(len(values), np.iinfo(np.int64).max,
                         dtype=np.int64)
    np.minimum.at(min_starts, inverse, starts)
    max_ends = np.zeros(len(values), dtype=np.int64)
    np.maximum.at(max_ends, inverse, ends)
    return {
        str(value): {
            "count": int(counts[position]),
            "total_len": int(totals[position]),
            "min_start": int(min_starts[position]),
            "max_end": int(max_ends[position]),
        }
        for position, value in enumerate(values)}


def _assemble_plan_stats(*, version: int, root_name: str,
                         text: str, leaf_count: int, span_count: int,
                         hierarchy_names: list[str],
                         cards: dict[str, dict[str, int]],
                         elem_names: np.ndarray,
                         elem_starts: np.ndarray,
                         elem_ends: np.ndarray) -> PlanStats:
    """The shared tail of both collectors: filter to nonempty spans,
    aggregate, histogram."""
    nonempty = elem_starts < elem_ends
    starts = elem_starts[nonempty]
    ends = elem_ends[nonempty]
    names = elem_names[nonempty]
    return PlanStats(
        version=version,
        root_name=root_name,
        text_length=len(text),
        word_count=len(text.split()),
        leaf_count=leaf_count,
        span_count=span_count,
        hierarchy_names=list(hierarchy_names),
        cards=cards,
        names=_name_aggregates(names, starts, ends),
        start_hist=_equi_depth(starts),
        len_hist=_equi_depth(ends - starts))


def collect_plan_stats(goddag: KyGoddag) -> PlanStats:
    """Plan statistics straight off the live span index columns."""
    index = goddag.span_index()
    index._flush_pending()
    names_col = index._names
    ranks = index.ranks
    starts = index.starts
    ends = index.ends
    elem_mask = np.not_equal(names_col, None) & (ranks != -1)
    cards: dict[str, dict[str, int]] = {}
    for name in goddag.hierarchy_names:
        row_mask = elem_mask & (ranks == goddag.hierarchy_rank(name))
        values, counts = np.unique(names_col[row_mask],
                                   return_counts=True)
        cards[name] = {str(value): int(count)
                       for value, count in zip(values, counts)}
    return _assemble_plan_stats(
        version=goddag.version,
        root_name=goddag.root.root_name,
        text=goddag.text,
        leaf_count=len(goddag.partition),
        span_count=max(0, len(index) - 1),
        hierarchy_names=goddag.hierarchy_names,
        cards=cards,
        elem_names=names_col[elem_mask],
        elem_starts=starts[elem_mask],
        elem_ends=ends[elem_mask])


def plan_stats_payload(header: dict,
                       arrays: dict[str, np.ndarray]) -> dict:
    """The :class:`PlanStats` payload computed from ``.mhxb`` arrays.

    Called at pack time (``repro.store.mhxb._pack``) so both the DOM
    and the streaming save paths stamp the identical statistics block
    into the header: every aggregate here is order-independent, and
    the per-hierarchy tables hold the same element multiset the live
    span index does.
    """
    name_table = header["names"]
    text = bytes(np.ascontiguousarray(arrays["text"])).decode("utf-8")
    cards: dict[str, dict[str, int]] = {}
    elem_names: list[np.ndarray] = []
    elem_starts: list[np.ndarray] = []
    elem_ends: list[np.ndarray] = []
    span_count = 0
    for position, meta in enumerate(header["hierarchies"]):
        prefix = f"h{position}"
        kinds = np.asarray(arrays[f"{prefix}/kinds"])
        ids = np.asarray(arrays[f"{prefix}/name_ids"])
        starts = np.asarray(arrays[f"{prefix}/starts"])
        ends = np.asarray(arrays[f"{prefix}/ends"])
        span_count += int((kinds <= 1).sum())  # elements + text nodes
        elem = kinds == 0
        values, counts = np.unique(ids[elem], return_counts=True)
        cards[meta["name"]] = {
            name_table[int(value)]: int(count)
            for value, count in zip(values, counts)}
        labels = np.empty(int(elem.sum()), dtype=object)
        for slot, value in enumerate(ids[elem]):
            labels[slot] = name_table[int(value)]
        elem_names.append(labels)
        elem_starts.append(starts[elem])
        elem_ends.append(ends[elem])
    stats = _assemble_plan_stats(
        version=int(header["version"]),
        root_name=str(header["root"]),
        text=text,
        leaf_count=max(0, len(arrays["partition/offsets"]) - 1),
        span_count=span_count,
        hierarchy_names=[meta["name"]
                         for meta in header["hierarchies"]],
        cards=cards,
        elem_names=(np.concatenate(elem_names) if elem_names
                    else np.empty(0, dtype=object)),
        elem_starts=(np.concatenate(elem_starts) if elem_starts
                     else np.empty(0, dtype=np.int64)),
        elem_ends=(np.concatenate(elem_ends) if elem_ends
                   else np.empty(0, dtype=np.int64)))
    return stats.payload()
