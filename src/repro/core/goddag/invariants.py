"""Structural invariant checking for the KyGODDAG (DESIGN.md §9).

``check_invariants`` walks the whole structure and raises
:class:`~repro.errors.GoddagError` on the first violation.  It is the
post-apply safety net of the transactional update engine: every code
path that mutates a KyGODDAG in place (hierarchy replacement, in-place
renames, base-text rebuilds) must leave a structure indistinguishable
from a from-scratch build, and this module is the executable statement
of what that means:

* hierarchy ranks are unique and registration order follows rank, so
  the Definition 3 node order is well defined;
* per component: ``nodes[i].preorder == i``, subtree intervals nest,
  child spans tile their parent's span in order, text nodes tile the
  base text exactly, and the recorded boundary multiset matches the
  node spans;
* cached packed order keys agree with recomputation, and the global
  ``iter_nodes`` order is strictly increasing;
* the partition's boundary refcounts equal the contribution of every
  registered component (plus the permanent text ends), and its leaf
  list tiles the text;
* the span index (when built) holds exactly the span-bearing nodes
  with array entries matching the live node attributes, in key order.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GoddagError
from repro.core.goddag.nodes import (
    GComment,
    GElement,
    GPi,
    GText,
    _HierarchyNode,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.goddag.goddag import KyGoddag


def _fail(message: str) -> None:
    raise GoddagError(f"invariant violation: {message}")


def check_invariants(goddag: "KyGoddag") -> None:
    """Verify the full structural contract; raise on the first breach."""
    _check_ranks(goddag)
    for name in goddag.hierarchy_names:
        _check_component(goddag, name)
    _check_order_keys(goddag)
    _check_partition(goddag)
    _check_span_index(goddag)


# ---------------------------------------------------------------------------
# hierarchies
# ---------------------------------------------------------------------------


def _check_ranks(goddag: "KyGoddag") -> None:
    ranks = [goddag.hierarchy_rank(name) for name in goddag.hierarchy_names]
    if len(set(ranks)) != len(ranks):
        _fail(f"duplicate hierarchy ranks {ranks}")
    if ranks != sorted(ranks):
        _fail(f"hierarchy registration order {goddag.hierarchy_names} "
              f"does not follow rank order {ranks}")


def _check_component(goddag: "KyGoddag", name: str) -> None:
    component = goddag._components[name]
    nodes = component.nodes
    length = len(goddag.text)
    for position, node in enumerate(nodes):
        if node.preorder != position:
            _fail(f"hierarchy '{name}' node {position} carries preorder "
                  f"{node.preorder}")
        if not (position <= node.subtree_end < len(nodes)):
            _fail(f"hierarchy '{name}' node {position} has subtree_end "
                  f"{node.subtree_end} outside [{position}, {len(nodes)})")
        if not (0 <= node.start <= node.end <= length):
            _fail(f"hierarchy '{name}' node {position} span "
                  f"[{node.start},{node.end}) escapes the text "
                  f"(length {length})")
        if node.hierarchy != name:
            _fail(f"hierarchy '{name}' node {position} claims hierarchy "
                  f"'{node.hierarchy}'")
        if isinstance(node, (GComment, GPi)) and node.start != node.end:
            _fail(f"hierarchy '{name}' {node.kind} node {position} has a "
                  f"non-empty span")
    top_nodes = goddag.root.children_in(name)
    _check_children(name, goddag.root, top_nodes, 0,
                    len(nodes) - 1 if nodes else -1, 0, length)
    for node in nodes:
        if isinstance(node, GElement):
            first = node.preorder + 1
            _check_children(name, node, node.children, first,
                            node.subtree_end, node.start, node.end)
        elif node.subtree_end != node.preorder:
            _fail(f"hierarchy '{name}' non-element node {node.preorder} "
                  f"has a subtree")
    _check_text_tiling(goddag, component)
    _check_boundaries_record(component)


def _check_children(name: str, parent, children, first_preorder: int,
                    last_subtree_end: int, span_start: int,
                    span_end: int) -> None:
    expected = first_preorder
    cursor = span_start
    for child in children:
        if not isinstance(child, _HierarchyNode):
            _fail(f"hierarchy '{name}' has a foreign child node "
                  f"{child!r}")
        if child.parent is not parent:
            _fail(f"hierarchy '{name}' node {child.preorder} has a stale "
                  f"parent link")
        if child.preorder != expected:
            _fail(f"hierarchy '{name}' child preorders are not "
                  f"contiguous: expected {expected}, found "
                  f"{child.preorder}")
        if child.start != cursor:
            _fail(f"hierarchy '{name}' node {child.preorder} starts at "
                  f"{child.start}, expected {cursor} (children must tile "
                  f"their parent's span)")
        cursor = child.end
        expected = child.subtree_end + 1
    if children and cursor != span_end:
        _fail(f"hierarchy '{name}' children of the node spanning "
              f"[{span_start},{span_end}) stop at {cursor}")
    if children and expected != last_subtree_end + 1:
        _fail(f"hierarchy '{name}' subtree interval mismatch: children "
              f"end at preorder {expected - 1}, parent subtree_end is "
              f"{last_subtree_end}")


def _check_text_tiling(goddag: "KyGoddag", component) -> None:
    cursor = 0
    texts = [node for node in component.nodes if isinstance(node, GText)]
    if texts != component.text_nodes:
        _fail(f"hierarchy '{component.name}' text_nodes list diverges "
              f"from the component nodes")
    if component.text_starts != [node.start for node in texts]:
        _fail(f"hierarchy '{component.name}' text_starts is stale")
    for node in texts:
        if node.start != cursor:
            _fail(f"hierarchy '{component.name}' text nodes do not tile "
                  f"the base text at offset {cursor}")
        cursor = node.end
    if cursor != len(goddag.text):
        _fail(f"hierarchy '{component.name}' text nodes cover {cursor} "
              f"of {len(goddag.text)} characters")


def _check_boundaries_record(component) -> None:
    expected: list[int] = []
    for node in component.nodes:
        expected.append(node.start)
        expected.append(node.end)
    if Counter(component.boundaries) != Counter(expected):
        _fail(f"hierarchy '{component.name}' recorded boundary multiset "
              f"diverges from its node spans")


# ---------------------------------------------------------------------------
# global order
# ---------------------------------------------------------------------------


def _check_order_keys(goddag: "KyGoddag") -> None:
    previous = -1
    for node in goddag.iter_nodes():
        fresh = goddag._compute_order_key(node)
        if node._okey is not None and node._okey != fresh:
            _fail(f"stale cached order key on {node!r}: cached "
                  f"{node._okey}, recomputed {fresh}")
        if fresh <= previous:
            _fail(f"document order regressed at {node!r} "
                  f"(key {fresh} after {previous})")
        previous = fresh


# ---------------------------------------------------------------------------
# partition
# ---------------------------------------------------------------------------


def _check_partition(goddag: "KyGoddag") -> None:
    partition = goddag.partition
    length = len(goddag.text)
    if partition.length != length:
        _fail(f"partition length {partition.length} diverges from the "
              f"text length {length}")
    expected = Counter({0: 1, length: 1})
    for name in goddag.hierarchy_names:
        expected.update(goddag._components[name].boundaries)
    if +partition._refcounts != +expected:
        _fail("partition boundary refcounts diverge from the registered "
              "hierarchy boundaries")
    bounds = partition.boundaries
    if bounds != sorted(set(bounds)) or bounds != sorted(expected):
        _fail("partition boundary list is not the sorted distinct "
              "offset set")
    array = partition.boundary_array
    if len(array) != len(bounds) or not bool((array == np.fromiter(
            bounds, dtype=np.int64, count=len(bounds))).all()):
        _fail("partition boundary array diverges from the boundary list")
    leaves = partition.leaves()
    spans = partition.leaf_spans()
    if [(leaf.start, leaf.end) for leaf in leaves] != spans:
        _fail("partition leaf list diverges from the boundary spans")
    cursor = 0
    for start, end in spans:
        if start != cursor or end <= start:
            _fail(f"partition leaves do not tile the text at {cursor}")
        cursor = end
    if spans and cursor != length:
        _fail(f"partition leaves stop at {cursor} of {length}")


# ---------------------------------------------------------------------------
# span index
# ---------------------------------------------------------------------------


def _check_span_index(goddag: "KyGoddag") -> None:
    index = goddag._index
    if index is None:
        return
    expected_count = 1 + sum(
        1 for name in goddag.hierarchy_names
        for node in goddag._components[name].nodes
        if isinstance(node, (GElement, GText)))
    if len(index) != expected_count:
        _fail(f"span index holds {len(index)} entries, expected "
              f"{expected_count}")
    for side, keys in (("start", index._s_keys), ("end", index._e_keys)):
        if len(keys) and bool((np.diff(keys) < 0).any()):
            _fail(f"span index {side}-sorted keys are out of order")
    for position in range(len(index.nodes)):
        node = index.nodes[position]
        rank = (-1 if node is goddag.root
                else goddag.hierarchy_rank(node.hierarchy))
        if (index.starts[position] != node.start
                or index.ends[position] != node.end
                or index.ranks[position] != rank
                or index._names[position] != node.name
                or index.preorders[position] != getattr(
                    node, "preorder", -1)
                or index.subtree_ends[position] != getattr(
                    node, "subtree_end", -1)):
            _fail(f"span index start-side entry {position} is stale "
                  f"for {node!r}")
    for position in range(len(index.e_nodes)):
        node = index.e_nodes[position]
        rank = (-1 if node is goddag.root
                else goddag.hierarchy_rank(node.hierarchy))
        if (index.e_starts[position] != node.start
                or index.ends_sorted[position] != node.end
                or index.e_ranks[position] != rank
                or index._e_names[position] != node.name):
            _fail(f"span index end-side entry {position} is stale "
                  f"for {node!r}")
