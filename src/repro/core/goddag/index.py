"""A sorted span index over KyGODDAG nodes.

The extended axes of Definition 1 are pure interval predicates over
node spans (DESIGN.md §3).  The index keeps all span-bearing nodes
(root, elements, text nodes — of every hierarchy, including temporary
ones) in two sorted orders:

* by ``start`` — so *starts within a range* queries (``xdescendant``,
  ``following-overlapping``, ``xfollowing``) are a binary search plus a
  contiguous slice;
* by ``end`` — so *ends within a range* queries
  (``preceding-overlapping``, ``xpreceding``) are too.

Each slice is then refined with vectorized numpy comparisons, making an
axis evaluation O(log n + candidates) instead of O(n).  The index is
rebuilt lazily whenever a hierarchy is added or removed, which makes
``analyze-string``'s temporary hierarchies safe at the cost of an O(n)
rebuild per change — a cost the S-ANALYZE benchmark measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.goddag.nodes import GElement, GNode, GText, _HierarchyNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.goddag.goddag import KyGoddag


class SpanIndex:
    """Sorted parallel arrays over all span-bearing nodes."""

    def __init__(self, goddag: "KyGoddag") -> None:
        self.goddag = goddag
        nodes: list[GNode] = [goddag.root]
        for name in goddag.hierarchy_names:
            for node in goddag.nodes_of(name):
                if isinstance(node, (GElement, GText)):
                    nodes.append(node)
        # Start-sorted order (ties: wider span first, then stable).
        nodes.sort(key=lambda n: (n.start, -n.end))
        self.nodes = nodes
        count = len(nodes)
        self.starts = np.fromiter((n.start for n in nodes),
                                  dtype=np.int64, count=count)
        self.ends = np.fromiter((n.end for n in nodes),
                                dtype=np.int64, count=count)
        self.nonempty = self.starts < self.ends
        ranks = np.empty(count, dtype=np.int64)
        preorders = np.empty(count, dtype=np.int64)
        subtree_ends = np.empty(count, dtype=np.int64)
        for position, node in enumerate(nodes):
            if isinstance(node, _HierarchyNode):
                ranks[position] = goddag.hierarchy_rank(node.hierarchy)
                preorders[position] = node.preorder
                subtree_ends[position] = node.subtree_end
            else:  # the root
                ranks[position] = -1
                preorders[position] = -1
                subtree_ends[position] = -1
        self.ranks = ranks
        self.preorders = preorders
        self.subtree_ends = subtree_ends
        # End-sorted view: positions into the start-sorted arrays.
        self.by_end = np.argsort(self.ends, kind="stable")
        self.ends_sorted = self.ends[self.by_end]
        self._name_masks: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    # -- name pushdown -------------------------------------------------------

    def name_mask(self, name: str) -> np.ndarray:
        """Mask (start-sorted order) of nodes named ``name``."""
        mask = self._name_masks.get(name)
        if mask is None:
            mask = np.fromiter((node.name == name for node in self.nodes),
                               dtype=bool, count=len(self.nodes))
            self._name_masks[name] = mask
        return mask

    # -- range slices -----------------------------------------------------------

    def start_slice(self, lo: int, hi: int) -> tuple[int, int]:
        """Positions whose ``start`` lies in ``[lo, hi)``."""
        left = int(np.searchsorted(self.starts, lo, side="left"))
        right = int(np.searchsorted(self.starts, hi, side="left"))
        return left, right

    def end_slice(self, lo: int, hi: int) -> tuple[int, int]:
        """End-sorted positions whose ``end`` lies in ``[lo, hi)``."""
        left = int(np.searchsorted(self.ends_sorted, lo, side="left"))
        right = int(np.searchsorted(self.ends_sorted, hi, side="left"))
        return left, right

    # -- selection ---------------------------------------------------------------

    def select_slice(self, left: int, right: int,
                     mask: np.ndarray) -> list[GNode]:
        """Nodes at true positions of ``mask`` over ``[left, right)``."""
        return [self.nodes[left + i] for i in np.flatnonzero(mask)]

    def select_end_slice(self, left: int, right: int,
                         mask: np.ndarray) -> list[GNode]:
        """Like :meth:`select_slice`, over the end-sorted view."""
        positions = self.by_end[left:right][mask]
        return [self.nodes[i] for i in positions]

    # -- exclusion helpers --------------------------------------------------------

    def ancestor_or_self_exclusion(self, node: GNode, left: int,
                                   right: int) -> np.ndarray:
        """Mask over ``[left, right)``: same-hierarchy ancestors-or-self.

        Used by ``xdescendant`` (Definition 1 excludes
        ``ancestor(n) ∪ {n}``).  The root never appears inside a start
        slice for a non-root context unless ``n.start == 0``; it is
        matched by its rank (-1) guard below.
        """
        ranks = self.ranks[left:right]
        preorders = self.preorders[left:right]
        subtree_ends = self.subtree_ends[left:right]
        if node is self.goddag.root or not isinstance(node,
                                                      _HierarchyNode):
            # The root has no proper ancestors; a leaf's only indexed
            # ancestor beyond its text chains is the root — and leaf
            # contexts never reach here (xdescendant(leaf) is empty).
            return ranks == -1
        rank = self.goddag.hierarchy_rank(node.hierarchy)
        mask = (ranks == rank) & (preorders <= node.preorder) & \
            (subtree_ends >= node.preorder)
        mask |= ranks == -1  # the root
        return mask

    def is_descendant_or_self(self, node: GNode, other: GNode) -> bool:
        """True when ``other`` is ``node`` or its within-hierarchy
        descendant (including, for the root, every hierarchy node)."""
        if other is node:
            return True
        if node is self.goddag.root:
            return isinstance(other, _HierarchyNode)
        if not isinstance(node, _HierarchyNode):
            return False
        return node.is_ancestor_of(other)
