"""A sorted span index over KyGODDAG nodes, incrementally maintained.

The extended axes of Definition 1 are pure interval predicates over
node spans (DESIGN.md §3).  The index keeps all span-bearing nodes
(root, elements, text nodes — of every hierarchy, including temporary
ones) in two sorted orders:

* by ``start`` — so *starts within a range* queries (``xdescendant``,
  ``following-overlapping``, ``xfollowing``) are a binary search plus a
  contiguous slice;
* by ``end`` — so *ends within a range* queries
  (``preceding-overlapping``, ``xpreceding``) are too.

Each slice is then refined with vectorized numpy comparisons, making an
axis evaluation O(log n + candidates) instead of O(n).

Membership changes are incremental (DESIGN.md §6): every hierarchy
contributes a *sub-index* of per-hierarchy sorted arrays.  Adding a
hierarchy merges its sub-arrays into the global arrays at positions
found by ``np.searchsorted``; removing one compresses the global arrays
through a rank mask and drops the sub-index.  ``analyze-string``'s
temporary hierarchies (Definition 4) therefore cost O(n) vectorized
array surgery per add/remove instead of a full Python-level rebuild —
the S-ANALYZE hot path measured by
``benchmarks/test_scaling_standard_axes.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GoddagError
from repro.core.goddag.nodes import GElement, GNode, GText, _HierarchyNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.goddag.goddag import KyGoddag, _HierarchyComponent

#: Spans are packed into int64 merge keys as (start << 32) | ...;
#: offsets must stay below 2^31 for the keys to remain positive
#: (enforced at sub-index construction).
_OFFSET_BITS = 32
_OFFSET_MASK = (1 << _OFFSET_BITS) - 1
_OFFSET_LIMIT = 1 << 31


def _start_keys(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Merge keys realizing the (start asc, end desc) start order."""
    return (starts << _OFFSET_BITS) | (_OFFSET_MASK - ends)


def _end_keys(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Merge keys realizing the (end asc, start asc) end order."""
    return (ends << _OFFSET_BITS) | starts


def _pack_okeys(ranks: np.ndarray, preorders: np.ndarray) -> np.ndarray:
    """Packed Definition 3 order keys for span-index rows (vectorized).

    Mirrors :meth:`KyGoddag._pack_hierarchy_key` for hierarchy nodes
    (tier 1, minor 0) — including its overflow guard, so a join-only
    query path can never sort on silently wrapped keys.  The root
    (rank -1) keys to 0, exactly its packed order key.  Leaves and
    attributes never appear in the span index.
    """
    if len(ranks) and (int(ranks.max()) >= 1 << 16
                       or int(preorders.max()) >= 1 << 32):
        raise GoddagError(
            "document-order key overflow: hierarchy rank/preorder "
            "exceeds the packed int64 layout (see DESIGN.md §1)")
    keys = (np.int64(1) << np.int64(61)) | (ranks << np.int64(45)) \
        | (preorders << np.int64(13))
    return np.where(ranks == -1, np.int64(0), keys)


class _NameInterval:
    """Per-name interval-join columns (DESIGN.md §11).

    Start-sorted parallel arrays over the nonempty *elements* named
    ``name`` (root excluded), the same multiset re-sorted by the end
    order, running containment bounds (prefix max / suffix min of the
    end offsets), and packed Definition 3 order keys — everything the
    set-at-a-time kernels of :mod:`repro.core.goddag.joins` consume.
    The existence fast paths' containment tuples
    (:meth:`SpanIndex.name_containment`) are views of the same arrays,
    so each name is gathered exactly once.
    """

    __slots__ = ("nodes", "starts", "ends", "ranks", "preorders",
                 "subtree_ends", "okeys",
                 "prefix_max_ends", "suffix_min_ends",
                 "e_nodes", "e_starts", "e_ends", "e_okeys")

    def __init__(self, nodes: np.ndarray, starts: np.ndarray,
                 ends: np.ndarray, ranks: np.ndarray,
                 preorders: np.ndarray,
                 subtree_ends: np.ndarray) -> None:
        self.nodes = nodes
        self.starts = starts
        self.ends = ends
        self.ranks = ranks
        self.preorders = preorders
        self.subtree_ends = subtree_ends
        self.okeys = _pack_okeys(ranks, preorders)
        if len(ends):
            self.prefix_max_ends = np.maximum.accumulate(ends)
            self.suffix_min_ends = np.minimum.accumulate(ends[::-1])[::-1]
        else:
            self.prefix_max_ends = ends
            self.suffix_min_ends = ends
        e_order = np.argsort(_end_keys(starts, ends), kind="stable")
        self.e_nodes = nodes[e_order]
        self.e_starts = starts[e_order]
        self.e_ends = ends[e_order]
        self.e_okeys = self.okeys[e_order]

    def __len__(self) -> int:
        return len(self.starts)


class _SubIndex:
    """One hierarchy's span nodes as sorted parallel sub-arrays."""

    __slots__ = ("rank", "s_keys", "s_nodes", "s_starts", "s_ends",
                 "s_preorders", "s_subtree_ends", "s_names",
                 "e_keys", "e_nodes", "e_starts", "e_ends", "e_names",
                 "e_preorders")

    def __init__(self, rank: int, nodes: list[GNode]) -> None:
        self.rank = rank
        count = len(nodes)
        starts = np.fromiter((n.start for n in nodes), dtype=np.int64,
                             count=count)
        ends = np.fromiter((n.end for n in nodes), dtype=np.int64,
                           count=count)
        if count and int(ends.max()) >= _OFFSET_LIMIT:
            raise GoddagError(
                "span offsets exceed 2^31; the packed int64 merge keys "
                "of the span index cannot represent this text")
        # The root carries no preorder bookkeeping; -1 matches the
        # rank guard in ancestor_or_self_exclusion.
        preorders = np.fromiter(
            (getattr(n, "preorder", -1) for n in nodes),
            dtype=np.int64, count=count)
        subtree_ends = np.fromiter(
            (getattr(n, "subtree_end", -1) for n in nodes),
            dtype=np.int64, count=count)
        objects = np.empty(count, dtype=object)
        for position, node in enumerate(nodes):
            objects[position] = node
        names = np.empty(count, dtype=object)
        for position, node in enumerate(nodes):
            names[position] = node.name
        s_keys = _start_keys(starts, ends)
        s_order = np.argsort(s_keys, kind="stable")
        self.s_keys = s_keys[s_order]
        self.s_nodes = objects[s_order]
        self.s_starts = starts[s_order]
        self.s_ends = ends[s_order]
        self.s_preorders = preorders[s_order]
        self.s_subtree_ends = subtree_ends[s_order]
        self.s_names = names[s_order]
        e_keys = _end_keys(starts, ends)
        e_order = np.argsort(e_keys, kind="stable")
        self.e_keys = e_keys[e_order]
        self.e_nodes = objects[e_order]
        self.e_starts = starts[e_order]
        self.e_ends = ends[e_order]
        self.e_names = names[e_order]
        self.e_preorders = preorders[e_order]

    def __len__(self) -> int:
        return len(self.s_nodes)


def _span_nodes_of(component: "_HierarchyComponent") -> list[GNode]:
    """The component's Definition 1 domain: its element/text nodes."""
    return [node for node in component.nodes
            if isinstance(node, (GElement, GText))]


class _RestoredSub:
    """Stand-in sub-index for a hierarchy restored from ``.mhxb``.

    A restored global index never replays the merge that produced it,
    so the only sub-index state later operations touch is the rank (the
    compression mask of :meth:`SpanIndex.remove_component`) and the
    length (its empty-component early-out).  Everything else — the
    per-hierarchy sorted arrays — exists only transiently during a
    merge and is not reconstructed.
    """

    __slots__ = ("rank", "count")

    def __init__(self, rank: int, count: int) -> None:
        self.rank = rank
        self.count = count

    def __len__(self) -> int:
        return self.count


class SpanIndex:
    """Sorted parallel arrays over all span-bearing nodes."""

    def __init__(self, goddag: "KyGoddag") -> None:
        self.goddag = goddag
        self._subs: dict[str, _SubIndex] = {}
        self._name_masks: dict[str, np.ndarray] = {}
        self._e_name_masks: dict[str, np.ndarray] = {}
        self._intervals: dict[str, _NameInterval] = {}
        self._okeys: np.ndarray | None = None
        self._e_okeys: np.ndarray | None = None
        # Hierarchies registered but not yet merged into the arrays.
        # Membership changes are applied *lazily* on the next read: an
        # analyze-string temporary whose lifetime never touches an
        # extended axis costs no array surgery at all (its removal just
        # cancels the queued add).
        self._pending: list = []
        self.incremental_adds = 0
        self.incremental_removes = 0
        # Seed the global arrays with the shared root (rank -1, never
        # removed), then merge every registered hierarchy in.
        root = _SubIndex(-1, [goddag.root])
        self.nodes = root.s_nodes
        self.starts = root.s_starts
        self.ends = root.s_ends
        self.ranks = np.full(1, -1, dtype=np.int64)
        self.preorders = root.s_preorders
        self.subtree_ends = root.s_subtree_ends
        self._names = root.s_names
        self._s_keys = root.s_keys
        self.e_nodes = root.e_nodes
        self.e_starts = root.e_starts
        self.ends_sorted = root.e_ends
        self.e_ranks = np.full(1, -1, dtype=np.int64)
        self.e_preorders = root.e_preorders
        self._e_names = root.e_names
        self._e_keys = root.e_keys
        self._refresh_nonempty()
        for name in goddag.hierarchy_names:
            self.add_component(goddag._components[name])
        self._flush_pending()
        self.incremental_adds = 0

    def __len__(self) -> int:
        self._flush_pending()
        return len(self.nodes)

    def _refresh_nonempty(self) -> None:
        self.nonempty = self.starts < self.ends
        self.e_nonempty = self.e_starts < self.ends_sorted

    # -- persistence (the .mhxb cold-load path, DESIGN.md §10) ---------------

    @classmethod
    def restore(cls, goddag: "KyGoddag", arrays: dict,
                subs: dict[str, tuple[int, int]]) -> "SpanIndex":
        """Rebuild a span index from persisted global arrays.

        ``arrays`` holds both sorted orders exactly as they left
        :func:`repro.store.mhxb.save_engine` — the numeric columns may
        stay memory-mapped (they are only ever replaced wholesale) and
        nothing is re-sorted or re-merged.  ``subs`` maps hierarchy
        name to ``(rank, span node count)``.
        """
        index = cls.__new__(cls)
        index.goddag = goddag
        index._subs = {name: _RestoredSub(rank, count)
                       for name, (rank, count) in subs.items()}
        index._name_masks = {}
        index._e_name_masks = {}
        index._intervals = {}
        index._okeys = None
        index._e_okeys = None
        index._pending = []
        index.incremental_adds = 0
        index.incremental_removes = 0
        index._s_keys = arrays["s_keys"]
        index.nodes = arrays["nodes"]
        index.starts = arrays["starts"]
        index.ends = arrays["ends"]
        index.ranks = arrays["ranks"]
        index.preorders = arrays["preorders"]
        index.subtree_ends = arrays["subtree_ends"]
        index._names = arrays["names"]
        index._e_keys = arrays["e_keys"]
        index.e_nodes = arrays["e_nodes"]
        index.e_starts = arrays["e_starts"]
        index.ends_sorted = arrays["ends_sorted"]
        index.e_ranks = arrays["e_ranks"]
        # Not persisted in .mhxb: derived lazily from the node objects
        # on first interval-join use (see _e_preorders_now).
        index.e_preorders = arrays.get("e_preorders")
        index._e_names = arrays["e_names"]
        index._refresh_nonempty()
        return index

    def freeze(self) -> None:
        """Flush pending membership changes and mark the numeric arrays
        read-only — accidental in-place writes then raise instead of
        tearing a concurrent snapshot reader (DESIGN.md §10).  Array
        *replacement* (the temporary-hierarchy merge/compress paths)
        stays possible; those build fresh arrays."""
        self._flush_pending()
        self.okey_columns()  # materializes e_preorders too
        for array in (self._s_keys, self.starts, self.ends, self.ranks,
                      self.preorders, self.subtree_ends, self._e_keys,
                      self.e_starts, self.ends_sorted, self.e_ranks,
                      self.e_preorders):
            array.setflags(write=False)

    # -- incremental maintenance --------------------------------------------

    def add_component(self, component: "_HierarchyComponent") -> None:
        """Queue one hierarchy for merging into the global arrays.

        The merge itself is deferred to the next index read
        (:meth:`_flush_pending`); the counter tracks membership changes
        handled without a rebuild, flushed or not.
        """
        self._pending.append(component)
        self.incremental_adds += 1

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        for component in pending:
            self._merge_component(component)

    def _merge_component(self, component: "_HierarchyComponent") -> None:
        sub = _SubIndex(component.rank, _span_nodes_of(component))
        self._subs[component.name] = sub
        if len(sub):
            positions = np.searchsorted(self._s_keys, sub.s_keys,
                                        side="right")
            self._s_keys = np.insert(self._s_keys, positions, sub.s_keys)
            self.nodes = np.insert(self.nodes, positions, sub.s_nodes)
            self.starts = np.insert(self.starts, positions, sub.s_starts)
            self.ends = np.insert(self.ends, positions, sub.s_ends)
            self.ranks = np.insert(self.ranks, positions,
                                   np.int64(sub.rank))
            self.preorders = np.insert(self.preorders, positions,
                                       sub.s_preorders)
            self.subtree_ends = np.insert(self.subtree_ends, positions,
                                          sub.s_subtree_ends)
            self._names = np.insert(self._names, positions, sub.s_names)
            e_positions = np.searchsorted(self._e_keys, sub.e_keys,
                                          side="right")
            # Materialize the (possibly lazily-derived) preorder column
            # before e_nodes changes underneath the derivation.
            e_preorders = self._e_preorders_now()
            self._e_keys = np.insert(self._e_keys, e_positions, sub.e_keys)
            self.e_nodes = np.insert(self.e_nodes, e_positions, sub.e_nodes)
            self.e_starts = np.insert(self.e_starts, e_positions,
                                      sub.e_starts)
            self.ends_sorted = np.insert(self.ends_sorted, e_positions,
                                         sub.e_ends)
            self.e_ranks = np.insert(self.e_ranks, e_positions,
                                     np.int64(sub.rank))
            self._e_names = np.insert(self._e_names, e_positions,
                                      sub.e_names)
            self.e_preorders = np.insert(e_preorders, e_positions,
                                         sub.e_preorders)
            self._refresh_nonempty()
        self._clear_derived(names={name for name in sub.s_names
                                   if name is not None})

    def remove_component(self, component: "_HierarchyComponent") -> None:
        """Drop one hierarchy: cancel its queued add, or compress the
        global arrays when it was already merged."""
        for position, pending in enumerate(self._pending):
            if pending is component:
                del self._pending[position]
                self.incremental_removes += 1
                return
        sub = self._subs.pop(component.name, None)
        if sub is None or not len(sub):
            return
        keep = self.ranks != sub.rank
        self._s_keys = self._s_keys[keep]
        self.nodes = self.nodes[keep]
        self.starts = self.starts[keep]
        self.ends = self.ends[keep]
        self.ranks = self.ranks[keep]
        self.preorders = self.preorders[keep]
        self.subtree_ends = self.subtree_ends[keep]
        self._names = self._names[keep]
        e_keep = self.e_ranks != sub.rank
        e_preorders = self._e_preorders_now()
        self._e_keys = self._e_keys[e_keep]
        self.e_nodes = self.e_nodes[e_keep]
        self.e_starts = self.e_starts[e_keep]
        self.ends_sorted = self.ends_sorted[e_keep]
        self.e_preorders = e_preorders[e_keep]
        self.e_ranks = self.e_ranks[e_keep]
        self._e_names = self._e_names[e_keep]
        self._refresh_nonempty()
        if isinstance(sub, _SubIndex):
            self._clear_derived(names={name for name in sub.s_names
                                       if name is not None})
        else:
            # Restored sub-indexes carry no name table: clear wholesale.
            self._clear_derived()
        self.incremental_removes += 1

    def rename_node(self, node: GNode) -> None:
        """Patch the name arrays after an in-place element rename.

        The node's spans (and therefore its packed merge keys and array
        positions) are unchanged, so the patch is two bisects into the
        sorted key arrays plus an identity scan of the (tiny) equal-key
        runs.
        """
        self._flush_pending()
        start, end = int(node.start), int(node.end)
        s_key = (start << _OFFSET_BITS) | (_OFFSET_MASK - end)
        left = int(np.searchsorted(self._s_keys, s_key, side="left"))
        right = int(np.searchsorted(self._s_keys, s_key, side="right"))
        for position in range(left, right):
            if self.nodes[position] is node:
                self._names[position] = node.name
                break
        e_key = (end << _OFFSET_BITS) | start
        left = int(np.searchsorted(self._e_keys, e_key, side="left"))
        right = int(np.searchsorted(self._e_keys, e_key, side="right"))
        for position in range(left, right):
            if self.e_nodes[position] is node:
                self._e_names[position] = node.name
                break
        # Spans, ranks and preorders are untouched: the order-key
        # columns stay valid; only the name-derived caches reset.
        self._name_masks.clear()
        self._e_name_masks.clear()
        self._intervals.clear()

    def reset_root(self) -> None:
        """Re-seed the root entry after a base-text length change.

        Callable only while no hierarchy is merged or pending (the
        update applier removes every component first): the global
        arrays then hold exactly the root, whose span must track the
        new text length.
        """
        if self._subs or self._pending:
            raise GoddagError(
                "reset_root requires all hierarchy components to be "
                "removed first")
        root = _SubIndex(-1, [self.goddag.root])
        self.nodes = root.s_nodes
        self.starts = root.s_starts
        self.ends = root.s_ends
        self.ranks = np.full(1, -1, dtype=np.int64)
        self.preorders = root.s_preorders
        self.subtree_ends = root.s_subtree_ends
        self._names = root.s_names
        self._s_keys = root.s_keys
        self.e_nodes = root.e_nodes
        self.e_starts = root.e_starts
        self.ends_sorted = root.e_ends
        self.e_ranks = np.full(1, -1, dtype=np.int64)
        self.e_preorders = root.e_preorders
        self._e_names = root.e_names
        self._e_keys = root.e_keys
        self._refresh_nonempty()
        self._clear_derived()

    def _clear_derived(self, names=None) -> None:
        """Invalidate caches after a membership change.

        The boolean name masks and packed order-key columns are
        *positional* (parallel to the global arrays), so any membership
        change stales them wholesale — the order keys rebuild with two
        vectorized packs on next use.  The per-name containment and
        interval caches hold gathered *values* (a node's spans and
        order key never change once registered), so a change only
        stales the names the changed component actually contains —
        pass them as ``names`` to keep every other name's arrays warm
        across ``analyze-string`` temporary churn.  ``names=None``
        clears everything.
        """
        self._name_masks.clear()
        self._e_name_masks.clear()
        self._okeys = None
        self._e_okeys = None
        if names is None:
            self._intervals.clear()
            return
        for name in names:
            self._intervals.pop(name, None)

    # -- name pushdown -------------------------------------------------------

    def name_mask(self, name: str) -> np.ndarray:
        """Mask (start-sorted order) of nodes named ``name``."""
        self._flush_pending()
        mask = self._name_masks.get(name)
        if mask is None:
            mask = self._names == name
            self._name_masks[name] = mask
        return mask

    def e_name_mask(self, name: str) -> np.ndarray:
        """Mask (end-sorted order) of nodes named ``name``."""
        self._flush_pending()
        mask = self._e_name_masks.get(name)
        if mask is None:
            mask = self._e_names == name
            self._e_name_masks[name] = mask
        return mask

    def name_containment(self, name: str) -> tuple:
        """Per-name containment arrays (DESIGN.md §8).

        ``(starts, ends, max_ends, ranks, preorders, subtree_ends)``
        over the nonempty *elements* named ``name`` (the root excluded),
        start-sorted, where ``max_ends`` is the running maximum of
        ``ends``.  ``span ⊇ [s, e)`` existence is then one bisect plus
        one prefix-max lookup: a container named ``name`` exists iff
        some entry starts at or before ``s`` and the prefix max end
        reaches ``e``.  A view of the cached :meth:`name_interval`
        columns — one gather per name serves both the existence fast
        paths and the join kernels.
        """
        interval = self.name_interval(name)
        return (interval.starts, interval.ends, interval.prefix_max_ends,
                interval.ranks, interval.preorders, interval.subtree_ends)

    def has_containing_named(self, name: str, start: int,
                             end: int) -> bool:
        """True iff a nonempty element named ``name`` spans ``[start,
        end)`` or wider (root excluded)."""
        starts, _ends, max_ends, _r, _p, _s = self.name_containment(name)
        position = int(starts.searchsorted(start, side="right"))
        return position > 0 and int(max_ends[position - 1]) >= end

    # -- interval-join columns (DESIGN.md §11) -------------------------------

    def _e_preorders_now(self) -> np.ndarray:
        """The end-sorted preorder column, deriving it when absent.

        Indexes restored from ``.mhxb`` don't persist the column (the
        container predates it); one ``np.fromiter`` over the restored
        node objects fills it, after which it is maintained
        incrementally like every other column.
        """
        if self.e_preorders is None:
            self.e_preorders = np.fromiter(
                (getattr(node, "preorder", -1) for node in self.e_nodes),
                dtype=np.int64, count=len(self.e_nodes))
        return self.e_preorders

    def okey_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Packed Definition 3 order keys, in both sort orders.

        ``(start-sorted, end-sorted)`` parallel to ``nodes`` /
        ``e_nodes``.  Join kernels gather these per candidate position,
        so one ``np.unique`` over the gathered keys is simultaneously
        the step's deduplication *and* its global document-order merge
        — no per-node Python key computation.
        """
        self._flush_pending()
        if self._okeys is None:
            # Guard attribute assigned last: racing fills on a shared
            # frozen snapshot must never expose a half-built pair.
            self._e_okeys = _pack_okeys(self.e_ranks,
                                        self._e_preorders_now())
            self._okeys = _pack_okeys(self.ranks, self.preorders)
        return self._okeys, self._e_okeys

    def name_interval(self, name: str) -> _NameInterval:
        """The cached per-name interval-join columns (DESIGN.md §11)."""
        self._flush_pending()
        interval = self._intervals.get(name)
        if interval is None:
            mask = self.name_mask(name) & self.nonempty & (self.ranks != -1)
            interval = _NameInterval(self.nodes[mask], self.starts[mask],
                                     self.ends[mask], self.ranks[mask],
                                     self.preorders[mask],
                                     self.subtree_ends[mask])
            self._intervals[name] = interval
        return interval

    # -- range slices -----------------------------------------------------------

    def start_slice(self, lo: int, hi: int) -> tuple[int, int]:
        """Positions whose ``start`` lies in ``[lo, hi)``."""
        self._flush_pending()
        starts = self.starts
        return (int(starts.searchsorted(lo, side="left")),
                int(starts.searchsorted(hi, side="left")))

    def end_slice(self, lo: int, hi: int) -> tuple[int, int]:
        """End-sorted positions whose ``end`` lies in ``[lo, hi)``."""
        self._flush_pending()
        ends = self.ends_sorted
        return (int(ends.searchsorted(lo, side="left")),
                int(ends.searchsorted(hi, side="left")))

    # -- selection ---------------------------------------------------------------

    def select_slice(self, left: int, right: int,
                     mask: np.ndarray) -> list[GNode]:
        """Nodes at true positions of ``mask`` over ``[left, right)``."""
        return self.nodes[left:right][mask].tolist()

    def select_end_slice(self, left: int, right: int,
                         mask: np.ndarray) -> list[GNode]:
        """Like :meth:`select_slice`, over the end-sorted arrays."""
        return self.e_nodes[left:right][mask].tolist()

    # -- exclusion helpers --------------------------------------------------------

    def ancestor_or_self_exclusion(self, node: GNode, left: int,
                                   right: int) -> np.ndarray:
        """Mask over ``[left, right)``: same-hierarchy ancestors-or-self.

        Used by ``xdescendant`` (Definition 1 excludes
        ``ancestor(n) ∪ {n}``).  The root never appears inside a start
        slice for a non-root context unless ``n.start == 0``; it is
        matched by its rank (-1) guard below.
        """
        ranks = self.ranks[left:right]
        preorders = self.preorders[left:right]
        subtree_ends = self.subtree_ends[left:right]
        if node is self.goddag.root or not isinstance(node,
                                                      _HierarchyNode):
            # The root has no proper ancestors; a leaf's only indexed
            # ancestor beyond its text chains is the root — and leaf
            # contexts never reach here (xdescendant(leaf) is empty).
            return ranks == -1
        rank = self.goddag.hierarchy_rank(node.hierarchy)
        mask = (ranks == rank) & (preorders <= node.preorder) & \
            (subtree_ends >= node.preorder)
        mask |= ranks == -1  # the root
        return mask

    def is_descendant_or_self(self, node: GNode, other: GNode) -> bool:
        """True when ``other`` is ``node`` or its within-hierarchy
        descendant (including, for the root, every hierarchy node)."""
        if other is node:
            return True
        if node is self.goddag.root:
            return isinstance(other, _HierarchyNode)
        if not isinstance(node, _HierarchyNode):
            return False
        return node.is_ancestor_of(other)
