"""Cross-shard document order over packed int64 order keys.

One KyGODDAG's Definition 3 order packs into a single int64
(``goddag.py``): tier in bits 61-62, hierarchy rank in bits 45-60,
preorder/offset payload below.  That order is **hierarchy-major**: all
of hierarchy A's nodes sort before all of hierarchy B's whenever A
registered first.  A sharded corpus therefore cannot merge shard
results by plain concatenation — shard 0's *physical* nodes must
interleave **after** every shard's *structural* nodes, exactly as they
would in the unsharded document.

The corpus order implemented here is the unsharded document's order,
reconstructed from per-shard keys:

1. **hierarchy band** first — bits 45-63 of the okey (tier + rank).
   Shards are built with identical hierarchy registration order, so
   rank ``r`` names the same hierarchy in every shard.
2. **shard index** second — within one hierarchy, every node of shard
   *i* precedes every node of shard *i+1* (shards partition the text
   left to right).
3. **intra-shard payload** last — bits 0-44 (preorder + attribute
   minor, or leaf start offset), already correct within one shard.

``corpus_sort_order`` turns ``(shard, okey)`` pairs into the argsort
permutation realising that order; the gather side applies it to the
concatenated per-shard result columns (DESIGN.md §13).
"""

from __future__ import annotations

import numpy as np

#: Bits below the hierarchy band (rank starts at bit 45).
BAND_SHIFT = 45
_PAYLOAD_MASK = (1 << BAND_SHIFT) - 1


def split_band(okeys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split packed okeys into (hierarchy band, intra-shard payload)."""
    keys = np.asarray(okeys, dtype=np.int64)
    return keys >> BAND_SHIFT, keys & _PAYLOAD_MASK


def corpus_sort_order(shards: np.ndarray, okeys: np.ndarray) -> np.ndarray:
    """Argsort permutation for corpus document order.

    ``shards[i]`` is the shard index that produced result row ``i``;
    ``okeys[i]`` its packed in-shard order key.  The returned int64
    permutation sorts rows hierarchy-band-major, then shard, then
    in-shard payload — i.e. the order the unsharded document would
    have produced.  The sort is stable, so rows a single shard emitted
    at equal keys (attributes of one element) keep their shard order.
    """
    band, payload = split_band(okeys)
    return np.lexsort((payload, np.asarray(shards, dtype=np.int64), band))


def merge_shard_okeys(per_shard: list[np.ndarray],
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge per-shard okey columns into one corpus-ordered column.

    Returns ``(order, shards, okeys)`` where ``shards``/``okeys`` are
    the concatenated inputs and ``order`` is the permutation from
    :func:`corpus_sort_order`.  Callers carrying parallel columns
    (serialized items, positions) concatenate them the same way and
    apply ``order`` once.
    """
    if not per_shard:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    okeys = np.concatenate(
        [np.asarray(part, dtype=np.int64) for part in per_shard])
    shards = np.concatenate(
        [np.full(len(part), index, dtype=np.int64)
         for index, part in enumerate(per_shard)])
    return corpus_sort_order(shards, okeys), shards, okeys
