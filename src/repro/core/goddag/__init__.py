"""KyGODDAG: the paper's data structure for multihierarchical XML.

Public surface:

* :class:`~repro.core.goddag.goddag.KyGoddag` — build via
  :meth:`KyGoddag.build` from a
  :class:`~repro.cmh.document.MultihierarchicalDocument`.
* :mod:`~repro.core.goddag.axes` — the 12 standard and 7 extended axes.
* :mod:`~repro.core.goddag.joins` — set-at-a-time interval joins for
  the extended axes (DESIGN.md §11).
* :mod:`~repro.core.goddag.render` — XML/DOT/outline rendering.
* :mod:`~repro.core.goddag.stats` — node/edge inventory (Figure 2).
* :class:`~repro.core.goddag.temp.TemporaryHierarchyManager` — the
  ``analyze-string`` hierarchy lifecycle.
"""

from repro.core.goddag.goddag import KyGoddag
from repro.core.goddag.nodes import (
    GAttr,
    GComment,
    GElement,
    GLeaf,
    GNode,
    GPi,
    GRoot,
    GText,
)
from repro.core.goddag.axes import (
    AXES,
    EXTENDED_AXES,
    evaluate_axis,
    evaluate_axis_batch,
)
from repro.core.goddag.joins import (
    JOIN_KERNELS,
    ColumnarNodeSet,
    exists_axis_batch,
    join_axis_batch,
)
from repro.core.goddag.okeys import corpus_sort_order, merge_shard_okeys
from repro.core.goddag.render import describe, serialize_node, to_dot
from repro.core.goddag.stats import GoddagStats, collect
from repro.core.goddag.temp import TemporaryHierarchyManager

__all__ = [
    "KyGoddag",
    "GNode",
    "GRoot",
    "GElement",
    "GText",
    "GLeaf",
    "GAttr",
    "GComment",
    "GPi",
    "AXES",
    "EXTENDED_AXES",
    "JOIN_KERNELS",
    "ColumnarNodeSet",
    "evaluate_axis",
    "evaluate_axis_batch",
    "exists_axis_batch",
    "join_axis_batch",
    "corpus_sort_order",
    "merge_shard_okeys",
    "serialize_node",
    "to_dot",
    "describe",
    "GoddagStats",
    "collect",
    "TemporaryHierarchyManager",
]
