"""KyGODDAG node types.

A KyGODDAG (paper §3) unites the DOM trees of all hierarchies at a
shared root and adds a layer of *leaf* nodes — the partition of the base
text induced by every markup boundary in every hierarchy.  Node kinds:

=============  ============================================================
kind           meaning
=============  ============================================================
``root``       the single shared root (one per KyGODDAG)
``element``    an element node, owned by exactly one hierarchy
``text``       a text node, owned by exactly one hierarchy
``leaf``       a shared leaf cell of the partition (no hierarchy)
``attribute``  an attribute of an element (no text span)
``comment``    a comment (empty span)
``pi``         a processing instruction (empty span)
=============  ============================================================

Every node with content carries a half-open character span
``[start, end)`` into the base text; the axes layer operates purely on
these spans (see DESIGN.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.util.intervals import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.goddag.goddag import KyGoddag

ROOT = "root"
ELEMENT = "element"
TEXT = "text"
LEAF = "leaf"
ATTRIBUTE = "attribute"
COMMENT = "comment"
PI = "processing-instruction"


class GNode:
    """Base class of all KyGODDAG nodes."""

    __slots__ = ("goddag", "start", "end", "_okey")

    kind: str = "abstract"

    def __init__(self, goddag: "KyGoddag", start: int, end: int) -> None:
        self.goddag = goddag
        self.start = start
        self.end = end
        # Cached packed document-order key (a node's hierarchy rank and
        # preorder position never change once registered); see
        # DESIGN.md §1 for the int64 layout.
        self._okey: int | None = None

    # -- geometry -----------------------------------------------------------

    @property
    def span(self) -> Span:
        """The node's character span in the base text."""
        return Span(self.start, self.end)

    @property
    def has_leaves(self) -> bool:
        """True when ``leaves(self)`` is non-empty (non-empty span)."""
        return self.start < self.end

    # -- identity -------------------------------------------------------------

    @property
    def hierarchy(self) -> str | None:
        """The owning hierarchy name (``None`` for root/leaf/shared)."""
        return None

    @property
    def name(self) -> str | None:
        """The node's name, when it has one (elements, attributes, PIs)."""
        return None

    @property
    def parent(self) -> Optional["GNode"]:
        """The single within-hierarchy parent, if there is exactly one."""
        return None

    def string_value(self) -> str:
        """The XPath string value (covered base text, by default)."""
        return self.goddag.text[self.start:self.end]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.kind
        return f"<{type(self).__name__} {label} [{self.start},{self.end})>"


class GRoot(GNode):
    """The shared root: one node present in every hierarchy.

    The per-hierarchy child lists are kept separately so that axes can
    serve both "all components" traversal (root context, paper §3) and
    per-hierarchy serialization.
    """

    __slots__ = ("root_name", "children_by_hierarchy",
                 "attributes_by_hierarchy", "_child_positions")

    kind = ROOT

    def __init__(self, goddag: "KyGoddag", root_name: str,
                 length: int) -> None:
        super().__init__(goddag, 0, length)
        self.root_name = root_name
        self.children_by_hierarchy: dict[str, list[GNode]] = {}
        self.attributes_by_hierarchy: dict[str, dict[str, str]] = {}
        self._child_positions: dict[str, dict[int, int]] = {}

    @property
    def name(self) -> str:
        return self.root_name

    @property
    def attributes(self) -> dict[str, str]:
        """Merged root attributes across hierarchies (first wins)."""
        merged: dict[str, str] = {}
        for attrs in self.attributes_by_hierarchy.values():
            for key, value in attrs.items():
                merged.setdefault(key, value)
        return merged

    def children_in(self, hierarchy: str) -> list[GNode]:
        """The root's children within one hierarchy component."""
        return self.children_by_hierarchy.get(hierarchy, [])

    def child_position(self, hierarchy: str, child: GNode) -> int:
        """The position of ``child`` among one hierarchy's top nodes.

        O(1) via a per-hierarchy identity map (child lists never change
        after the hierarchy is registered).
        """
        positions = self._child_positions.get(hierarchy)
        if positions is None:
            positions = {
                id(node): index
                for index, node in enumerate(self.children_in(hierarchy))
            }
            self._child_positions[hierarchy] = positions
        return positions[id(child)]

    def invalidate_child_positions(self, hierarchy: str) -> None:
        """Drop the cached position map of one (removed) hierarchy."""
        self._child_positions.pop(hierarchy, None)

    @property
    def all_children(self) -> list[GNode]:
        """Children across all components, in hierarchy order."""
        out: list[GNode] = []
        for name in self.goddag.hierarchy_names:
            out.extend(self.children_by_hierarchy.get(name, []))
        return out


class _HierarchyNode(GNode):
    """A node owned by exactly one hierarchy component."""

    __slots__ = ("_hierarchy", "_parent", "preorder", "subtree_end")

    def __init__(self, goddag: "KyGoddag", hierarchy: str,
                 start: int, end: int) -> None:
        super().__init__(goddag, start, end)
        self._hierarchy = hierarchy
        self._parent: GNode | None = None
        # Preorder position within the hierarchy component and the
        # largest preorder in this node's subtree; together they answer
        # ancestor/descendant/following/preceding tests in O(1).
        self.preorder = -1
        self.subtree_end = -1

    @property
    def hierarchy(self) -> str:
        return self._hierarchy

    @property
    def parent(self) -> GNode | None:
        return self._parent

    def is_ancestor_of(self, other: "GNode") -> bool:
        """True when ``self`` is a within-hierarchy ancestor of ``other``."""
        if not isinstance(other, _HierarchyNode):
            return False
        return (other._hierarchy == self._hierarchy
                and self.preorder < other.preorder <= self.subtree_end)


class GElement(_HierarchyNode):
    """An element node within one hierarchy."""

    __slots__ = ("_name", "attributes", "children", "_attr_nodes",
                 "_child_positions")

    kind = ELEMENT

    def __init__(self, goddag: "KyGoddag", hierarchy: str, name: str,
                 start: int, end: int,
                 attributes: dict[str, str] | None = None) -> None:
        super().__init__(goddag, hierarchy, start, end)
        self._name = name
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[GNode] = []
        self._attr_nodes: list[GAttr] | None = None
        self._child_positions: dict[int, int] | None = None

    def child_position(self, child: GNode) -> int:
        """The position of ``child`` in ``self.children``, O(1).

        The identity map is built once; an element's child list never
        changes after its hierarchy is built.
        """
        positions = self._child_positions
        if positions is None:
            positions = self._child_positions = {
                id(node): index
                for index, node in enumerate(self.children)
            }
        return positions[id(child)]

    @property
    def name(self) -> str:
        return self._name

    @property
    def attribute_nodes(self) -> list["GAttr"]:
        """Attribute nodes, materialized once per element."""
        if self._attr_nodes is None:
            self._attr_nodes = [
                GAttr(self.goddag, self, name, value)
                for name, value in self.attributes.items()
            ]
        return self._attr_nodes


class GText(_HierarchyNode):
    """A text node within one hierarchy; children are the shared leaves."""

    __slots__ = ()

    kind = TEXT

    @property
    def content(self) -> str:
        """The character data (a slice of the base text)."""
        return self.goddag.text[self.start:self.end]


class GComment(_HierarchyNode):
    """A comment; occupies a zero-length span at its position."""

    __slots__ = ("data",)

    kind = COMMENT

    def __init__(self, goddag: "KyGoddag", hierarchy: str, position: int,
                 data: str) -> None:
        super().__init__(goddag, hierarchy, position, position)
        self.data = data

    def string_value(self) -> str:
        return self.data


class GPi(_HierarchyNode):
    """A processing instruction; zero-length span at its position."""

    __slots__ = ("target", "data")

    kind = PI

    def __init__(self, goddag: "KyGoddag", hierarchy: str, position: int,
                 target: str, data: str) -> None:
        super().__init__(goddag, hierarchy, position, position)
        self.target = target
        self.data = data

    @property
    def name(self) -> str:
        return self.target

    def string_value(self) -> str:
        return self.data


class GLeaf(GNode):
    """A shared leaf cell of the text partition.

    Leaves are owned by the partition, not by any hierarchy; identity is
    canonical within one partition version (two lookups of the same cell
    return the same object), which lets node-set deduplication work.
    """

    __slots__ = ()

    kind = LEAF

    @property
    def text(self) -> str:
        """The leaf's character data."""
        return self.goddag.text[self.start:self.end]

    @property
    def parents(self) -> list[GText]:
        """One containing text node per hierarchy (paper: the leaf layer
        is connected to the text nodes that contain it)."""
        return self.goddag.text_parents_of_leaf(self)


class GAttr(GNode):
    """An attribute node.  Attributes carry no leaves (empty span)."""

    __slots__ = ("owner", "_name", "value")

    kind = ATTRIBUTE

    def __init__(self, goddag: "KyGoddag", owner: GElement, name: str,
                 value: str) -> None:
        super().__init__(goddag, owner.start, owner.start)
        self.owner = owner
        self._name = name
        self.value = value

    @property
    def name(self) -> str:
        return self._name

    @property
    def hierarchy(self) -> str | None:
        return self.owner.hierarchy

    @property
    def parent(self) -> GNode:
        return self.owner

    @property
    def has_leaves(self) -> bool:
        return False

    def string_value(self) -> str:
        return self.value
