"""The extended query language: lexer, AST, and parser.

One grammar covers both levels the paper uses:

* **extended XPath** (paper §3): location paths with all standard axes,
  the seven extended axes of Definition 1, and the extended node tests
  of Definition 2 (``text('h')``, ``node('h')``, ``*('h')``,
  ``leaf()``);
* an **XQuery subset** (paper §4): FLWOR (``for``/``at``/``let``/
  ``where``/``order by``/``return``), conditionals, quantifiers,
  sequence/range/arithmetic/comparison operators, and direct element
  constructors with enclosed ``{...}`` expressions.

``parse_query`` accepts the full language; ``parse_xpath`` restricts to
path expressions (rejecting FLWOR and constructors) for callers that
want a pure path language.
"""

from repro.core.lang.parser import (
    parse_query,
    parse_statement,
    parse_update,
    parse_xpath,
)
from repro.core.lang import ast

#: Bumped whenever the grammar (lexer/parser surface) changes in a way
#: that alters parse results.  Compiled-plan caches that outlive one
#: engine — the document store's cross-catalog cache — key on it so a
#: plan compiled under an older grammar is never served.
GRAMMAR_VERSION = "mhxq-grammar-3"

__all__ = ["GRAMMAR_VERSION", "parse_query", "parse_statement",
           "parse_update", "parse_xpath", "ast"]
