"""Tokenizer for the extended XPath/XQuery language.

The lexer produces a flat token stream for ordinary expression text and
exposes *character-level* helpers that the parser uses when it enters a
direct element constructor (where XML syntax, not expression syntax,
applies).  Tokens carry source offsets so the parser can re-synchronize
the stream after character-mode excursions.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import QuerySyntaxError
from repro.markup.entities import PREDEFINED, decode_char_reference

EOF = "eof"
NAME = "name"
STRING = "string"
INTEGER = "integer"
DECIMAL = "decimal"
SYMBOL = "symbol"

#: Multi-character symbols, longest first so maximal munch works.
_SYMBOLS = [
    "::", ":=", "//", "..", "!=", "<=", ">=", "<<", ">>",
    "(", ")", "[", "]", "{", "}", "@", ",", ".", "/", "|",
    "+", "-", "*", "=", "<", ">", "$", "?", ";",
]

_NAME_START_EXTRA = set("_")
_NAME_EXTRA = set("_-.")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source extent."""

    kind: str
    value: str
    start: int
    end: int

    def is_symbol(self, value: str) -> bool:
        return self.kind == SYMBOL and self.value == value

    def is_name(self, value: str | None = None) -> bool:
        return self.kind == NAME and (value is None or self.value == value)


class Lexer:
    """Tokenizes expression text; supports parser-driven char mode."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self._pending: list[Token] = []
        self._newlines = [i for i, c in enumerate(text) if c == "\n"]

    # -- diagnostics ---------------------------------------------------------

    def location(self, offset: int) -> tuple[int, int]:
        """1-based (line, column) of a character offset."""
        line = bisect_right(self._newlines, offset - 1)
        start = self._newlines[line - 1] + 1 if line else 0
        return line + 1, offset - start + 1

    def error(self, message: str, offset: int | None = None
              ) -> QuerySyntaxError:
        line, column = self.location(self.pos if offset is None else offset)
        return QuerySyntaxError(message, line, column)

    # -- token stream -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        """Look ahead without consuming."""
        while len(self._pending) <= ahead:
            self._pending.append(self._scan())
        return self._pending[ahead]

    def next(self) -> Token:
        """Consume and return the next token."""
        token = self.peek()
        self._pending.pop(0)
        return token

    def sync_to(self, offset: int) -> None:
        """Discard lookahead and continue lexing from ``offset``.

        Used by the parser when switching between token mode and the
        character mode of direct constructors.
        """
        self.pos = offset
        self._pending.clear()

    # -- character mode (direct constructors) ---------------------------------

    def char_at(self, offset: int) -> str:
        return self.text[offset] if offset < len(self.text) else ""

    def starts_with(self, literal: str, offset: int) -> bool:
        return self.text.startswith(literal, offset)

    # -- scanning ---------------------------------------------------------------

    def _scan(self) -> Token:
        self._skip_trivia()
        start = self.pos
        if start >= len(self.text):
            return Token(EOF, "", start, start)
        char = self.text[start]
        if char in "\"'":
            return self._scan_string(char)
        if char.isdigit() or (char == "." and self.char_at(start + 1)
                              .isdigit()):
            return self._scan_number()
        if self._is_name_start(char):
            return self._scan_name()
        for symbol in _SYMBOLS:
            if self.text.startswith(symbol, start):
                self.pos = start + len(symbol)
                return Token(SYMBOL, symbol, start, self.pos)
        raise self.error(f"unexpected character {char!r}")

    def _skip_trivia(self) -> None:
        text = self.text
        while self.pos < len(text):
            char = text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif text.startswith("(:", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        """Skip an XQuery comment ``(: ... :)`` (they nest)."""
        depth = 0
        text = self.text
        while self.pos < len(text):
            if text.startswith("(:", self.pos):
                depth += 1
                self.pos += 2
            elif text.startswith(":)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise self.error("unterminated comment")

    def _scan_string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        out: list[str] = []
        text = self.text
        while True:
            if self.pos >= len(text):
                raise self.error("unterminated string literal", start)
            char = text[self.pos]
            if char == quote:
                if self.char_at(self.pos + 1) == quote:
                    out.append(quote)  # doubled quote escape
                    self.pos += 2
                    continue
                self.pos += 1
                return Token(STRING, "".join(out), start, self.pos)
            if char == "&":
                out.append(self._scan_reference())
            else:
                out.append(char)
                self.pos += 1

    def _scan_reference(self) -> str:
        """An entity or character reference inside a string literal."""
        start = self.pos
        semi = self.text.find(";", start)
        if semi == -1:
            raise self.error("unterminated entity reference", start)
        body = self.text[start + 1:semi]
        self.pos = semi + 1
        if body.startswith("#"):
            line, column = self.location(start)
            return decode_char_reference(body[1:], line, column)
        if body in PREDEFINED:
            return PREDEFINED[body]
        raise self.error(f"unknown entity '&{body};' in string literal",
                         start)

    def _scan_number(self) -> Token:
        start = self.pos
        text = self.text
        kind = INTEGER
        while self.pos < len(text) and text[self.pos].isdigit():
            self.pos += 1
        if self.char_at(self.pos) == "." and not self.starts_with(
                "..", self.pos):
            kind = DECIMAL
            self.pos += 1
            while self.pos < len(text) and text[self.pos].isdigit():
                self.pos += 1
        if self.char_at(self.pos) in "eE":
            probe = self.pos + 1
            if self.char_at(probe) in "+-":
                probe += 1
            if self.char_at(probe).isdigit():
                kind = DECIMAL
                self.pos = probe
                while (self.pos < len(text)
                       and text[self.pos].isdigit()):
                    self.pos += 1
        return Token(kind, text[start:self.pos], start, self.pos)

    def _scan_name(self) -> Token:
        start = self.pos
        text = self.text
        self.pos += 1
        while self.pos < len(text):
            char = text[self.pos]
            if self._is_name_char(char):
                self.pos += 1
            elif (char == ":" and not self.starts_with("::", self.pos)
                  and self._is_name_start(self.char_at(self.pos + 1))
                  and ":" not in text[start:self.pos]):
                self.pos += 1  # one prefix colon inside a QName
            else:
                break
        return Token(NAME, text[start:self.pos], start, self.pos)

    @staticmethod
    def _is_name_start(char: str) -> bool:
        return bool(char) and (char.isalpha() or char in _NAME_START_EXTRA
                               or ord(char) > 0x7F)

    @staticmethod
    def _is_name_char(char: str) -> bool:
        return bool(char) and (char.isalnum() or char in _NAME_EXTRA
                               or ord(char) > 0x7F)
