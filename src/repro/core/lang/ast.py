"""Abstract syntax tree for the extended XPath/XQuery language.

Nodes are small frozen dataclasses; the evaluator dispatches on type.
Every node records the source ``offset`` where it began so dynamic
errors can point back into the query text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expr = Union[
    "Literal", "VarRef", "ContextItem", "SequenceExpr", "RangeExpr",
    "OrExpr", "AndExpr", "ComparisonExpr", "ArithmeticExpr", "UnaryExpr",
    "UnionExpr", "IntersectExceptExpr", "PathExpr", "FilterExpr",
    "FunctionCall", "IfExpr", "FLWORExpr", "QuantifiedExpr",
    "ElementConstructor", "AttributeValue",
    "InsertExpr", "DeleteExpr", "ReplaceValueExpr", "RenameExpr",
    "AddMarkupExpr", "RemoveMarkupExpr",
]


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal."""

    value: str | int | float
    offset: int = 0


@dataclass(frozen=True)
class VarRef:
    """A variable reference ``$name``."""

    name: str
    offset: int = 0


@dataclass(frozen=True)
class ContextItem:
    """The context item ``.``."""

    offset: int = 0


@dataclass(frozen=True)
class SequenceExpr:
    """Comma operator: concatenation of item sequences."""

    items: tuple[Expr, ...]
    offset: int = 0


@dataclass(frozen=True)
class RangeExpr:
    """``$a to $b`` — an integer range."""

    lower: Expr
    upper: Expr
    offset: int = 0


@dataclass(frozen=True)
class OrExpr:
    operands: tuple[Expr, ...]
    offset: int = 0


@dataclass(frozen=True)
class AndExpr:
    operands: tuple[Expr, ...]
    offset: int = 0


@dataclass(frozen=True)
class ComparisonExpr:
    """A general (``=``), value (``eq``) or node (``is``) comparison."""

    op: str
    style: str  # "general" | "value" | "node"
    left: Expr
    right: Expr
    offset: int = 0


@dataclass(frozen=True)
class ArithmeticExpr:
    op: str  # "+", "-", "*", "div", "idiv", "mod"
    left: Expr
    right: Expr
    offset: int = 0


@dataclass(frozen=True)
class UnaryExpr:
    op: str  # "-" or "+"
    operand: Expr
    offset: int = 0


@dataclass(frozen=True)
class UnionExpr:
    operands: tuple[Expr, ...]
    offset: int = 0


@dataclass(frozen=True)
class IntersectExceptExpr:
    op: str  # "intersect" | "except"
    left: Expr
    right: Expr
    offset: int = 0


# ---------------------------------------------------------------------------
# paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NameTest:
    """A name node test (``w``); principal kind depends on the axis."""

    name: str


@dataclass(frozen=True)
class WildcardTest:
    """``*`` or the extended ``*('h1,h2')`` (Definition 2)."""

    hierarchies: tuple[str, ...] = ()


@dataclass(frozen=True)
class KindTest:
    """``text()``, ``node()``, ``leaf()``, ``comment()``, ``pi()``.

    ``hierarchies`` carries the extended hierarchy restriction of
    Definition 2 for ``text(...)`` and ``node(...)``.
    """

    kind: str
    hierarchies: tuple[str, ...] = ()
    target: str | None = None  # processing-instruction target

NodeTest = Union[NameTest, WildcardTest, KindTest]


@dataclass(frozen=True)
class Step:
    """One location step: axis, node test, predicates."""

    axis: str
    test: NodeTest
    predicates: tuple[Expr, ...] = ()
    offset: int = 0


@dataclass(frozen=True)
class ExprStep:
    """A non-axis path step (XPath 2.0): ``$w/string(.)``.

    The expression is evaluated once per input node with that node as
    the focus; per-node results are concatenated.
    """

    expression: "Expr"
    offset: int = 0


@dataclass(frozen=True)
class PathExpr:
    """A location path.

    ``anchor`` is ``"root"`` for ``/...``, ``"descendant"`` for
    ``//...``, or ``"relative"``; ``primary`` is the optional leading
    filter expression (``$x/child::a`` has primary ``$x``).
    """

    anchor: str
    steps: tuple[Step, ...]
    primary: Expr | None = None
    offset: int = 0


@dataclass(frozen=True)
class FilterExpr:
    """A primary expression with predicates: ``$seq[3]``."""

    primary: Expr
    predicates: tuple[Expr, ...]
    offset: int = 0


@dataclass(frozen=True)
class FunctionCall:
    name: str
    args: tuple[Expr, ...]
    offset: int = 0


# ---------------------------------------------------------------------------
# XQuery constructs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IfExpr:
    condition: Expr
    then: Expr
    otherwise: Expr
    offset: int = 0


@dataclass(frozen=True)
class ForClause:
    """``for $var at $pos in expr`` (one binding)."""

    variable: str
    sequence: Expr
    position_variable: str | None = None
    offset: int = 0


@dataclass(frozen=True)
class LetClause:
    variable: str
    expression: Expr
    offset: int = 0


@dataclass(frozen=True)
class WhereClause:
    condition: Expr
    offset: int = 0


@dataclass(frozen=True)
class OrderSpec:
    key: Expr
    descending: bool = False
    empty_least: bool = True


@dataclass(frozen=True)
class OrderByClause:
    specs: tuple[OrderSpec, ...]
    offset: int = 0

FLWORClause = Union[ForClause, LetClause, WhereClause, OrderByClause]


@dataclass(frozen=True)
class FLWORExpr:
    clauses: tuple[FLWORClause, ...]
    return_expr: Expr
    offset: int = 0


@dataclass(frozen=True)
class QuantifiedExpr:
    """``some/every $v in expr (, ...) satisfies expr``."""

    quantifier: str  # "some" | "every"
    bindings: tuple[tuple[str, Expr], ...]
    condition: Expr
    offset: int = 0


# ---------------------------------------------------------------------------
# updating expressions (DESIGN.md §9)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InsertExpr:
    """``insert node Source (as first|as last)? into|before|after Target``.

    ``location`` is one of ``"into"`` (an alias of ``"into-last"``),
    ``"into-first"``, ``"into-last"``, ``"before"``, ``"after"``.
    """

    source: Expr
    location: str
    target: Expr
    offset: int = 0


@dataclass(frozen=True)
class DeleteExpr:
    """``delete node Target`` — remove element(s) *and* their content."""

    target: Expr
    offset: int = 0


@dataclass(frozen=True)
class ReplaceValueExpr:
    """``replace value of node Target with Expr``."""

    target: Expr
    value: Expr
    offset: int = 0


@dataclass(frozen=True)
class RenameExpr:
    """``rename node Target as Expr``."""

    target: Expr
    name: Expr
    offset: int = 0


@dataclass(frozen=True)
class AddMarkupExpr:
    """``add markup NAME to "hierarchy" covering Target``.

    The multihierarchy-specific promotion: wrap the text span covered
    by the target node set in a new element of the named concurrent
    hierarchy.
    """

    name: str
    hierarchy: str
    target: Expr
    offset: int = 0


@dataclass(frozen=True)
class RemoveMarkupExpr:
    """``remove markup Target`` — unwrap element(s), keeping content.

    The demotion dual of :class:`AddMarkupExpr`: the element disappears
    from its hierarchy, its children are spliced into its parent, and
    the base text is untouched.
    """

    target: Expr
    offset: int = 0


#: Every updating AST node type (used by static updating-ness checks).
UPDATE_NODES = (InsertExpr, DeleteExpr, ReplaceValueExpr, RenameExpr,
                AddMarkupExpr, RemoveMarkupExpr)


def update_children(expr: "Expr") -> list:
    """The child expressions of one updating AST node.

    The single source of truth shared by :func:`walk` and the parser's
    nesting checks (``rewrite._map_children`` must stay separate — it
    reconstructs nodes field by field).
    """
    if isinstance(expr, InsertExpr):
        return [expr.source, expr.target]
    if isinstance(expr, ReplaceValueExpr):
        return [expr.target, expr.value]
    if isinstance(expr, RenameExpr):
        return [expr.target, expr.name]
    if isinstance(expr, (DeleteExpr, RemoveMarkupExpr, AddMarkupExpr)):
        return [expr.target]
    raise TypeError(f"{type(expr).__name__} is not an updating expression")


def contains_update(expr: "Expr") -> bool:
    """True when any sub-expression is an updating expression."""
    return any(isinstance(node, UPDATE_NODES) for node in walk(expr))


# ---------------------------------------------------------------------------
# direct constructors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttributeValue:
    """An attribute value template: literal and enclosed-expr parts."""

    parts: tuple[Union[str, Expr], ...]


@dataclass(frozen=True)
class ElementConstructor:
    """A direct element constructor ``<b attr="{...}">content</b>``.

    ``content`` items are literal strings, nested constructors, or
    enclosed expressions.
    """

    name: str
    attributes: tuple[tuple[str, AttributeValue], ...] = ()
    content: tuple[Union[str, Expr], ...] = ()
    offset: int = 0


def walk(expr: Expr):
    """Yield ``expr`` and all sub-expressions (preorder)."""
    yield expr
    children: list = []
    if isinstance(expr, SequenceExpr):
        children = list(expr.items)
    elif isinstance(expr, RangeExpr):
        children = [expr.lower, expr.upper]
    elif isinstance(expr, (OrExpr, AndExpr, UnionExpr)):
        children = list(expr.operands)
    elif isinstance(expr, (ComparisonExpr, ArithmeticExpr,
                           IntersectExceptExpr)):
        children = [expr.left, expr.right]
    elif isinstance(expr, UnaryExpr):
        children = [expr.operand]
    elif isinstance(expr, PathExpr):
        if expr.primary is not None:
            children.append(expr.primary)
        for step in expr.steps:
            if isinstance(step, ExprStep):
                children.append(step.expression)
            else:
                children.extend(step.predicates)
    elif isinstance(expr, FilterExpr):
        children = [expr.primary, *expr.predicates]
    elif isinstance(expr, FunctionCall):
        children = list(expr.args)
    elif isinstance(expr, IfExpr):
        children = [expr.condition, expr.then, expr.otherwise]
    elif isinstance(expr, FLWORExpr):
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                children.append(clause.sequence)
            elif isinstance(clause, LetClause):
                children.append(clause.expression)
            elif isinstance(clause, WhereClause):
                children.append(clause.condition)
            elif isinstance(clause, OrderByClause):
                children.extend(spec.key for spec in clause.specs)
        children.append(expr.return_expr)
    elif isinstance(expr, QuantifiedExpr):
        children.extend(binding[1] for binding in expr.bindings)
        children.append(expr.condition)
    elif isinstance(expr, ElementConstructor):
        for _name, value in expr.attributes:
            children.extend(p for p in value.parts if not isinstance(p, str))
        children.extend(c for c in expr.content if not isinstance(c, str))
    elif isinstance(expr, UPDATE_NODES):
        children = update_children(expr)
    for child in children:
        yield from walk(child)
