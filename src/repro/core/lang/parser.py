"""Recursive-descent parser for the extended XPath/XQuery language.

The parser follows the XQuery 1.0 precedence chain restricted to the
constructs the paper uses (DESIGN.md §2), with the paper's additions:
extended axes as first-class axis names and the extended node tests of
Definition 2.  Direct element constructors are parsed in character
mode; enclosed ``{...}`` expressions re-enter the token parser, so
constructors and expressions nest arbitrarily.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.core.goddag.axes import AXES
from repro.core.lang import ast
from repro.core.lang.lexer import (
    DECIMAL,
    EOF,
    INTEGER,
    NAME,
    STRING,
    SYMBOL,
    Lexer,
    Token,
)
from repro.markup.entities import PREDEFINED, decode_char_reference

#: Node-test names reserved by the language (never function calls).
KIND_TEST_NAMES = frozenset({
    "text", "node", "comment", "processing-instruction", "leaf",
})

_GENERAL_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}
_VALUE_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}


def parse_statement(text: str) -> ast.Expr:
    """Parse the full extended language, updating expressions included."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


def parse_query(text: str) -> ast.Expr:
    """Parse the full extended XQuery language (queries only).

    Updating expressions (``insert node`` …, DESIGN.md §9) are rejected:
    a query must be side-effect free.  Use :func:`parse_update` for
    update statements.
    """
    expr = parse_statement(text)
    for node in ast.walk(expr):
        if isinstance(node, ast.UPDATE_NODES):
            raise QuerySyntaxError(
                f"{type(node).__name__} is an updating expression and is "
                "not allowed in a query (use the update API)")
    return expr


def parse_update(text: str) -> ast.Expr:
    """Parse an update statement and check its updating-expression shape.

    The result must *be* updating — an update primitive, or a comma
    sequence / FLWOR / conditional whose tail positions are updating —
    and update primitives may appear only in those statement positions
    (never inside a predicate, function argument, or clause).
    """
    expr = parse_statement(text)
    if not ast.contains_update(expr):
        raise QuerySyntaxError(
            "not an update statement: no updating expression found "
            "(expected insert/delete/replace/rename/add markup/"
            "remove markup)")
    _check_update_positions(expr)
    return expr


def _check_update_positions(expr: ast.Expr) -> None:
    """Enforce the statement-position rule for update primitives.

    Updating expressions may appear only at the top level, as operands
    of a top-level comma sequence, in the branches of a conditional, or
    in the ``return`` of a FLWOR — mirroring the XQuery Update Facility
    split between updating and simple expressions.  Called only on
    subtrees in statement position; everything else goes through
    :func:`_require_simple`.
    """
    if isinstance(expr, ast.UPDATE_NODES):
        for child in ast.update_children(expr):
            _require_simple(child)
        return
    if not ast.contains_update(expr):
        return
    if isinstance(expr, ast.SequenceExpr):
        for item in expr.items:
            _check_update_positions(item)
        return
    if isinstance(expr, ast.IfExpr):
        _require_simple(expr.condition)
        _check_update_positions(expr.then)
        _check_update_positions(expr.otherwise)
        return
    if isinstance(expr, ast.FLWORExpr):
        for clause in expr.clauses:
            for sub in _clause_expressions(clause):
                _require_simple(sub)
        _check_update_positions(expr.return_expr)
        return
    # Any other construct containing an update primitive is malformed.
    raise QuerySyntaxError(
        f"updating expressions may not appear inside a "
        f"{type(expr).__name__}")


def _clause_expressions(clause) -> list:
    if isinstance(clause, ast.ForClause):
        return [clause.sequence]
    if isinstance(clause, ast.LetClause):
        return [clause.expression]
    if isinstance(clause, ast.WhereClause):
        return [clause.condition]
    if isinstance(clause, ast.OrderByClause):
        return [spec.key for spec in clause.specs]
    return []  # pragma: no cover - parser guarantees clause types


def _require_simple(expr: ast.Expr) -> None:
    if ast.contains_update(expr):
        raise QuerySyntaxError(
            "an updating expression may not be nested inside a target, "
            "source, value, or clause expression")


def parse_xpath(text: str) -> ast.Expr:
    """Parse a pure (extended) XPath expression.

    FLWOR, quantifiers, and constructors are rejected so callers get
    the path language of the paper's §3 only.
    """
    expr = parse_query(text)
    for node in ast.walk(expr):
        if isinstance(node, (ast.FLWORExpr, ast.QuantifiedExpr,
                             ast.ElementConstructor)):
            raise QuerySyntaxError(
                f"{type(node).__name__} is not allowed in a pure XPath "
                f"expression")
    return expr


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.lexer = Lexer(text)

    # -- token helpers -----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self.lexer.peek(ahead)

    def _next(self) -> Token:
        return self.lexer.next()

    def _accept_symbol(self, value: str) -> Token | None:
        if self._peek().is_symbol(value):
            return self._next()
        return None

    def _accept_name(self, value: str) -> Token | None:
        if self._peek().is_name(value):
            return self._next()
        return None

    def _expect_symbol(self, value: str) -> Token:
        token = self._peek()
        if not token.is_symbol(value):
            raise self._error(f"expected {value!r}", token)
        return self._next()

    def _expect_name_token(self, what: str = "a name") -> Token:
        token = self._peek()
        if token.kind != NAME:
            raise self._error(f"expected {what}", token)
        return self._next()

    def _error(self, message: str, token: Token | None = None
               ) -> QuerySyntaxError:
        token = token or self._peek()
        shown = token.value or "end of query"
        return self.lexer.error(f"{message}, found {shown!r}", token.start)

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind != EOF:
            raise self._error("unexpected trailing content", token)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        first = self.parse_expr_single()
        if not self._peek().is_symbol(","):
            return first
        items = [first]
        while self._accept_symbol(","):
            items.append(self.parse_expr_single())
        return ast.SequenceExpr(tuple(items), offset=items[0].offset)

    def parse_expr_single(self) -> ast.Expr:
        token = self._peek()
        if token.kind == NAME:
            follower = self._peek(1)
            if token.value in ("for", "let") and follower.is_symbol("$"):
                return self._parse_flwor()
            if (token.value in ("some", "every")
                    and follower.is_symbol("$")):
                return self._parse_quantified()
            if token.value == "if" and follower.is_symbol("("):
                return self._parse_if()
            # Updating expressions: the two-keyword heads can never
            # begin an ordinary expression (two adjacent names are not
            # valid XPath), so the lookahead is unambiguous.
            if token.value == "insert" and follower.is_name("node"):
                return self._parse_insert()
            if token.value == "delete" and follower.is_name("node"):
                return self._parse_delete()
            if token.value == "replace" and follower.is_name("value"):
                return self._parse_replace_value()
            if token.value == "rename" and follower.is_name("node"):
                return self._parse_rename()
            if token.value == "add" and follower.is_name("markup"):
                return self._parse_add_markup()
            if token.value == "remove" and follower.is_name("markup"):
                return self._parse_remove_markup()
        return self._parse_or()

    # -- updating expressions -------------------------------------------------

    def _parse_insert(self) -> ast.InsertExpr:
        token = self._next()  # 'insert'
        self._next()          # 'node'
        source = self.parse_expr_single()
        if self._accept_name("as"):
            if self._accept_name("first"):
                location = "into-first"
            elif self._accept_name("last"):
                location = "into-last"
            else:
                raise self._error("expected 'first' or 'last' after 'as'")
            if not self._accept_name("into"):
                raise self._error("expected 'into' after 'as first/last'")
        elif self._accept_name("into"):
            location = "into"
        elif self._accept_name("before"):
            location = "before"
        elif self._accept_name("after"):
            location = "after"
        else:
            raise self._error(
                "expected 'into', 'before' or 'after' in insert expression")
        target = self.parse_expr_single()
        return ast.InsertExpr(source, location, target, offset=token.start)

    def _parse_delete(self) -> ast.DeleteExpr:
        token = self._next()  # 'delete'
        self._next()          # 'node'
        return ast.DeleteExpr(self.parse_expr_single(), offset=token.start)

    def _parse_replace_value(self) -> ast.ReplaceValueExpr:
        token = self._next()  # 'replace'
        self._next()          # 'value'
        if not self._accept_name("of"):
            raise self._error("expected 'of' after 'replace value'")
        if not self._accept_name("node"):
            raise self._error("expected 'node' after 'replace value of'")
        target = self.parse_expr_single()
        if not self._accept_name("with"):
            raise self._error("expected 'with' in replace expression")
        return ast.ReplaceValueExpr(target, self.parse_expr_single(),
                                    offset=token.start)

    def _parse_rename(self) -> ast.RenameExpr:
        token = self._next()  # 'rename'
        self._next()          # 'node'
        target = self.parse_expr_single()
        if not self._accept_name("as"):
            raise self._error("expected 'as' in rename expression")
        return ast.RenameExpr(target, self.parse_expr_single(),
                              offset=token.start)

    def _parse_add_markup(self) -> ast.AddMarkupExpr:
        token = self._next()  # 'add'
        self._next()          # 'markup'
        name = self._expect_name_token("an element name").value
        if not self._accept_name("to"):
            raise self._error("expected 'to' in add markup expression")
        hierarchy_token = self._peek()
        if hierarchy_token.kind != STRING:
            raise self._error("expected a hierarchy name string after 'to'",
                              hierarchy_token)
        self._next()
        if not self._accept_name("covering"):
            raise self._error("expected 'covering' in add markup expression")
        return ast.AddMarkupExpr(name, hierarchy_token.value,
                                 self.parse_expr_single(),
                                 offset=token.start)

    def _parse_remove_markup(self) -> ast.RemoveMarkupExpr:
        token = self._next()  # 'remove'
        self._next()          # 'markup'
        return ast.RemoveMarkupExpr(self.parse_expr_single(),
                                    offset=token.start)

    # -- FLWOR ----------------------------------------------------------------

    def _parse_flwor(self) -> ast.FLWORExpr:
        offset = self._peek().start
        clauses: list[ast.FLWORClause] = []
        while True:
            token = self._peek()
            if token.is_name("for") and self._peek(1).is_symbol("$"):
                clauses.extend(self._parse_for_clause())
            elif token.is_name("let") and self._peek(1).is_symbol("$"):
                clauses.extend(self._parse_let_clause())
            else:
                break
        if self._peek().is_name("where"):
            where = self._next()
            clauses.append(ast.WhereClause(self.parse_expr_single(),
                                           offset=where.start))
        if self._peek().is_name("stable"):
            self._next()
        if self._peek().is_name("order"):
            clauses.append(self._parse_order_by())
        if not self._accept_name("return"):
            raise self._error("expected 'return' in FLWOR expression")
        return ast.FLWORExpr(tuple(clauses), self.parse_expr_single(),
                             offset=offset)

    def _parse_for_clause(self) -> list[ast.ForClause]:
        self._expect_name_token()  # 'for'
        out: list[ast.ForClause] = []
        while True:
            offset = self._peek().start
            variable = self._parse_variable_name()
            position_variable = None
            if self._accept_name("at"):
                position_variable = self._parse_variable_name()
            if not self._accept_name("in"):
                raise self._error("expected 'in' in for clause")
            sequence = self.parse_expr_single()
            out.append(ast.ForClause(variable, sequence, position_variable,
                                     offset=offset))
            if not (self._peek().is_symbol(",")
                    and self._peek(1).is_symbol("$")):
                return out
            self._next()  # the comma

    def _parse_let_clause(self) -> list[ast.LetClause]:
        self._expect_name_token()  # 'let'
        out: list[ast.LetClause] = []
        while True:
            offset = self._peek().start
            variable = self._parse_variable_name()
            self._expect_symbol(":=")
            out.append(ast.LetClause(variable, self.parse_expr_single(),
                                     offset=offset))
            if not (self._peek().is_symbol(",")
                    and self._peek(1).is_symbol("$")):
                return out
            self._next()

    def _parse_order_by(self) -> ast.OrderByClause:
        offset = self._next().start  # 'order'
        if not self._accept_name("by"):
            raise self._error("expected 'by' after 'order'")
        specs: list[ast.OrderSpec] = []
        while True:
            key = self.parse_expr_single()
            descending = False
            if self._accept_name("ascending"):
                pass
            elif self._accept_name("descending"):
                descending = True
            empty_least = True
            if self._accept_name("empty"):
                if self._accept_name("greatest"):
                    empty_least = False
                elif not self._accept_name("least"):
                    raise self._error(
                        "expected 'greatest' or 'least' after 'empty'")
            specs.append(ast.OrderSpec(key, descending, empty_least))
            if not self._accept_symbol(","):
                return ast.OrderByClause(tuple(specs), offset=offset)

    def _parse_quantified(self) -> ast.QuantifiedExpr:
        token = self._next()  # 'some' | 'every'
        bindings: list[tuple[str, ast.Expr]] = []
        while True:
            variable = self._parse_variable_name()
            if not self._accept_name("in"):
                raise self._error("expected 'in' in quantified expression")
            bindings.append((variable, self.parse_expr_single()))
            if not self._accept_symbol(","):
                break
        if not self._accept_name("satisfies"):
            raise self._error("expected 'satisfies'")
        return ast.QuantifiedExpr(token.value, tuple(bindings),
                                  self.parse_expr_single(),
                                  offset=token.start)

    def _parse_if(self) -> ast.IfExpr:
        token = self._next()  # 'if'
        self._expect_symbol("(")
        condition = self.parse_expr()
        self._expect_symbol(")")
        if not self._accept_name("then"):
            raise self._error("expected 'then'")
        then = self.parse_expr_single()
        if not self._accept_name("else"):
            raise self._error("expected 'else'")
        return ast.IfExpr(condition, then, self.parse_expr_single(),
                          offset=token.start)

    def _parse_variable_name(self) -> str:
        self._expect_symbol("$")
        return self._expect_name_token("a variable name").value

    # -- operator chain ---------------------------------------------------------

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        if not self._peek().is_name("or"):
            return left
        operands = [left]
        while self._accept_name("or"):
            operands.append(self._parse_and())
        return ast.OrExpr(tuple(operands), offset=left.offset)

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        if not self._peek().is_name("and"):
            return left
        operands = [left]
        while self._accept_name("and"):
            operands.append(self._parse_comparison())
        return ast.AndExpr(tuple(operands), offset=left.offset)

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        token = self._peek()
        if token.kind == SYMBOL and token.value in _GENERAL_COMPARISONS:
            self._next()
            return ast.ComparisonExpr(token.value, "general", left,
                                      self._parse_range(),
                                      offset=left.offset)
        if token.kind == SYMBOL and token.value in ("<<", ">>"):
            self._next()
            return ast.ComparisonExpr(token.value, "node", left,
                                      self._parse_range(),
                                      offset=left.offset)
        if token.kind == NAME and token.value in _VALUE_COMPARISONS:
            self._next()
            return ast.ComparisonExpr(token.value, "value", left,
                                      self._parse_range(),
                                      offset=left.offset)
        if token.is_name("is"):
            self._next()
            return ast.ComparisonExpr("is", "node", left,
                                      self._parse_range(),
                                      offset=left.offset)
        return left

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self._accept_name("to"):
            return ast.RangeExpr(left, self._parse_additive(),
                                 offset=left.offset)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == SYMBOL and token.value in ("+", "-"):
                self._next()
                left = ast.ArithmeticExpr(token.value, left,
                                          self._parse_multiplicative(),
                                          offset=left.offset)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_union()
        while True:
            token = self._peek()
            if token.is_symbol("*") or token.value in ("div", "idiv",
                                                       "mod"):
                if token.kind == NAME or token.is_symbol("*"):
                    op = "*" if token.is_symbol("*") else token.value
                    self._next()
                    left = ast.ArithmeticExpr(op, left, self._parse_union(),
                                              offset=left.offset)
                    continue
            return left

    def _parse_union(self) -> ast.Expr:
        left = self._parse_intersect_except()
        if not (self._peek().is_symbol("|")
                or self._peek().is_name("union")):
            return left
        operands = [left]
        while (self._accept_symbol("|")
               or self._accept_name("union")):
            operands.append(self._parse_intersect_except())
        return ast.UnionExpr(tuple(operands), offset=left.offset)

    def _parse_intersect_except(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.is_name("intersect") or token.is_name("except"):
                self._next()
                left = ast.IntersectExceptExpr(token.value, left,
                                               self._parse_unary(),
                                               offset=left.offset)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == SYMBOL and token.value in ("-", "+"):
            self._next()
            return ast.UnaryExpr(token.value, self._parse_unary(),
                                 offset=token.start)
        return self._parse_path()

    # -- paths --------------------------------------------------------------------

    def _parse_path(self) -> ast.Expr:
        token = self._peek()
        if token.is_symbol("/"):
            self._next()
            if self._at_step_start():
                steps = self._parse_relative_steps()
                return ast.PathExpr("root", tuple(steps),
                                    offset=token.start)
            return ast.PathExpr("root", (), offset=token.start)
        if token.is_symbol("//"):
            self._next()
            steps = self._parse_relative_steps()
            return ast.PathExpr("descendant", tuple(steps),
                                offset=token.start)
        if not self._at_step_start():
            raise self._error("expected an expression")
        return self._parse_relative_path()

    def _parse_relative_path(self) -> ast.Expr:
        offset = self._peek().start
        first = self._parse_step_expr()
        if not (self._peek().is_symbol("/") or self._peek().is_symbol("//")):
            if isinstance(first, ast.Step):
                return ast.PathExpr("relative", (first,), offset=offset)
            return first
        steps: list = []
        primary: ast.Expr | None
        if isinstance(first, ast.Step):
            primary = None
            steps.append(first)
        else:
            primary = first
        while True:
            if self._accept_symbol("//"):
                steps.append(ast.Step("descendant-or-self",
                                      ast.KindTest("node")))
            elif not self._accept_symbol("/"):
                break
            steps.append(self._parse_path_step())
        return ast.PathExpr("relative", tuple(steps), primary=primary,
                            offset=offset)

    def _parse_relative_steps(self) -> list:
        steps = [self._parse_path_step()]
        while True:
            if self._accept_symbol("//"):
                steps.append(ast.Step("descendant-or-self",
                                      ast.KindTest("node")))
                steps.append(self._parse_path_step())
            elif self._accept_symbol("/"):
                steps.append(self._parse_path_step())
            else:
                return steps

    def _parse_path_step(self):
        """An axis step, or (XPath 2.0) any expression used as a step."""
        result = self._parse_step_expr()
        if isinstance(result, ast.Step):
            return result
        return ast.ExprStep(result, offset=result.offset)

    def _at_step_start(self) -> bool:
        token = self._peek()
        if token.kind in (NAME, STRING, INTEGER, DECIMAL):
            return True
        if token.kind == SYMBOL:
            return token.value in ("(", ".", "..", "@", "$", "*", "<")
        return False

    def _parse_step_expr(self) -> ast.Expr | ast.Step:
        """Either an axis step or a filter (primary) expression."""
        token = self._peek()
        if token.kind == SYMBOL and token.value in ("@", ".."):
            return self._parse_axis_step()
        if token.is_symbol("*"):
            return self._parse_axis_step()
        if token.kind == NAME:
            follower = self._peek(1)
            if follower.is_symbol("::"):
                return self._parse_axis_step()
            if follower.is_symbol("(") and token.value in KIND_TEST_NAMES:
                return self._parse_axis_step()
            if not follower.is_symbol("("):
                return self._parse_axis_step()
        return self._parse_filter()

    def _parse_axis_step(self) -> ast.Step:
        token = self._peek()
        offset = token.start
        if token.is_symbol(".."):
            self._next()
            step = ast.Step("parent", ast.KindTest("node"), offset=offset)
            return self._with_predicates(step)
        axis = "child"
        if token.is_symbol("@"):
            self._next()
            axis = "attribute"
        elif token.kind == NAME and self._peek(1).is_symbol("::"):
            axis = token.value
            if axis not in AXES:
                raise self._error(f"unknown axis '{axis}'", token)
            self._next()
            self._next()
        test = self._parse_node_test()
        return self._with_predicates(ast.Step(axis, test, offset=offset))

    def _with_predicates(self, step: ast.Step) -> ast.Step:
        predicates: list[ast.Expr] = []
        while self._accept_symbol("["):
            predicates.append(self.parse_expr())
            self._expect_symbol("]")
        if not predicates:
            return step
        return ast.Step(step.axis, step.test, tuple(predicates),
                        offset=step.offset)

    def _parse_node_test(self) -> ast.NodeTest:
        token = self._peek()
        if token.is_symbol("*"):
            self._next()
            # Extended Definition 2 form: *('hierarchy, names').
            if (self._peek().is_symbol("(")
                    and self._peek(1).kind == STRING):
                self._next()
                hierarchies = self._parse_hierarchy_list()
                self._expect_symbol(")")
                return ast.WildcardTest(hierarchies)
            return ast.WildcardTest()
        if token.kind != NAME:
            raise self._error("expected a node test", token)
        if (token.value in KIND_TEST_NAMES
                and self._peek(1).is_symbol("(")):
            return self._parse_kind_test()
        self._next()
        return ast.NameTest(token.value)

    def _parse_kind_test(self) -> ast.KindTest:
        kind = self._next().value
        self._expect_symbol("(")
        hierarchies: tuple[str, ...] = ()
        target: str | None = None
        token = self._peek()
        if kind in ("text", "node") and token.kind == STRING:
            hierarchies = self._parse_hierarchy_list()
        elif kind == "processing-instruction" and token.kind in (NAME,
                                                                 STRING):
            target = self._next().value
        elif kind in ("comment", "leaf") and token.kind == STRING:
            raise self._error(
                f"{kind}() does not take a hierarchy argument", token)
        self._expect_symbol(")")
        return ast.KindTest(kind, hierarchies, target)

    def _parse_hierarchy_list(self) -> tuple[str, ...]:
        """Definition 2: a comma-separated list of hierarchy names."""
        literal = self._next().value
        names = tuple(part.strip() for part in literal.split(",")
                      if part.strip())
        if not names:
            raise self._error("empty hierarchy list in node test")
        return names

    # -- filter / primary -----------------------------------------------------------

    def _parse_filter(self) -> ast.Expr:
        primary = self._parse_primary()
        predicates: list[ast.Expr] = []
        while self._accept_symbol("["):
            predicates.append(self.parse_expr())
            self._expect_symbol("]")
        if predicates:
            return ast.FilterExpr(primary, tuple(predicates),
                                  offset=primary.offset)
        return primary

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == STRING:
            self._next()
            return ast.Literal(token.value, offset=token.start)
        if token.kind == INTEGER:
            self._next()
            return ast.Literal(int(token.value), offset=token.start)
        if token.kind == DECIMAL:
            self._next()
            return ast.Literal(float(token.value), offset=token.start)
        if token.is_symbol("$"):
            self._next()
            name = self._expect_name_token("a variable name").value
            return ast.VarRef(name, offset=token.start)
        if token.is_symbol("("):
            self._next()
            if self._accept_symbol(")"):
                return ast.SequenceExpr((), offset=token.start)
            expr = self.parse_expr()
            self._expect_symbol(")")
            return expr
        if token.is_symbol("."):
            self._next()
            return ast.ContextItem(offset=token.start)
        if token.is_symbol("<"):
            return self._parse_direct_constructor(token)
        if token.kind == NAME and self._peek(1).is_symbol("("):
            return self._parse_function_call()
        raise self._error("expected an expression", token)

    def _parse_function_call(self) -> ast.FunctionCall:
        name_token = self._next()
        self._expect_symbol("(")
        args: list[ast.Expr] = []
        if not self._peek().is_symbol(")"):
            args.append(self.parse_expr_single())
            while self._accept_symbol(","):
                args.append(self.parse_expr_single())
        self._expect_symbol(")")
        name = name_token.value
        if name.startswith("fn:"):
            name = name[3:]
        return ast.FunctionCall(name, tuple(args), offset=name_token.start)

    # -- direct constructors (character mode) ------------------------------------

    def _parse_direct_constructor(self, lt_token: Token
                                  ) -> ast.ElementConstructor:
        after = self.lexer.char_at(lt_token.start + 1)
        if not (after.isalpha() or after in "_" or ord(after or " ") > 0x7F):
            raise self._error("'<' here must begin a direct element "
                              "constructor", lt_token)
        constructor, pos = self._scan_constructor(lt_token.start)
        self.lexer.sync_to(pos)
        return constructor

    def _scan_constructor(self, pos: int
                          ) -> tuple[ast.ElementConstructor, int]:
        text = self.text
        offset = pos
        pos += 1  # consume '<'
        name, pos = self._scan_xml_name(pos)
        attributes: list[tuple[str, ast.AttributeValue]] = []
        while True:
            pos = self._skip_xml_space(pos)
            if text.startswith("/>", pos):
                return (ast.ElementConstructor(name, tuple(attributes), (),
                                               offset=offset), pos + 2)
            if text.startswith(">", pos):
                pos += 1
                break
            attr_name, pos = self._scan_xml_name(pos)
            pos = self._skip_xml_space(pos)
            if not text.startswith("=", pos):
                raise self.lexer.error("expected '=' in constructor "
                                       "attribute", pos)
            pos = self._skip_xml_space(pos + 1)
            value, pos = self._scan_attribute_value(pos)
            attributes.append((attr_name, value))
        content, pos = self._scan_constructor_content(name, pos)
        return (ast.ElementConstructor(name, tuple(attributes),
                                       tuple(content), offset=offset), pos)

    def _scan_constructor_content(self, name: str, pos: int
                                  ) -> tuple[list, int]:
        text = self.text
        content: list = []
        buffer: list[str] = []

        def flush(strip_boundary: bool = True) -> None:
            data = "".join(buffer)
            buffer.clear()
            if not data:
                return
            if strip_boundary and not data.strip():
                return  # boundary whitespace is stripped (XQuery default)
            content.append(data)

        while True:
            if pos >= len(text):
                raise self.lexer.error(
                    f"unterminated constructor <{name}>", pos)
            char = text[pos]
            if char == "<":
                if text.startswith("</", pos):
                    flush()
                    pos += 2
                    end_name, pos = self._scan_xml_name(pos)
                    if end_name != name:
                        raise self.lexer.error(
                            f"constructor end tag </{end_name}> does not "
                            f"match <{name}>", pos)
                    pos = self._skip_xml_space(pos)
                    if not text.startswith(">", pos):
                        raise self.lexer.error(
                            "expected '>' closing constructor end tag", pos)
                    return content, pos + 1
                if text.startswith("<!--", pos):
                    end = text.find("-->", pos)
                    if end == -1:
                        raise self.lexer.error(
                            "unterminated comment in constructor", pos)
                    pos = end + 3
                elif text.startswith("<![CDATA[", pos):
                    end = text.find("]]>", pos)
                    if end == -1:
                        raise self.lexer.error(
                            "unterminated CDATA in constructor", pos)
                    buffer.append(text[pos + 9:end])
                    pos = end + 3
                else:
                    flush()
                    nested, pos = self._scan_constructor(pos)
                    content.append(nested)
            elif char == "{":
                if text.startswith("{{", pos):
                    buffer.append("{")
                    pos += 2
                    continue
                flush()
                expr, pos = self._scan_enclosed_expr(pos)
                content.append(expr)
            elif char == "}":
                if text.startswith("}}", pos):
                    buffer.append("}")
                    pos += 2
                    continue
                raise self.lexer.error(
                    "'}' must be doubled inside constructor content", pos)
            elif char == "&":
                piece, pos = self._scan_xml_reference(pos)
                buffer.append(piece)
            else:
                buffer.append(char)
                pos += 1

    def _scan_enclosed_expr(self, pos: int) -> tuple[ast.Expr, int]:
        """Parse ``{ Expr }`` by re-entering the token parser."""
        self.lexer.sync_to(pos + 1)
        expr = self.parse_expr()
        closer = self._peek()
        if not closer.is_symbol("}"):
            raise self._error("expected '}' closing enclosed expression",
                              closer)
        self._next()
        return expr, closer.end

    def _scan_attribute_value(self, pos: int
                              ) -> tuple[ast.AttributeValue, int]:
        text = self.text
        if pos >= len(text) or text[pos] not in "\"'":
            raise self.lexer.error(
                "constructor attribute value must be quoted", pos)
        quote = text[pos]
        pos += 1
        parts: list = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                parts.append("".join(buffer))
                buffer.clear()

        while True:
            if pos >= len(text):
                raise self.lexer.error("unterminated attribute value", pos)
            char = text[pos]
            if char == quote:
                if text.startswith(quote * 2, pos):
                    buffer.append(quote)
                    pos += 2
                    continue
                flush()
                return ast.AttributeValue(tuple(parts)), pos + 1
            if char == "{":
                if text.startswith("{{", pos):
                    buffer.append("{")
                    pos += 2
                    continue
                flush()
                expr, pos = self._scan_enclosed_expr(pos)
                parts.append(expr)
            elif char == "}":
                if text.startswith("}}", pos):
                    buffer.append("}")
                    pos += 2
                    continue
                raise self.lexer.error(
                    "'}' must be doubled inside attribute values", pos)
            elif char == "&":
                piece, pos = self._scan_xml_reference(pos)
                buffer.append(piece)
            elif char == "<":
                raise self.lexer.error(
                    "'<' is not allowed in attribute values", pos)
            else:
                buffer.append(char)
                pos += 1

    def _scan_xml_reference(self, pos: int) -> tuple[str, int]:
        semi = self.text.find(";", pos)
        if semi == -1:
            raise self.lexer.error("unterminated entity reference", pos)
        body = self.text[pos + 1:semi]
        if body.startswith("#"):
            line, column = self.lexer.location(pos)
            return decode_char_reference(body[1:], line, column), semi + 1
        if body in PREDEFINED:
            return PREDEFINED[body], semi + 1
        raise self.lexer.error(f"unknown entity '&{body};' in constructor",
                               pos)

    def _scan_xml_name(self, pos: int) -> tuple[str, int]:
        text = self.text
        start = pos
        if pos >= len(text) or not (text[pos].isalpha() or text[pos] in "_"
                                    or ord(text[pos]) > 0x7F):
            raise self.lexer.error("expected an XML name", pos)
        pos += 1
        while pos < len(text) and (text[pos].isalnum()
                                   or text[pos] in "_-.:"
                                   or ord(text[pos]) > 0x7F):
            pos += 1
        return text[start:pos], pos

    def _skip_xml_space(self, pos: int) -> int:
        text = self.text
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        return pos
