"""The paper's primary contribution: KyGODDAG + the extended query language.

Subpackages:

* :mod:`repro.core.goddag` — the KyGODDAG data structure (paper §3):
  shared root, per-hierarchy DOM components, leaf partition, the
  standard and extended axes, stable node order, temporary hierarchies.
* :mod:`repro.core.lang` — lexer/AST/parser for the combined extended
  XPath + XQuery-subset language (paper §3–§4).
* :mod:`repro.core.runtime` — the evaluator, function library
  (including ``analyze-string``, Definition 4), and result
  serialization.
"""
