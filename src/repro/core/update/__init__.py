"""Transactional multihierarchy updates (DESIGN.md §9).

The update engine in three stages:

1. :mod:`~repro.core.update.compile` — XQuery-Update-flavored
   statements (``insert node``, ``delete node``, ``replace value of``,
   ``rename``, plus the hierarchy-aware ``add markup`` /
   ``remove markup``) compile through the shared query pipeline into
   closures that *evaluate* targets against the pre-state and emit
   primitives;
2. :mod:`~repro.core.update.pul` — the pending update list: snapshot
   semantics, deterministic application order, conflict detection;
3. :mod:`~repro.core.update.apply` — atomic application: in-place DOM
   surgery, disjoint base-text splices propagated through every
   aligned hierarchy, and incremental KyGODDAG patching (partition
   boundary splicing, span-index component surgery, in-place renames)
   — never a from-scratch rebuild.

:mod:`~repro.core.update.oracle` hosts the naive re-parse/rebuild
reference used by the differential fuzzer and the throughput
benchmarks.
"""

from repro.core.update.apply import UpdateApplyStats, apply_pending
from repro.core.update.compile import CompiledUpdate, compile_update
from repro.core.update.oracle import RebuildOracle
from repro.core.update.pul import (
    AddMarkupPrim,
    DeletePrim,
    InsertPrim,
    PendingUpdateList,
    RemoveMarkupPrim,
    RenamePrim,
    ReplaceValuePrim,
    UpdatePrimitive,
)

__all__ = [
    "AddMarkupPrim",
    "CompiledUpdate",
    "DeletePrim",
    "InsertPrim",
    "PendingUpdateList",
    "RebuildOracle",
    "RemoveMarkupPrim",
    "RenamePrim",
    "ReplaceValuePrim",
    "UpdateApplyStats",
    "UpdatePrimitive",
    "apply_pending",
    "compile_update",
]
