"""Pending update lists (DESIGN.md §9).

An update statement never mutates anything while it evaluates: target
and source expressions run against the *pre-state* snapshot and emit
:class:`UpdatePrimitive` records.  The collected records form a
:class:`PendingUpdateList`, which validates the XQuery-Update-style
conflict rules before anything is applied:

* at most one ``rename``, one ``replace value of``, and one
  ``remove markup`` per node;
* duplicate and nested ``delete`` targets collapse to the outermost
  one (deleting a subtree deletes its descendants);
* no structural primitive may target a node inside a deleted or
  replaced subtree of the same hierarchy;
* the base-text edits implied by ``insert``/``delete``/``replace``
  must be pairwise disjoint: removal/replacement ranges compare
  half-open (adjacent deletes are fine), while zero-width insertion
  points compare closed (two inserts at one point, or an insert on a
  removed range's boundary, conflict).

Application order is fixed and documented: renames, then markup
removal, then markup addition, then value replacement, then deletes,
then inserts — all against pre-state coordinates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import UpdateConflictError, UpdateError
from repro.core.goddag.nodes import GElement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.markup import dom

#: Accepted element names for ``rename`` / ``add markup`` / inserted
#: content (the subset of XML names the rest of the stack emits).
_XML_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_.:-]*$")


def require_xml_name(name: str, what: str) -> str:
    """Validate an element name produced by an update expression."""
    if not _XML_NAME.match(name or ""):
        raise UpdateError(f"{what} {name!r} is not a valid element name")
    return name


@dataclass
class UpdatePrimitive:
    """Base class of all pending-update records."""

    kind = "abstract"


@dataclass
class RenamePrim(UpdatePrimitive):
    """Rename one element (in place, structure untouched)."""

    node: GElement
    name: str
    kind = "rename"


@dataclass
class ReplaceValuePrim(UpdatePrimitive):
    """Replace one element's entire content with a text value."""

    node: GElement
    value: str
    kind = "replace-value"


@dataclass
class DeletePrim(UpdatePrimitive):
    """Delete one element *and* the base text it covers."""

    node: GElement
    kind = "delete"


@dataclass
class InsertPrim(UpdatePrimitive):
    """Insert constructed content relative to one target element.

    ``fragment`` holds detached DOM nodes (already deep-copied, so one
    constructed element can feed several inserts); ``text`` is the
    fragment's concatenated character data, spliced into the base text
    at the location implied by ``location``.
    """

    target: GElement
    location: str  # "into-first" | "into-last" | "before" | "after"
    fragment: list = field(default_factory=list)  # list[dom.Node]
    text: str = ""
    kind = "insert"


@dataclass
class AddMarkupPrim(UpdatePrimitive):
    """Promote the span ``[start, end)`` to an element of a hierarchy."""

    hierarchy: str
    name: str
    start: int
    end: int
    kind = "add-markup"


@dataclass
class RemoveMarkupPrim(UpdatePrimitive):
    """Demote one element: unwrap it, keeping its content in place."""

    node: GElement
    kind = "remove-markup"


class PendingUpdateList:
    """The validated, ordered collection of update primitives."""

    def __init__(self, primitives: list[UpdatePrimitive]) -> None:
        for primitive in primitives:
            if not isinstance(primitive, UpdatePrimitive):
                raise UpdateError(
                    "an update statement may only produce update "
                    f"primitives; got {type(primitive).__name__}")
        self.primitives = self._resolve_conflicts(list(primitives))

    def __len__(self) -> int:
        return len(self.primitives)

    def __iter__(self):
        return iter(self.primitives)

    def of_kind(self, kind: str) -> list[UpdatePrimitive]:
        """All primitives of one kind, in statement order."""
        return [p for p in self.primitives if p.kind == kind]

    def counts(self) -> dict[str, int]:
        """Primitive counts per kind (for reporting)."""
        out: dict[str, int] = {}
        for primitive in self.primitives:
            out[primitive.kind] = out.get(primitive.kind, 0) + 1
        return out

    # -- conflict rules ----------------------------------------------------

    def _resolve_conflicts(self, primitives: list[UpdatePrimitive]
                           ) -> list[UpdatePrimitive]:
        self._check_duplicates(primitives)
        primitives = self._prune_deletes(primitives)
        self._check_destroyed_targets(primitives)
        self._check_same_node_pairs(primitives)
        self._check_add_markup_overlap(primitives)
        return primitives

    @staticmethod
    def _check_duplicates(primitives: list[UpdatePrimitive]) -> None:
        seen: dict[tuple[str, int], UpdatePrimitive] = {}
        for primitive in primitives:
            node = getattr(primitive, "node", None)
            if node is None or primitive.kind == "delete":
                continue
            key = (primitive.kind, id(node))
            if key in seen:
                raise UpdateConflictError(
                    f"duplicate {primitive.kind} on one node "
                    f"(<{node.name}> [{node.start},{node.end}) of "
                    f"hierarchy '{node.hierarchy}')")
            seen[key] = primitive

    @staticmethod
    def _prune_deletes(primitives: list[UpdatePrimitive]
                       ) -> list[UpdatePrimitive]:
        """Collapse duplicate deletes and deletes nested inside another
        delete of the same hierarchy (the outermost delete wins)."""
        targets = [p.node for p in primitives if p.kind == "delete"]
        kept_ids: set[int] = set()
        for node in targets:
            if id(node) in kept_ids:
                continue
            if any(other is not node and other.is_ancestor_of(node)
                   for other in targets):
                continue
            kept_ids.add(id(node))
        out: list[UpdatePrimitive] = []
        emitted: set[int] = set()
        for primitive in primitives:
            if primitive.kind != "delete":
                out.append(primitive)
                continue
            node_id = id(primitive.node)
            if node_id in kept_ids and node_id not in emitted:
                emitted.add(node_id)
                out.append(primitive)
        return out

    @staticmethod
    def _check_destroyed_targets(primitives: list[UpdatePrimitive]
                                 ) -> None:
        """No primitive may target a node inside a subtree another
        primitive deletes or replaces."""
        destroyed = [p.node for p in primitives
                     if p.kind in ("delete", "replace-value")]
        if not destroyed:
            return
        for primitive in primitives:
            node = getattr(primitive, "node", None) \
                or getattr(primitive, "target", None)
            if node is None:
                continue
            for root in destroyed:
                if root is node:
                    continue
                if root.is_ancestor_of(node):
                    raise UpdateConflictError(
                        f"{primitive.kind} targets <{node.name}> inside a "
                        f"subtree destroyed by a delete/replace of "
                        f"<{root.name}> [{root.start},{root.end})")

    @staticmethod
    def _check_add_markup_overlap(primitives: list[UpdatePrimitive]
                                  ) -> None:
        """Two wraps into one hierarchy must nest, not properly overlap
        (one statement may not create overlap *within* a hierarchy) —
        checked here so the failure precedes any mutation."""
        wraps = [p for p in primitives if p.kind == "add-markup"]
        for position, first in enumerate(wraps):
            for second in wraps[position + 1:]:
                if first.hierarchy != second.hierarchy:
                    continue
                if not (first.start < second.end
                        and second.start < first.end):
                    continue
                first_inside = (second.start <= first.start
                                and first.end <= second.end)
                second_inside = (first.start <= second.start
                                 and second.end <= first.end)
                if not (first_inside or second_inside):
                    raise UpdateConflictError(
                        f"add markup [{first.start},{first.end}) and "
                        f"[{second.start},{second.end}) properly overlap "
                        f"within hierarchy '{first.hierarchy}'")

    #: Same-node kind pairs that cannot compose: the first kind detaches
    #: or empties the node, so the second's effect (and its base-text
    #: edit) would be lost — breaking alignment or atomicity.
    _EXCLUSIVE_PAIRS = frozenset({
        frozenset({"remove-markup", "delete"}),
        frozenset({"remove-markup", "replace-value"}),
        frozenset({"remove-markup", "insert"}),
        frozenset({"delete", "replace-value"}),
        frozenset({"delete", "insert"}),
    })

    @classmethod
    def _check_same_node_pairs(cls, primitives: list[UpdatePrimitive]
                               ) -> None:
        kinds_by_node: dict[int, tuple[object, set[str]]] = {}
        for primitive in primitives:
            node = getattr(primitive, "node", None) \
                or getattr(primitive, "target", None)
            if node is None:
                continue
            entry = kinds_by_node.setdefault(id(node), (node, set()))
            for kind in entry[1]:
                if frozenset({kind, primitive.kind}) in \
                        cls._EXCLUSIVE_PAIRS:
                    raise UpdateConflictError(
                        f"{kind} and {primitive.kind} cannot both target "
                        f"<{node.name}> [{node.start},{node.end})")
            entry[1].add(primitive.kind)
