"""Update-statement compilation: parse → rewrite → plan → primitives.

An update statement rides the exact same pipeline as a query
(DESIGN.md §8): the statement parses through the shared grammar,
rewrite rules fire on the embedded target/source expressions, the
planner emits :class:`~repro.core.plan.logical.UpdatePrimOp` operators,
and the physical layer compiles them to closures whose *result items*
are pending-update primitives.  :meth:`CompiledUpdate.pending` runs the
closures against a KyGODDAG — entirely side-effect free, so target
evaluation sees the pre-state snapshot — and wraps the primitives in a
conflict-checked :class:`~repro.core.update.pul.PendingUpdateList`.
"""

from __future__ import annotations

from repro.core.lang import ast
from repro.core.lang.parser import parse_update
from repro.core.plan.logical import Plan, render_plan
from repro.core.plan.physical import compile_plan, execute_plan
from repro.core.plan.planner import build_plan
from repro.core.plan.rewrite import rewrite
from repro.core.runtime.context import QueryOptions
from repro.core.update.pul import PendingUpdateList


class CompiledUpdate:
    """One update statement compiled through the full pipeline."""

    __slots__ = ("text", "source_ast", "rewritten_ast", "plan",
                 "rewrites", "_runner")

    def __init__(self, text: str, source_ast: ast.Expr,
                 rewritten_ast: ast.Expr, plan: Plan,
                 rewrites: list[str], runner) -> None:
        self.text = text
        self.source_ast = source_ast
        self.rewritten_ast = rewritten_ast
        self.plan = plan
        self.rewrites = rewrites
        self._runner = runner

    def pending(self, goddag, variables=None,
                options: QueryOptions | None = None) -> PendingUpdateList:
        """Evaluate targets against the pre-state; collect primitives."""
        items = execute_plan(self._runner, goddag, variables=variables,
                             options=options)
        return PendingUpdateList(items)

    def explain(self) -> str:
        """The pipeline report (same shape as ``CompiledQuery``'s)."""
        lines = [f"update: {' '.join(self.text.split())}"]
        lines.append("rewrites:")
        if self.rewrites:
            lines.extend(f"  - {note}" for note in self.rewrites)
        else:
            lines.append("  (none)")
        lines.append("plan:")
        lines.append(render_plan(self.plan, indent=1))
        return "\n".join(lines)


def compile_update(statement: str | ast.Expr) -> CompiledUpdate:
    """Compile an update statement (or a pre-parsed updating AST)."""
    if isinstance(statement, str):
        text = statement
        source = parse_update(text)
    else:
        source = statement
        text = f"<precompiled {type(statement).__name__}>"
    rewritten, notes = rewrite(source)
    plan = build_plan(rewritten, notes)
    runner = compile_plan(plan)
    return CompiledUpdate(text, source, rewritten, plan, notes, runner)
