"""The naive re-parse/rebuild oracle for differential update testing.

A :class:`RebuildOracle` keeps a document only as its *serialized* form
(base text + one XML string per hierarchy).  Every update re-parses the
strings, rebuilds a fresh KyGODDAG, applies the statement, and
re-serializes — the slowest correct implementation imaginable, and
deliberately so: the update fuzzer compares the incremental engine
(one live KyGODDAG patched across the whole statement sequence)
against this oracle after every step, byte-for-byte on serialization
and item-for-item on a probe query set.  Because the oracle's state
round-trips through XML text at every step, any divergence between the
engine's in-place DOM/index/partition surgery and a from-scratch build
shows up immediately.

The same class doubles as the rebuild-per-update baseline of
``benchmarks/test_update_throughput.py``.
"""

from __future__ import annotations

from repro.cmh import MultihierarchicalDocument
from repro.core.goddag import KyGoddag
from repro.core.update.apply import apply_pending
from repro.core.update.compile import compile_update


class RebuildOracle:
    """Serialized-state document with rebuild-per-update semantics."""

    def __init__(self, document: MultihierarchicalDocument) -> None:
        self.text = document.text
        self.sources = {name: hierarchy.to_xml()
                        for name, hierarchy in document.hierarchies.items()}

    # -- state ---------------------------------------------------------------

    def document(self) -> MultihierarchicalDocument:
        """A fresh document parsed from the serialized state."""
        return MultihierarchicalDocument.from_xml(self.text,
                                                  dict(self.sources))

    def goddag(self) -> KyGoddag:
        """A from-scratch KyGODDAG of the current state."""
        return KyGoddag.build(self.document())

    # -- updates -------------------------------------------------------------

    def apply(self, statement: str, variables=None) -> None:
        """Apply one update by full re-parse, rebuild, re-serialize."""
        document = self.document()
        goddag = KyGoddag.build(document)
        goddag.span_index()
        pending = compile_update(statement).pending(goddag,
                                                    variables=variables)
        apply_pending(document, goddag, pending)
        self.text = document.text
        self.sources = {name: hierarchy.to_xml()
                        for name, hierarchy in document.hierarchies.items()}

    # -- probing -------------------------------------------------------------

    def query_strings(self, queries: list[str]) -> list[list[str]]:
        """Each probe query's per-item serializations, freshly rebuilt."""
        from repro.api import Engine

        engine = Engine(self.document())
        return [engine.query(query).strings() for query in queries]
