"""The update applier: snapshot apply over DOM + incremental goddag patch.

``apply_pending`` consumes a validated :class:`PendingUpdateList` and
applies it atomically to a multihierarchical document and its live
KyGODDAG.  The algorithm (DESIGN.md §9):

1. **Resolve** every target against the pre-state: each KyGODDAG
   element maps to its DOM node by component preorder (the component
   list and the DOM preorder coincide by construction).
2. **Structural phase** (text unchanged): renames, ``remove markup``
   unwraps, ``add markup`` in-place wraps.  All preserve the identity
   of untouched DOM nodes, so later primitives' resolved references
   stay valid.
3. **Text phase**: ``replace value of``/``delete``/``insert`` each
   mutate their *owner* hierarchy structurally (in that fixed kind
   order, so comma-combined statements are order-independent) and
   contribute one base text edit ``(start, end, replacement)`` in
   pre-state offsets.  Removal/replacement ranges must be pairwise
   disjoint half-open; zero-width insertion points compare closed
   (else :class:`~repro.errors.UpdateConflictError`).  Every other
   hierarchy absorbs each edit through its aligned text nodes —
   trimmed over the removed range, with the replacement anchored at
   the text node containing the edit start (for pure insertions: the
   node containing the preceding character, so boundary markup stays
   closed).
4. **Re-align**: hierarchy DOMs are normalized (adjacent text merged,
   empty text dropped — exactly the canonicalization a serialize/parse
   round trip would apply) and the document re-verifies alignment,
   re-recording every text span.
5. **Goddag patch**: renames apply in place; structurally-changed
   hierarchies re-register through
   :meth:`~repro.core.goddag.goddag.KyGoddag.replace_hierarchy`
   (partition boundary splicing + span-index component surgery); a text
   change re-registers every hierarchy via ``rebuild_hierarchies``.
   No XML is re-parsed and the span index is never rebuilt from
   scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import AlignmentError, UpdateConflictError, UpdateError
from repro.markup import dom
from repro.core.goddag.nodes import GElement
from repro.core.update.pul import (
    AddMarkupPrim,
    DeletePrim,
    InsertPrim,
    PendingUpdateList,
    RemoveMarkupPrim,
    RenamePrim,
    ReplaceValuePrim,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cmh.document import MultihierarchicalDocument
    from repro.core.goddag.goddag import KyGoddag


@dataclass
class UpdateApplyStats:
    """What one apply did — returned by :func:`apply_pending`."""

    counts: dict[str, int] = field(default_factory=dict)
    #: hierarchies re-registered through the incremental splice path
    replaced_hierarchies: list[str] = field(default_factory=list)
    #: elements renamed fully in place (no re-registration at all)
    renamed_in_place: int = 0
    #: net base-text growth in characters (0 for markup-only updates)
    text_delta: int = 0
    text_changed: bool = False

    @property
    def applied(self) -> int:
        """Total primitives applied."""
        return sum(self.counts.values())


@dataclass
class _TextEdit:
    """One base-text splice in pre-state offsets."""

    start: int
    end: int
    replacement: str
    owner: str  # hierarchy whose DOM absorbed this edit structurally


def apply_pending(document: "MultihierarchicalDocument",
                  goddag: "KyGoddag", pending: PendingUpdateList, *,
                  check: bool = False) -> UpdateApplyStats:
    """Apply a pending update list atomically; return apply statistics.

    Conflict and applicability errors raise before anything mutates;
    once mutation starts, only internal invariant failures can raise
    (and those indicate a bug, not a bad statement).
    """
    if goddag.frozen:
        # Refuse up front: the per-method guards in the goddag layer
        # would only fire in the patch phase, after the DOM mutated.
        goddag._frozen_violation("apply an update")
    applier = _Applier(document, goddag, pending)
    stats = applier.run()
    if check:
        goddag.check_invariants()
    return stats


class _Applier:
    def __init__(self, document, goddag, pending) -> None:
        self.document = document
        self.goddag = goddag
        self.pending = pending
        self._dom_maps: dict[str, list[dom.Node]] = {}
        self.dirty: set[str] = set()
        self.edits: list[_TextEdit] = []
        self.renames: list[tuple[GElement, dom.Element, str]] = []

    # -- pre-state resolution ------------------------------------------------

    def _dom_map(self, hierarchy: str) -> list[dom.Node]:
        """The DOM nodes of one hierarchy in component preorder."""
        nodes = self._dom_maps.get(hierarchy)
        if nodes is None:
            root = self.document.hierarchies[hierarchy].document.root
            nodes = [node for node in root.iter() if node is not root
                     and isinstance(node, (dom.Element, dom.Text,
                                           dom.Comment,
                                           dom.ProcessingInstruction))]
            self._dom_maps[hierarchy] = nodes
        return nodes

    def _resolve(self, node: GElement) -> dom.Element:
        if node.hierarchy not in self.document.hierarchies:
            raise UpdateError(
                f"target hierarchy '{node.hierarchy}' is not part of "
                f"this document")
        nodes = self._dom_map(node.hierarchy)
        if not (0 <= node.preorder < len(nodes)):
            raise UpdateError(
                "target node does not belong to this document's "
                "KyGODDAG (stale reference?)")
        resolved = nodes[node.preorder]
        if not isinstance(resolved, dom.Element) \
                or resolved.name != node.name:
            raise UpdateError(
                "target node does not line up with the document DOM "
                "(stale reference?)")
        return resolved

    # -- driver --------------------------------------------------------------

    def run(self) -> UpdateApplyStats:
        pending = self.pending
        # Resolve every node reference against the untouched pre-state.
        resolved: dict[int, dom.Element] = {}
        for primitive in pending:
            node = getattr(primitive, "node", None) \
                or getattr(primitive, "target", None)
            if node is not None:
                resolved[id(primitive)] = self._resolve(node)
        plan = self._build_edits(pending, resolved)
        self._check_edit_conflicts()
        self._validate_add_markup(pending)

        # Mutation starts here.
        for node, element, name in self.renames:
            element.name = name
        for primitive in pending.of_kind("remove-markup"):
            self._unwrap(resolved[id(primitive)], primitive.node)
        for primitive in pending.of_kind("add-markup"):
            self._wrap(primitive)
        # The documented kind order (replace → delete → insert), not
        # statement order: comma-combined statements then compose
        # order-independently (e.g. an insert into a replaced node
        # lands *after* the replacement clears it, whichever side of
        # the comma it was written on).
        for kind in ("replace-value", "delete", "insert"):
            for primitive, element in plan:
                if primitive.kind == kind:
                    self._apply_owner(primitive, element)
        new_text = self._splice_text()
        self._propagate_edits()
        for hierarchy in self.document.hierarchies.values():
            hierarchy.document.normalize()
        old_text = self.document.text
        self.document.text = new_text
        try:
            self.document.verify_alignment()
        except AlignmentError as error:  # pragma: no cover - safety net
            self.document.text = old_text
            raise UpdateError(
                f"internal: update applier broke alignment: {error}"
            ) from error
        return self._patch_goddag(old_text, new_text)

    # -- edit construction ---------------------------------------------------

    def _build_edits(self, pending, resolved):
        plan: list[tuple[object, dom.Element]] = []
        for primitive in pending:
            if isinstance(primitive, RenamePrim):
                self.renames.append((primitive.node,
                                     resolved[id(primitive)],
                                     primitive.name))
            elif isinstance(primitive, RemoveMarkupPrim):
                self.dirty.add(primitive.node.hierarchy)
            elif isinstance(primitive, AddMarkupPrim):
                self.dirty.add(primitive.hierarchy)
            elif isinstance(primitive, ReplaceValuePrim):
                node = primitive.node
                self.dirty.add(node.hierarchy)
                if node.start < node.end or primitive.value:
                    self.edits.append(_TextEdit(
                        node.start, node.end, primitive.value,
                        node.hierarchy))
                plan.append((primitive, resolved[id(primitive)]))
            elif isinstance(primitive, DeletePrim):
                node = primitive.node
                self.dirty.add(node.hierarchy)
                if node.start < node.end:
                    self.edits.append(_TextEdit(
                        node.start, node.end, "", node.hierarchy))
                plan.append((primitive, resolved[id(primitive)]))
            elif isinstance(primitive, InsertPrim):
                target = primitive.target
                self.dirty.add(target.hierarchy)
                point = (target.start
                         if primitive.location in ("into-first", "before")
                         else target.end)
                if primitive.text:
                    self.edits.append(_TextEdit(
                        point, point, primitive.text, target.hierarchy))
                plan.append((primitive, resolved[id(primitive)]))
        return plan

    def _check_edit_conflicts(self) -> None:
        """Text edits must be pairwise disjoint (DESIGN.md §9).

        Two removal/replacement ranges compare half-open, so deleting
        or replacing *adjacent* siblings in one statement is fine (the
        right-to-left splice keeps every pre-state offset valid).  A
        zero-width insertion point compares closed against everything —
        two inserts at one point, or an insert on the boundary of a
        removed range, have no single unambiguous outcome and conflict.
        """
        ordered = sorted(self.edits, key=lambda e: (e.start, e.end))
        for left, right in zip(ordered, ordered[1:]):
            degenerate = (left.start == left.end
                          or right.start == right.end)
            touches = (right.start <= left.end if degenerate
                       else right.start < left.end)
            if touches:
                raise UpdateConflictError(
                    f"conflicting text edits: [{left.start},{left.end}) "
                    f"and [{right.start},{right.end}) overlap (insertion "
                    f"points additionally conflict with touching "
                    f"endpoints)")

    def _validate_add_markup(self, pending) -> None:
        """Fail *before* mutation when a wrap would properly overlap."""
        for primitive in pending.of_kind("add-markup"):
            root = self.document.hierarchies[
                primitive.hierarchy].document.root
            length = len(self.document.text)
            if not (0 <= primitive.start <= primitive.end <= length):
                raise UpdateError(
                    f"add markup span [{primitive.start},"
                    f"{primitive.end}) escapes the text "
                    f"(length {length})")
            _find_wrap_parent(root, primitive.start, primitive.end)

    # -- structural mutation -------------------------------------------------

    def _unwrap(self, element: dom.Element, node: GElement) -> None:
        parent = element.parent
        if parent is None:  # pragma: no cover - conflict rules prevent it
            raise UpdateError(
                f"remove markup target <{node.name}> is already detached")
        index = _child_index(parent, element)
        children = list(element.children)
        for child in children:
            child.parent = parent
        element.children = []
        element.parent = None
        parent.children[index:index + 1] = children

    def _wrap(self, primitive: AddMarkupPrim) -> None:
        root = self.document.hierarchies[
            primitive.hierarchy].document.root
        start, end = primitive.start, primitive.end
        parent = _find_wrap_parent(root, start, end)
        _split_text_child(parent, start)
        _split_text_child(parent, end)
        spans = _child_spans(parent)
        children = parent.children
        if start < end:
            # Post-split, every child is fully inside or outside the
            # range; a zero-width child at the right boundary stays out
            # (it closes before the new markup opens).
            indices = [
                index for index, (c_start, c_end) in enumerate(spans)
                if start <= c_start and c_end <= end
                and not (c_start == c_end == end)]
            if not indices:  # pragma: no cover - tiling guarantees one
                raise UpdateError(
                    f"internal: add markup [{start},{end}) found no "
                    f"content to wrap")
            if indices != list(range(indices[0], indices[-1] + 1)):
                raise UpdateError(  # pragma: no cover - tiling
                    "internal: add markup wrap range is not contiguous")
            first = indices[0]
        else:
            # Zero-width marker: before the first child at or past the
            # point, else at the end.
            indices = []
            first = len(children)
            for index, (c_start, _c_end) in enumerate(spans):
                if c_start >= start:
                    first = index
                    break
        moved = [children[index] for index in indices]
        wrapper = dom.Element(primitive.name)
        for child in moved:
            child.parent = wrapper
        wrapper.children = moved
        wrapper.parent = parent
        if indices:
            parent.children[first:first + len(indices)] = [wrapper]
        else:
            parent.children.insert(first, wrapper)

    def _apply_owner(self, primitive, element: dom.Element) -> None:
        if isinstance(primitive, ReplaceValuePrim):
            for child in element.children:
                child.parent = None
            element.children = []
            if primitive.value:
                element.append(dom.Text(primitive.value))
        elif isinstance(primitive, DeletePrim):
            element.detach()
        elif isinstance(primitive, InsertPrim):
            fragment = primitive.fragment
            if primitive.location == "into-first":
                for offset, node in enumerate(fragment):
                    element.insert(offset, node)
            elif primitive.location == "into-last":
                for node in fragment:
                    element.append(node)
            else:
                parent = element.parent
                if parent is None:
                    # The anchor was deleted by an earlier primitive
                    # (text-bearing fragments conflict on intervals
                    # first); an empty fragment next to a deleted
                    # anchor vanishes with it.
                    return
                index = _child_index(parent, element)
                if primitive.location == "after":
                    index += 1
                for offset, node in enumerate(fragment):
                    parent.insert(index + offset, node)

    # -- text propagation ----------------------------------------------------

    def _splice_text(self) -> str:
        text = self.document.text
        for edit in sorted(self.edits, key=lambda e: e.start,
                           reverse=True):
            text = text[:edit.start] + edit.replacement + text[edit.end:]
        return text

    def _propagate_edits(self) -> None:
        if not self.edits:
            return
        ordered = sorted(self.edits, key=lambda e: e.start, reverse=True)
        for name, hierarchy in self.document.hierarchies.items():
            texts = [node for node in hierarchy.document.root.iter_text()
                     if node.start is not None]
            pending_unanchored: list[_TextEdit] = []
            for edit in ordered:
                if edit.owner == name:
                    continue
                if not self._apply_edit_to_nodes(texts, edit):
                    pending_unanchored.append(edit)
            for edit in pending_unanchored:
                if edit.replacement:
                    # No aligned text node exists (empty base text):
                    # materialize one at the end of the root element.
                    hierarchy.document.root.append(
                        dom.Text(edit.replacement))

    @staticmethod
    def _apply_edit_to_nodes(texts: list[dom.Text],
                             edit: _TextEdit) -> bool:
        start, end, repl = edit.start, edit.end, edit.replacement
        anchored = not repl
        for node in texts:
            a, b = node.start, node.end
            if start == end:  # pure insertion
                if a < start <= b or (start == 0 and a == 0):
                    node.data = (node.data[:start - a] + repl
                                 + node.data[start - a:])
                    return True
                continue
            if b <= start or a >= end:
                continue
            lo, hi = max(a, start), min(b, end)
            middle = ""
            if a <= start < b:
                middle = repl
                anchored = True
            node.data = (node.data[:lo - a] + middle
                         + node.data[hi - a:])
        return anchored

    # -- goddag patch --------------------------------------------------------

    def _patch_goddag(self, old_text: str,
                      new_text: str) -> UpdateApplyStats:
        goddag = self.goddag
        stats = UpdateApplyStats(counts=self.pending.counts())
        text_changed = bool(self.edits)
        if text_changed:
            goddag.rebuild_hierarchies(new_text, {
                name: hierarchy.document
                for name, hierarchy in self.document.hierarchies.items()})
            stats.replaced_hierarchies = list(self.document.hierarchies)
            stats.text_changed = True
            stats.text_delta = len(new_text) - len(old_text)
        else:
            for name in self.document.hierarchy_names:
                if name in self.dirty:
                    goddag.replace_hierarchy(
                        name, self.document.hierarchies[name].document)
                    stats.replaced_hierarchies.append(name)
        replaced = set(stats.replaced_hierarchies)
        for node, _element, name in self.renames:
            if node.hierarchy in replaced:
                continue  # the rebuilt component read the renamed DOM
            goddag.rename_element(node, name)
            stats.renamed_in_place += 1
        return stats


# ---------------------------------------------------------------------------
# DOM helpers
# ---------------------------------------------------------------------------


def _child_index(parent: dom.ParentNode, child: dom.Node) -> int:
    for index, candidate in enumerate(parent.children):
        if candidate is child:
            return index
    raise UpdateError("internal: node is not a child of its parent")


def _child_spans(element: dom.Element) -> list[tuple[int, int]]:
    """Each child's span, derived from the aligned text node spans.

    Elements inherit the extent of their text content; zero-width
    children (empty elements, comments, PIs) sit at the position of
    the following content (falling back to the preceding content's
    end).  Only valid between alignment and mutation of the text
    layout — exactly the window the wrap operation runs in.
    """
    raw = [_subtree_span(child) for child in element.children]
    spans: list[tuple[int, int] | None] = []
    cursor: int | None = None
    for start, end in raw:
        if start is None:
            spans.append(None)
        else:
            spans.append((start, end))
            cursor = end
    # Resolve zero-width placeholders: next known start, else previous
    # known end, else 0 (an all-empty hierarchy over empty text).
    following: int | None = None
    for index in range(len(spans) - 1, -1, -1):
        if spans[index] is None:
            spans[index] = (following, following) \
                if following is not None else None
        else:
            following = spans[index][0]
    cursor = 0
    resolved: list[tuple[int, int]] = []
    for span in spans:
        if span is None:
            span = (cursor, cursor)
        resolved.append(span)
        cursor = span[1]
    return resolved


def _subtree_span(node: dom.Node) -> tuple[int | None, int | None]:
    if isinstance(node, dom.Text):
        return node.start, node.end
    if isinstance(node, dom.Element):
        first = last = None
        for text in node.iter_text():
            if text.start is None:
                continue
            if first is None:
                first = text.start
            last = text.end
        return first, last
    return None, None


def _find_wrap_parent(root: dom.Element, start: int,
                      end: int) -> dom.Element:
    """The deepest element whose span contains ``[start, end)`` such
    that no child element properly overlaps the range.

    For a non-degenerate range the descent also enters equal-extent
    children (new markup nests innermost); a zero-width marker descends
    only into children strictly containing its point.  Raises
    :class:`~repro.errors.UpdateError` on proper overlap.
    """
    parent = root
    while True:
        descended = False
        for child in parent.children:
            if not isinstance(child, dom.Element):
                continue
            c_start, c_end = _subtree_span(child)
            if c_start is None:
                continue
            if start < end:
                contains = c_start <= start and end <= c_end
            else:
                contains = c_start < start and end < c_end
            if contains:
                parent = child
                descended = True
                break
        if not descended:
            break
    for child in parent.children:
        if not isinstance(child, dom.Element):
            continue
        c_start, c_end = _subtree_span(child)
        if c_start is None or c_start == c_end:
            continue
        overlaps = c_start < end and start < c_end
        contained = start <= c_start and c_end <= end
        contains = c_start <= start and end <= c_end
        if overlaps and not contained and not contains:
            raise UpdateError(
                f"add markup [{start},{end}) would properly overlap "
                f"<{child.name}> [{c_start},{c_end}) within one "
                f"hierarchy")
    return parent


def _split_text_child(parent: dom.Element, offset: int) -> None:
    """Split a text child of ``parent`` at ``offset`` (pre-state span),
    so the wrap boundary falls between children."""
    for index, child in enumerate(parent.children):
        if not isinstance(child, dom.Text) or child.start is None:
            continue
        if child.start < offset < child.end:
            left = dom.Text(child.data[:offset - child.start])
            left.start, left.end = child.start, offset
            right = dom.Text(child.data[offset - child.start:])
            right.start, right.end = offset, child.end
            left.parent = right.parent = parent
            child.parent = None
            parent.children[index:index + 1] = [left, right]
            return
