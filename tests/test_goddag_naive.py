"""The naive (literal Definition 1) axes agree with the indexed ones."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.goddag import KyGoddag, evaluate_axis
from repro.core.goddag.naive import NAIVE_AXES
from repro.core.goddag.nodes import GElement, GText

from tests.strategies import multihierarchical_documents

AXIS_NAMES = sorted(NAIVE_AXES)


def ids_of(nodes) -> set[int]:
    return {id(node) for node in nodes}


class TestOnBoethius:
    @pytest.mark.parametrize("axis", AXIS_NAMES)
    def test_every_node_every_axis(self, goddag, axis):
        naive = NAIVE_AXES[axis]
        contexts = [goddag.root] + [
            n for name in goddag.hierarchy_names
            for n in goddag.nodes_of(name)
            if isinstance(n, (GElement, GText))
        ] + goddag.leaves()
        for node in contexts:
            indexed = evaluate_axis(goddag, axis, node)
            if axis == "xdescendant" and node.kind == "leaf":
                assert indexed == []
                continue
            if node.kind == "leaf" and axis in ("xancestor",
                                                "overlapping"):
                # naive domain omits leaves as *context* refinements
                # only for set equality below; both sides still agree.
                pass
            assert ids_of(indexed) == ids_of(naive(goddag, node)), \
                (axis, node)

    @pytest.mark.parametrize("axis", AXIS_NAMES)
    def test_name_pushdown_never_changes_results(self, goddag, axis):
        for node in goddag.elements():
            unhinted = [n for n in evaluate_axis(goddag, axis, node)
                        if n.name == "w"]
            hinted = evaluate_axis(goddag, axis, node, "w")
            assert ids_of(unhinted) == ids_of(hinted)


@settings(max_examples=25, deadline=None)
@given(document=multihierarchical_documents())
def test_naive_equivalence_generated(document):
    goddag = KyGoddag.build(document)
    contexts = [goddag.root] + [
        n for name in goddag.hierarchy_names
        for n in goddag.nodes_of(name)
        if isinstance(n, (GElement, GText))
    ]
    for axis, naive in NAIVE_AXES.items():
        for node in contexts:
            indexed = evaluate_axis(goddag, axis, node)
            assert ids_of(indexed) == ids_of(naive(goddag, node)), axis
