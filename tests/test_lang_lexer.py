"""Tests for the query language tokenizer."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError
from repro.core.lang.lexer import EOF, Lexer


def tokens_of(text: str) -> list[tuple[str, str]]:
    lexer = Lexer(text)
    out = []
    while True:
        token = lexer.next()
        if token.kind == EOF:
            return out
        out.append((token.kind, token.value))


class TestBasicTokens:
    def test_names_and_symbols(self):
        assert tokens_of("child::w") == [
            ("name", "child"), ("symbol", "::"), ("name", "w")]

    def test_hyphenated_name_is_one_token(self):
        assert tokens_of("analyze-string") == [("name", "analyze-string")]

    def test_prefixed_name(self):
        assert tokens_of("fn:string") == [("name", "fn:string")]

    def test_prefix_not_confused_with_axis(self):
        assert tokens_of("a::b") == [
            ("name", "a"), ("symbol", "::"), ("name", "b")]

    def test_variable(self):
        assert tokens_of("$leaf") == [("symbol", "$"), ("name", "leaf")]

    def test_numbers(self):
        assert tokens_of("42 3.14 .5 1e3") == [
            ("integer", "42"), ("decimal", "3.14"), ("decimal", ".5"),
            ("decimal", "1e3")]

    def test_dotdot_not_a_decimal(self):
        assert tokens_of("1..") == [("integer", "1"), ("symbol", "..")]

    def test_multi_char_symbols(self):
        assert [v for _k, v in tokens_of(":= :: // .. != <= >= << >>")] == [
            ":=", "::", "//", "..", "!=", "<=", ">=", "<<", ">>"]

    def test_unicode_names(self):
        assert tokens_of("ϸorn") == [("name", "ϸorn")]


class TestStrings:
    def test_double_quoted(self):
        assert tokens_of('"hello"') == [("string", "hello")]

    def test_single_quoted(self):
        assert tokens_of("'hello'") == [("string", "hello")]

    def test_doubled_quote_escape(self):
        assert tokens_of('"a""b"') == [("string", 'a"b')]

    def test_entity_references(self):
        assert tokens_of('"&lt;&amp;&#65;"') == [("string", "<&A")]

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError, match="unterminated"):
            tokens_of('"oops')

    def test_unknown_entity(self):
        with pytest.raises(QuerySyntaxError, match="unknown entity"):
            tokens_of('"&bogus;"')


class TestCommentsAndErrors:
    def test_comment_skipped(self):
        assert tokens_of("a (: comment :) b") == [
            ("name", "a"), ("name", "b")]

    def test_nested_comments(self):
        assert tokens_of("a (: outer (: inner :) still :) b") == [
            ("name", "a"), ("name", "b")]

    def test_unterminated_comment(self):
        with pytest.raises(QuerySyntaxError, match="unterminated comment"):
            tokens_of("a (: open")

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError, match="unexpected character"):
            tokens_of("#")

    def test_error_location(self):
        lexer = Lexer("abc\n  #")
        lexer.next()
        with pytest.raises(QuerySyntaxError) as info:
            lexer.next()
        assert info.value.line == 2
        assert info.value.column == 3


class TestStreamControl:
    def test_peek_does_not_consume(self):
        lexer = Lexer("a b")
        assert lexer.peek().value == "a"
        assert lexer.peek(1).value == "b"
        assert lexer.next().value == "a"

    def test_sync_to_rewinds(self):
        lexer = Lexer("a b c")
        first = lexer.next()
        lexer.peek()  # fill the lookahead
        lexer.sync_to(first.end)
        assert lexer.next().value == "b"
